"""E3 — Insert/update/delete cost vs availability level k.

Paper theme: each mutation ships one Δ-record per parity bucket, so the
failure-free cost is 1 + k messages (slope exactly 1 in k); the
measured averages include real-file noise (forwards, IAMs, overflow
reports), which the clean-key columns exclude.
"""

import pytest

from harness import (
    build_lhrs, converge, fmt, save_metrics, save_table, scaled, with_metrics,
)


def measure(k):
    file, keys = build_lhrs(k=k, capacity=16, count=scaled(600), payload=64)
    registry = with_metrics(file)
    converge(file, keys)
    state = file.coordinator.state
    clean = [
        key for key in range(10**6, 10**6 + 10**5)
        if file.client.image.address(key) == state.address(key)
        and len(file.data_servers()[state.address(key)].bucket) + 3
        < file.config.bucket_capacity
    ][: scaled(50)]
    with file.stats.measure("insert") as ins:
        for key in clean:
            file.insert(key, b"v" * 64)
    with file.stats.measure("update") as upd:
        for key in clean:
            file.update(key, b"w" * 64)
    with file.stats.measure("delete") as dele:
        for key in clean:
            file.delete(key)
    n = len(clean)
    return {
        "k": k,
        "insert": ins.messages / n,
        "update": upd.messages / n,
        "delete": dele.messages / n,
        "metrics": registry.to_dict(),
    }


def run_sweep():
    return [measure(k) for k in (0, 1, 2, 3)]


def test_e3_mutation_cost(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'k':>3} {'insert':>8} {'update':>8} {'delete':>8} {'1+k':>5}"]
    for r in rows:
        lines.append(
            f"{r['k']:>3} {fmt(r['insert'])} {fmt(r['update'])} "
            f"{fmt(r['delete'])} {r['k'] + 1:>5}"
        )
    save_table(
        "e3_insert",
        "E3: mutation messages vs k — cost = 1 + k, slope 1",
        lines,
    )
    save_metrics("e3_insert", {"rows": rows})
    for r in rows:
        assert r["insert"] == pytest.approx(1 + r["k"], abs=0.01)
        assert r["update"] == pytest.approx(1 + r["k"], abs=0.01)
        assert r["delete"] == pytest.approx(1 + r["k"], abs=0.01)
        # The registry saw the same windows the table was built from.
        assert r["metrics"]["op.insert.ops"]["value"] == 1
        assert r["metrics"]["op.insert.messages"]["count"] == 1
