"""E12 — Update/delete economics and rank compaction (table).

Paper theme: updates cost 1 + k (a Δ per parity bucket); deletions free
ranks, and without reuse the record groups thin out, inflating parity
storage overhead over a churned lifetime.  The §4.3-style compaction
(relocate the highest rank into the freed one) restores density for ~k
extra messages per delete.  The table runs a churn workload with
compaction off/on and compares overhead and message costs.
"""

import pytest

from harness import build_lhrs, converge, fmt, save_table, scaled
from repro.sim.rng import make_rng


def churn(file, keys, rounds, seed):
    """Delete-then-insert churn over the live key population."""
    rng = make_rng(seed)
    live = list(keys)
    fresh = iter(range(2 * 10**9, 3 * 10**9))
    with file.stats.measure("churn") as window:
        for _ in range(rounds):
            victim = live.pop(int(rng.integers(0, len(live))))
            file.delete(victim)
            key = next(fresh)
            file.insert(key, b"n" * 64)
            live.append(key)
    return window


def run_comparison():
    rows = []
    for compact in (False, True):
        file, keys = build_lhrs(
            m=4, k=2, capacity=16, count=scaled(800), payload=64,
            compact_ranks=compact,
        )
        converge(file, keys, sample=scaled(200))
        overhead_before = file.storage_overhead()
        window = churn(file, keys, rounds=scaled(600), seed=5)
        assert file.verify_parity_consistency() == []
        # Record-group density: members per rank relative to m.
        members = ranks = 0
        for server in file.parity_servers():
            if server.index == 0:
                ranks += len(server.records)
                members += sum(r.member_count for r in server.records.values())
        rows.append(
            {
                "compaction": compact,
                "overhead_before": overhead_before,
                "overhead_after": file.storage_overhead(),
                "density": members / ranks / 4,
                "msgs_per_churn_op": window.messages / (2 * scaled(600)),
            }
        )
    return rows


def test_e12_updates_and_compaction(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = [
        f"{'compaction':<11} {'ovh before':>11} {'ovh after':>10} "
        f"{'group density':>14} {'msgs/op':>8}"
    ]
    for r in rows:
        lines.append(
            f"{str(r['compaction']):<11} {fmt(r['overhead_before'], 11, 3)} "
            f"{fmt(r['overhead_after'], 10, 3)} {fmt(r['density'], 14)} "
            f"{fmt(r['msgs_per_churn_op'], 8)}"
        )
    save_table(
        "e12_updates",
        "E12: churn economics — compaction buys record-group density "
        "(lower parity overhead) for extra messages per delete",
        lines,
    )
    off, on = rows
    assert on["density"] > off["density"]
    assert on["overhead_after"] < off["overhead_after"]
    assert on["msgs_per_churn_op"] > off["msgs_per_churn_op"]
