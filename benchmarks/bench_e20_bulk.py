"""E20 — bulk data-plane throughput: emits BENCH_throughput.json.

Times the scalar one-message-per-record client loop against the batch
plane (``*_many`` → one ``ops.batch`` per addressed bucket → vectorized
bulk apply → one coalesced ``parity.batch`` per parity target) on the
same workloads.  ``batch`` is the wire granularity: ``batch_max_ops``,
the number of ops one ``ops.batch`` message may carry — the whole
workload goes through one ``*_many`` call per repetition.  Measured:

* **ops/s** — end-to-end operations per wall-clock second through the
  full simulated stack (client, network, bucket, parity);
* **msgs/op** — protocol messages per operation, the papers' cost
  metric, counted by the network's own :class:`MessageStats`.

Both arms produce byte-identical files (pinned by
``tests/core/test_batch_ops.py``); this harness only measures.

Usage::

    PYTHONPATH=src python benchmarks/bench_e20_bulk.py           # full grid
    PYTHONPATH=src python benchmarks/bench_e20_bulk.py --smoke   # CI gate

The acceptance gates this PR ships with (insert, m=4, k=2, batch=64):
≥ 5× ops/s and ≤ 0.25× messages/op versus the scalar loop.  Results
land in ``BENCH_throughput.json`` at the repo root (``--output``
overrides).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import LHRSConfig, LHRSFile

REPO_ROOT = Path(__file__).resolve().parent.parent


def _best_of(fn, repeats: int) -> tuple[float, dict]:
    """Best wall time over ``repeats`` fresh runs, plus the last stats."""
    best, stats = float("inf"), {}
    for _ in range(repeats):
        start = time.perf_counter()
        stats = fn()
        best = min(best, time.perf_counter() - start)
    return best, stats


def _config(batch: bool, m: int, k: int, capacity: int,
            max_ops: int = 1024) -> LHRSConfig:
    return LHRSConfig(
        group_size=m,
        availability=k,
        bucket_capacity=capacity,
        batch_ops=batch,
        batch_max_ops=max_ops,
    )


def _items(count: int, size: int = 64, seed: int = 7) -> list:
    rng = np.random.default_rng(seed)
    keys = [int(k) for k in rng.choice(10 ** 9, size=count, replace=False)]
    return [(k, rng.integers(0, 256, size, dtype=np.uint8).tobytes())
            for k in keys]


def _preload(file: LHRSFile, items) -> None:
    """Seed records without touching the measured arm's counters."""
    if file.config.batch_ops:
        file.insert_many(items)
    else:
        for key, value in items:
            file.insert(key, value)
    file.stats.reset()


def bench_ops(kind, m, k, batch, count, capacity, repeats) -> dict:
    """One (kind, shape, batch-size) cell: scalar arm vs batch arm."""
    items = _items(count)
    updated = [(key, value[::-1]) for key, value in items]
    keys = [key for key, _ in items]

    def run(batched: bool):
        def arm():
            file = LHRSFile(_config(batched, m, k, capacity, max_ops=batch))
            if kind != "insert":
                _preload(file, items)
            if kind == "insert":
                work, many = items, file.insert_many
            elif kind == "update":
                work, many = updated, file.update_many
            else:
                work, many = keys, file.search_many
            if batched:
                out = many(work)
                assert out.ok
            else:
                for op in work:
                    if kind == "insert":
                        file.insert(*op)
                    elif kind == "update":
                        file.update(*op)
                    else:
                        file.search(op)
            return {"messages": file.stats.total.messages}

        return _best_of(arm, repeats)

    scalar_s, scalar_stats = run(False)
    batched_s, batched_stats = run(True)
    scalar_mpo = scalar_stats["messages"] / count
    batched_mpo = batched_stats["messages"] / count
    return {
        "kind": kind,
        "m": m,
        "k": k,
        "batch": batch,
        "count": count,
        "scalar_ops_per_s": count / scalar_s,
        "batched_ops_per_s": count / batched_s,
        "speedup": scalar_s / batched_s,
        "scalar_msgs_per_op": scalar_mpo,
        "batched_msgs_per_op": batched_mpo,
        "msg_ratio": batched_mpo / scalar_mpo,
    }


def bench_growth(m, k, batch, count, repeats) -> dict:
    """Bulk load into a small-capacity file: splits land mid-batch, the
    re-binning rounds and coalesced structural parity all on the hot
    path.  Reported, not gated — restructuring work dominates."""
    items = _items(count)

    def run(batched: bool):
        def arm():
            file = LHRSFile(_config(batched, m, k, capacity=16,
                                    max_ops=batch))
            if batched:
                assert file.insert_many(items).ok
            else:
                for key, value in items:
                    file.insert(key, value)
            return {
                "messages": file.stats.total.messages,
                "buckets": file.bucket_count,
            }

        return _best_of(arm, repeats)

    scalar_s, scalar_stats = run(False)
    batched_s, batched_stats = run(True)
    assert batched_stats["buckets"] > m  # the file really grew
    return {
        "kind": "insert-growth",
        "m": m,
        "k": k,
        "batch": batch,
        "count": count,
        "scalar_ops_per_s": count / scalar_s,
        "batched_ops_per_s": count / batched_s,
        "speedup": scalar_s / batched_s,
        "scalar_msgs_per_op": scalar_stats["messages"] / count,
        "batched_msgs_per_op": batched_stats["messages"] / count,
        "scalar_buckets": scalar_stats["buckets"],
        "batched_buckets": batched_stats["buckets"],
    }


def run(smoke: bool) -> dict:
    count = 512 if smoke else 2048
    repeats = 2 if smoke else 3
    batches = [64] if smoke else [8, 64, 256]
    shapes = [(4, 2)] if smoke else [(4, 1), (4, 2)]
    kinds = ["insert", "search"] if smoke else ["insert", "search", "update"]

    results = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "smoke": smoke,
            "note": (
                "scalar_* = one message per record through the pre-batch "
                "client; batched_* = the ops.batch scatter-gather plane"
            ),
        },
        "ops": [],
        "growth": [],
    }
    for m, k in shapes:
        for kind in kinds:
            for batch in batches:
                results["ops"].append(
                    bench_ops(kind, m, k, batch, count, 4 * count, repeats)
                )
    results["growth"].append(bench_growth(4, 2, 64, count, repeats))
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed-size grid for CI")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_throughput.json")
    args = parser.parse_args(argv)

    results = run(args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")

    for r in results["ops"] + results["growth"]:
        print(
            f"{r['kind']:>13}  m={r['m']} k={r['k']} batch={r['batch']:>3}: "
            f"{r['scalar_ops_per_s']:>8.0f} -> {r['batched_ops_per_s']:>8.0f}"
            f" ops/s ({r['speedup']:.1f}x)  "
            f"{r['scalar_msgs_per_op']:.2f} -> {r['batched_msgs_per_op']:.2f}"
            f" msgs/op"
        )
    print(f"\nwrote {args.output}")

    # Regression gates (the acceptance numbers this PR ships with).
    failures = []
    reference = [
        r for r in results["ops"]
        if r["kind"] == "insert" and (r["m"], r["k"]) == (4, 2)
        and r["batch"] == 64
    ]
    for r in reference:
        if r["speedup"] < 5.0:
            failures.append(
                f"insert m=4 k=2 batch=64 speedup {r['speedup']:.1f}x < 5x"
            )
        if r["msg_ratio"] > 0.25:
            failures.append(
                f"insert m=4 k=2 batch=64 msgs/op ratio "
                f"{r['msg_ratio']:.3f} > 0.25"
            )
    if any(r["speedup"] < 1.0 for r in results["ops"]):
        failures.append("a batched arm is slower than the scalar loop")
    if failures:
        print("PERF REGRESSION:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
