"""E5 — File availability vs size and k (figure).

Paper theme: the motivating collapse P = p^M of an unprotected file, and
how k parity buckets per group hold availability up; the closed form is
cross-checked by Monte-Carlo sampling on the failure injector.
"""

import math

import pytest

from harness import save_table, scaled
from repro.core import file_availability, monte_carlo_file_availability

SIZES = [4, 16, 64, 256, 1024, 4096]
LEVELS = [0, 1, 2, 3]


def run_grid(p=0.99, m=4):
    rows = []
    for size in SIZES:
        row = {"M": size}
        for k in LEVELS:
            row[k] = file_availability(size, m, p, k=k)
        rows.append(row)
    return rows


def run_monte_carlo(p=0.99, m=4):
    checks = []
    trials = scaled(4000, minimum=500)
    for size in (16, 64):
        for k in (0, 1, 2):
            analytic = file_availability(size, m, p, k=k)
            estimate = monte_carlo_file_availability(
                size, m, p, k, trials=trials, seed=size * 10 + k
            )
            checks.append((size, k, analytic, estimate, trials))
    return checks


def test_e5_availability(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    checks = run_monte_carlo()
    lines = [
        f"{'M':>6} " + " ".join(f"{'k=' + str(k):>10}" for k in LEVELS)
    ]
    for row in rows:
        lines.append(
            f"{row['M']:>6} "
            + " ".join(f"{row[k]:>10.6f}" for k in LEVELS)
        )
    from plotting import ascii_chart

    lines.append("")
    lines.extend(
        ascii_chart(
            {
                f"k={k}": [(row["M"], row[k]) for row in rows]
                for k in LEVELS
            },
            x_label="M (log)",
            y_label="P(all data servable)",
            logx=True,
        )
    )
    lines.append("")
    lines.append("Monte-Carlo cross-check (p=0.99):")
    lines.append(f"{'M':>6} {'k':>3} {'analytic':>10} {'sampled':>10}")
    for size, k, analytic, estimate, trials in checks:
        lines.append(f"{size:>6} {k:>3} {analytic:>10.4f} {estimate:>10.4f}")
    save_table(
        "e5_availability",
        "E5: P(all data servable) vs M and k at p=0.99 — fixed k decays, "
        "higher k decays slower",
        lines,
    )
    # Shape assertions: monotone in k; decaying in M; k=0 collapses.
    for row in rows:
        values = [row[k] for k in LEVELS]
        assert values == sorted(values)
    assert rows[-1][0] < 0.01 < rows[-1][2]
    for size, k, analytic, estimate, trials in checks:
        sigma = math.sqrt(max(analytic * (1 - analytic), 1e-9) / trials)
        assert estimate == pytest.approx(analytic, abs=max(6 * sigma, 0.02))
