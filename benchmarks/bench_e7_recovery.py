"""E7 — Bucket recovery cost vs failures and bucket size (table).

Paper theme: recovering f <= k lost buckets of one group reads the m-1+f
... m+k-1 survivors once (dump messages with ~0.7b records each), does
the RS decode (XOR fast path when f=1), and bulk-loads f spares.
Messages grow with the survivor count, bytes with b, decode work with f.
"""

import time

import pytest

from harness import build_lhrs, fmt, save_metrics, save_table, scaled, with_metrics
from repro.sim.stats import LatencyModel

MODEL = LatencyModel()


def measure(m, k, f, count, capacity):
    file, _ = build_lhrs(
        m=m, k=k, capacity=capacity, count=count, payload=100, seed=f * 100 + k
    )
    registry = with_metrics(file)
    victims = [file.fail_data_bucket(b) for b in range(f)]
    start = time.perf_counter()
    with file.stats.measure("recovery") as window:
        summary = file.recover(victims)
    wall_s = time.perf_counter() - start
    assert file.verify_parity_consistency() == []
    return {
        "m": m,
        "k": k,
        "f": f,
        "b_records": count // file.bucket_count,
        "messages": window.messages,
        "kbytes": window.bytes / 1024,
        "records": summary["records"],
        "symbol_ops": window.symbol_ops,
        "records_per_s": summary["records"] / wall_s if wall_s else 0.0,
        "sim_ms": MODEL.window_time(window) * 1e3,
        "metrics": registry.to_dict(),
    }


def run_grid():
    rows = []
    for count, capacity in ((scaled(1000), 16), (scaled(4000), 64)):
        for k, fs in ((1, (1,)), (2, (1, 2)), (3, (1, 2, 3))):
            for f in fs:
                rows.append(measure(4, k, f, count, capacity))
    return rows


def test_e7_bucket_recovery(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    lines = [
        f"{'b~':>5} {'k':>3} {'f':>3} {'messages':>9} {'KB moved':>9} "
        f"{'records rebuilt':>16} {'symbol ops':>11} {'records/s':>10} "
        f"{'sim ms':>8}"
    ]
    for r in rows:
        lines.append(
            f"{r['b_records']:>5} {r['k']:>3} {r['f']:>3} {r['messages']:>9} "
            f"{fmt(r['kbytes'], 9)} {r['records']:>16} "
            f"{r['symbol_ops']:>11} {fmt(r['records_per_s'], 10, 0)} "
            f"{fmt(r['sim_ms'], 8, 3)}"
        )
    save_table(
        "e7_recovery",
        "E7: group recovery cost — messages = 2(m-f+k_surviving)+f loads; "
        "bytes ~ b; decode grows with f; records/s is the wall-clock "
        "rebuild rate of the batched stripe kernels",
        lines,
    )
    save_metrics("e7_recovery", {"rows": rows})
    for r in rows:
        m, k, f = r["m"], r["k"], r["f"]
        expected = 2 * ((m - f) + k) + f  # dumps are calls, loads are sends
        assert r["messages"] == expected
        # The registry's recovery window agrees with the table's.
        assert r["metrics"]["op.recovery.messages"]["count"] == 1
        # Batched kernels must still charge the real decode work: the
        # symbol-op meter counts symbols touched, not kernel dispatches.
        assert r["symbol_ops"] > 0
    # More simultaneous failures -> fewer survivor dumps but more loads;
    # byte volume scales with bucket size.
    small = [r for r in rows if r["b_records"] < 20]
    large = [r for r in rows if r["b_records"] >= 20]
    assert sum(r["kbytes"] for r in large) > sum(r["kbytes"] for r in small)
