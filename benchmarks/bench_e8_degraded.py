"""E8 — Record recovery / degraded reads (table).

Paper theme: a key search hitting an unavailable bucket is served by
reconstructing just that record: locate its record group in a parity
bucket, fetch the surviving members (≤ m-1 key fetches), decode.  Cost
is O(m + k) messages — independent of the file size — versus the ~2 of
a normal search; misses stay certain.
"""

import pytest

from harness import build_lhrs, converge, fmt, save_table, scaled


def measure(m, k, extra_down):
    file, keys = build_lhrs(
        m=m, k=k, capacity=16, count=scaled(800), payload=64,
        auto_recover=False, degraded_reads=True,
    )
    converge(file, keys, sample=scaled(200))
    target = next(key for key in keys if file.find_bucket_of(key) == 0)
    with file.stats.measure("normal") as normal:
        assert file.client.search(target).found
    file.fail_data_bucket(0)
    for bucket in range(1, 1 + extra_down):
        file.fail_data_bucket(bucket)
    with file.stats.measure("degraded") as degraded:
        outcome = file.client.search(target)
    assert outcome.found
    # Certain miss while down:
    absent = next(
        key for key in range(10**6, 10**6 + 10**5)
        if file.find_bucket_of(key) == 0
    )
    with file.stats.measure("miss") as miss:
        assert not file.client.search(absent).found
    return {
        "m": m,
        "k": k,
        "down": 1 + extra_down,
        "normal": normal.messages,
        "degraded": degraded.messages,
        "miss": miss.messages,
    }


def run_grid():
    rows = []
    for m, k, extra in ((4, 1, 0), (4, 2, 0), (4, 2, 1), (8, 1, 0), (8, 2, 1)):
        rows.append(measure(m, k, extra))
    return rows


def test_e8_degraded_reads(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    lines = [
        f"{'m':>3} {'k':>3} {'buckets down':>13} {'normal':>7} "
        f"{'degraded':>9} {'certain miss':>13}"
    ]
    for r in rows:
        lines.append(
            f"{r['m']:>3} {r['k']:>3} {r['down']:>13} {r['normal']:>7} "
            f"{r['degraded']:>9} {r['miss']:>13}"
        )
    save_table(
        "e8_degraded",
        "E8: degraded reads — O(m+k) messages, file-size independent; "
        "misses certain from the parity directory",
        lines,
    )
    for r in rows:
        assert r["normal"] == 2
        # report + locate(2) + fetches(2 each, <= m-1-extra) + result
        upper = 2 + 2 + 2 * (r["m"] - 1) + 2 * r["k"] + 2
        assert r["normal"] < r["degraded"] <= upper
        assert r["miss"] <= 6  # report + locate + result: certainty is cheap
