"""E2 — Failure-free key-search cost vs file size and k.

Paper theme: LH*RS key search never touches parity, so its cost is
LH*'s — ~2 messages from a converged client, ≤ 4 + IAM worst case from
any stale image, *independent of the file size M and of k*.
"""

import pytest

from harness import build_lhrs, fmt, save_table, scaled


def measure_search_costs(count, k):
    file, keys = build_lhrs(k=k, capacity=8, count=count, payload=64)
    sample = keys[: min(scaled(300), len(keys))]
    # Fresh client: worst-case image.
    fresh = file.new_client()
    worst = 0
    with file.stats.measure("fresh") as fresh_w:
        for key in sample:
            with file.stats.measure("one") as one:
                outcome = fresh.search(key)
            assert outcome.found
            worst = max(worst, one.messages)
    # Converged client: one convergence pass, then the measured pass.
    for key in sample:
        file.client.search(key)
    with file.stats.measure("steady") as steady_w:
        for key in sample:
            file.client.search(key)
    n = len(sample)
    return {
        "M": file.bucket_count,
        "k": k,
        "fresh_avg": fresh_w.messages / n,
        "steady_avg": steady_w.messages / n,
        "worst": worst,
    }


def run_sweep():
    rows = []
    for count in (scaled(200), scaled(800), scaled(3200)):
        for k in (0, 1, 2):
            rows.append(measure_search_costs(count, k))
    return rows


def test_e2_search_cost(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'M':>6} {'k':>3} {'steady avg':>11} {'fresh avg':>10} {'worst':>6}"]
    for r in rows:
        lines.append(
            f"{r['M']:>6} {r['k']:>3} {fmt(r['steady_avg'], 11)} "
            f"{fmt(r['fresh_avg'], 10)} {r['worst']:>6}"
        )
    save_table(
        "e2_search",
        "E2: key-search messages — flat in M and k (steady ~2, worst <= 5)",
        lines,
    )
    for r in rows:
        assert r["steady_avg"] == pytest.approx(2.0, abs=0.01)
        assert r["worst"] <= 5  # request + 2 hops + reply + IAM
    # Independence of k at fixed M band:
    by_m = {}
    for r in rows:
        by_m.setdefault(r["M"], []).append(r["steady_avg"])
