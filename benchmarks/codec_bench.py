"""Codec perf-regression harness — emits machine-readable BENCH_codec.json.

Times the record-at-a-time scalar paths (what every bulk operation used
before the 2D kernels) against the stacked stripe kernels on the same
inputs, asserting bit-exactness while measuring:

* **encode** — MB/s of ``RSCodec.encode`` per group vs one
  ``encode_batch`` over all groups, across (width, m, k, record size);
* **decode** — MB/s of ``RSCodec.recover`` per group vs one
  ``recover_stripes`` call (worst case: k data positions lost);
* **recovery** — records/s rebuilding every rank of a bucket group, the
  codec-level kernel of experiment E7 (pack + decode + trim, exactly the
  work ``RecoveryManager._rebuild`` does per loss pattern).

Usage::

    PYTHONPATH=src python benchmarks/codec_bench.py            # full grid
    PYTHONPATH=src python benchmarks/codec_bench.py --smoke    # CI gate

The smoke run shrinks the grid and volume but still fails loudly if a
batched kernel loses its edge (speedup gate) or its bit-exactness.
Results land in ``BENCH_codec.json`` at the repo root (override with
``--output``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.gf import GF
from repro.rs import RSCodec

REPO_ROOT = Path(__file__).resolve().parent.parent


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _groups(m: int, record_size: int, ngroups: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    return [
        [
            rng.integers(0, 256, record_size, dtype=np.uint8).tobytes()
            for _ in range(m)
        ]
        for _ in range(ngroups)
    ]


def bench_encode(width, m, k, record_size, ngroups, repeats) -> dict:
    codec = RSCodec(m, k, GF(width))
    groups = _groups(m, record_size, ngroups)
    scalar_out = [codec.encode(g) for g in groups]
    batched_out = codec.encode_batch(groups)
    assert batched_out == scalar_out, "encode_batch is not bit-exact"

    scalar_s = _best_of(lambda: [codec.encode(g) for g in groups], repeats)
    batched_s = _best_of(lambda: codec.encode_batch(groups), repeats)
    mb = ngroups * m * record_size / 1e6
    return {
        "width": width,
        "m": m,
        "k": k,
        "record_size": record_size,
        "ngroups": ngroups,
        "scalar_MBps": mb / scalar_s,
        "batched_MBps": mb / batched_s,
        "speedup": scalar_s / batched_s,
    }


def bench_decode(width, m, k, record_size, ngroups, repeats) -> dict:
    field = GF(width)
    codec = RSCodec(m, k, field)
    groups = _groups(m, record_size, ngroups)
    full = [list(g) + codec.encode(g) for g in groups]
    lost = list(range(k))  # k data positions: the worst decode
    survivors = [p for p in range(m + k) if p not in lost]
    length = field.symbol_length_for_bytes(record_size)

    def scalar():
        return [
            codec.recover({p: cw[p] for p in survivors}, lost) for cw in full
        ]

    def batched():
        stacked = {
            p: field.stack_payloads([cw[p] for cw in full], length)
            for p in survivors
        }
        return codec.recover_stripes(stacked, lost)

    scalar_out, batched_out = scalar(), batched()
    for r, cw in enumerate(full):
        for p in lost:
            want = field.bytes_from_symbols(batched_out[p][r], record_size)
            assert want == scalar_out[r][p] == cw[p], "decode not bit-exact"

    scalar_s = _best_of(scalar, repeats)
    batched_s = _best_of(batched, repeats)
    mb = ngroups * len(lost) * record_size / 1e6
    return {
        "width": width,
        "m": m,
        "k": k,
        "record_size": record_size,
        "ngroups": ngroups,
        "lost": lost,
        "scalar_MBps": mb / scalar_s,
        "batched_MBps": mb / batched_s,
        "speedup": scalar_s / batched_s,
    }


def bench_recovery(width, m, k, record_size, nranks, repeats) -> dict:
    """Rebuild one lost data bucket across every rank of a group.

    Scalar arm: the pre-kernel ``_rebuild`` inner loop — one
    ``codec.recover`` per rank.  Batched arm: the shipped path — pack
    every rank's shares into stacked matrices and decode them in one
    ``recover_stripes`` call, trimming per rank.
    """
    field = GF(width)
    codec = RSCodec(m, k, field)
    groups = _groups(m, record_size, nranks)
    full = [list(g) + codec.encode(g) for g in groups]
    lost = [0]
    survivors = [p for p in range(m + k) if p not in lost]
    length = field.symbol_length_for_bytes(record_size)

    def scalar():
        return [
            codec.recover(
                {p: cw[p] for p in survivors}, lost,
                payload_lengths={0: record_size},
            )[0]
            for cw in full
        ]

    def batched():
        stacked = {
            p: field.stack_payloads([cw[p] for cw in full], length)
            for p in survivors
        }
        out = codec.recover_stripes(stacked, lost)
        return [
            field.bytes_from_symbols(out[0][r], record_size)
            for r in range(nranks)
        ]

    assert scalar() == batched() == [cw[0] for cw in full]
    scalar_s = _best_of(scalar, repeats)
    batched_s = _best_of(batched, repeats)
    return {
        "width": width,
        "m": m,
        "k": k,
        "record_size": record_size,
        "ranks": nranks,
        "scalar_records_per_s": nranks / scalar_s,
        "batched_records_per_s": nranks / batched_s,
        "speedup": scalar_s / batched_s,
    }


def run(smoke: bool) -> dict:
    ngroups = 64
    repeats = 3 if smoke else 5
    sizes = [1024] if smoke else [256, 1024, 4096]
    shapes = [(4, 2)] if smoke else [(4, 1), (4, 2), (8, 2)]
    widths = [8] if smoke else [8, 16]

    results = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "smoke": smoke,
            "note": (
                "scalar_* = pre-kernel record-at-a-time paths (retained "
                "as the in-tree oracle); batched_* = stacked 2D kernels"
            ),
        },
        "encode": [],
        "decode": [],
        "recovery": [],
    }
    for width in widths:
        for m, k in shapes:
            for size in sizes:
                results["encode"].append(
                    bench_encode(width, m, k, size, ngroups, repeats)
                )
                results["decode"].append(
                    bench_decode(width, m, k, size, ngroups, repeats)
                )
        # E7's regime: ~100-byte records, hundreds of ranks per group —
        # the per-rank dispatch overhead is what batching removes.
        results["recovery"].append(
            bench_recovery(width, 4, 2, 128, ngroups * 4, repeats)
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed-size grid for CI")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_codec.json")
    args = parser.parse_args(argv)

    results = run(args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")

    rows = results["encode"] + results["decode"] + results["recovery"]
    for section in ("encode", "decode"):
        for r in results[section]:
            print(
                f"{section:>8}  GF(2^{r['width']}) m={r['m']} k={r['k']} "
                f"{r['record_size']:>5}B: "
                f"{r['scalar_MBps']:>8.1f} -> {r['batched_MBps']:>8.1f} MB/s "
                f"({r['speedup']:.1f}x)"
            )
    for r in results["recovery"]:
        print(
            f"recovery  GF(2^{r['width']}) m={r['m']} k={r['k']} "
            f"{r['record_size']:>5}B: "
            f"{r['scalar_records_per_s']:>8.0f} -> "
            f"{r['batched_records_per_s']:>8.0f} records/s "
            f"({r['speedup']:.1f}x)"
        )
    print(f"\nwrote {args.output}")

    # Regression gates (the acceptance numbers this PR ships with).
    reference = [
        r for r in results["encode"] + results["decode"]
        if r["width"] == 8 and (r["m"], r["k"]) == (4, 2)
        and r["record_size"] == 1024
    ]
    failures = []
    for r in reference:
        if r["speedup"] < 5.0:
            failures.append(
                f"GF(2^8) m=4 k=2 1KB speedup {r['speedup']:.1f}x < 5x"
            )
    for r in results["recovery"]:
        if r["speedup"] < 3.0:
            failures.append(
                f"recovery GF(2^{r['width']}) speedup {r['speedup']:.1f}x < 3x"
            )
    # Memory-bound corners (XOR path on multi-KB records) sit at ~1x;
    # allow measurement noise there but catch real regressions.
    if any(r["speedup"] < 0.9 for r in rows):
        failures.append("a batched kernel is slower than the scalar path")
    if failures:
        print("PERF REGRESSION:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
