"""E18 (extension) — Coordinator fault tolerance: takeover latency and
operation availability under repeated coordinator kills (table).

LH*RS makes every data component expendable; E18 measures what the
replicated journal + standby takeover stack buys for the one remaining
singleton.  Each trial loads a file, then runs rounds of: kill the
coordinator (and one data bucket, so in-round operations genuinely
*need* coordinator services — degraded reads and recovery), push a
batch of key operations through the blackout, and let succession (or,
with no standbys, an operator restart at the end of the round) repair
the control plane.

Reported per replica count:

* **op availability** — fraction of in-blackout operations that still
  complete (the standby pull path carries them through succession;
  with no standbys they fail until the restart);
* **takeover latency** — coordinator kill → ``<file>.coord`` answering
  again, in clock units, driven purely by the lease machinery (no
  client nudging), so it tracks ``lease_timeout`` plus the journal
  replay;
* **journal/checkpoint message overhead** — HA control-plane messages
  per key operation (zero with no replicas, by construction).

Expected shape: availability jumps from ~0 (in-blackout ops against a
dead singleton) to ~1 with ≥1 standby; takeover latency sits a little
above the lease timeout; overhead grows linearly with the replica
count and stays a small fraction of the data traffic.
"""

from harness import save_metrics, save_table, scaled
from repro.core import LHRSConfig, LHRSFile
from repro.sdds.client import OperationFailed
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode
from repro.sim.rng import make_rng

HEARTBEAT = 3.0
LEASE = 9.0
KILL_ROUNDS = 4
OPS_PER_ROUND = 30

HA_KINDS = (
    "coord.journal.append",
    "coord.checkpoint",
    "coord.heartbeat",
    "coord.ping",
    "coord.whois",
    "coord.journal.fetch",
    "coord.checkpoint.fetch",
)


def one_trial(replicas: int, seed: int) -> dict:
    file = LHRSFile(
        LHRSConfig(
            group_size=4,
            availability=1,
            bucket_capacity=16,
            client_acks=True,
            retry_attempts=6,
            retry_backoff_base=0.5,
            coordinator_replicas=replicas,
            heartbeat_interval=HEARTBEAT,
            lease_timeout=LEASE,
            journal_checkpoint_interval=8,
        )
    )
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=200, replace=False)]
    for key in keys:
        file.insert(key, b"e18")

    ok = failed = 0
    latencies: list[float] = []
    for round_index in range(KILL_ROUNDS):
        victim_bucket = round_index % file.bucket_count
        file.fail_data_bucket(victim_bucket)
        file.fail_coordinator()
        # In-blackout operations: reads that need degraded service (the
        # dead bucket's keys) and fresh writes.  With standbys the whois
        # pull path drives succession under the op; without, they fail.
        batch = [
            k for k in keys if file.find_bucket_of(k) == victim_bucket
        ][: OPS_PER_ROUND // 2]
        batch += keys[:OPS_PER_ROUND - len(batch)]
        for j, key in enumerate(batch):
            try:
                if j % 3 == 2:
                    file.insert(10**9 + round_index * 1000 + j, b"new")
                else:
                    file.search(key)
                ok += 1
            except (OperationFailed, NodeUnavailable, UnknownNode,
                    DeliveryFault):
                failed += 1
        if file.network.is_available("f.coord"):
            # A standby already promoted under the ops above; measure a
            # clean lease-driven succession for the latency figure.
            file.fail_coordinator()
        down_at = file.network.now
        if replicas:
            while not file.network.is_available("f.coord"):
                file.network.advance(1.0)
            latencies.append(file.network.now - down_at)
        else:
            file.network.advance(LEASE)  # same blackout budget
            file.network.restore("f.coord")  # operator restart
        file.rs_coordinator.run_probe_cycle(rounds=2)

    by_kind = file.network.stats.total.by_kind
    ha_messages = sum(by_kind.get(kind, 0) for kind in HA_KINDS)
    assert file.verify_parity_consistency() == []
    return {
        "ok": ok,
        "failed": failed,
        "latencies": latencies,
        "ha_messages": ha_messages,
        "takeovers": sum(s.takeovers for s in file.standbys),
        "ops": ok + failed,
    }


def run_grid() -> list[dict]:
    trials = scaled(6, minimum=2)
    rows = []
    for replicas in (0, 1, 2):
        ok = failed = ha_messages = takeovers = ops = 0
        latencies: list[float] = []
        for t in range(trials):
            result = one_trial(replicas, seed=100 * replicas + t)
            ok += result["ok"]
            failed += result["failed"]
            ha_messages += result["ha_messages"]
            takeovers += result["takeovers"]
            ops += result["ops"]
            latencies.extend(result["latencies"])
        rows.append(
            {
                "replicas": replicas,
                "trials": trials,
                "availability": ok / ops,
                "takeovers": takeovers,
                "takeover_latency": (
                    sum(latencies) / len(latencies) if latencies else None
                ),
                "ha_msgs_per_op": ha_messages / ops,
            }
        )
    return rows


def test_e18_coordinator(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    lines = [
        f"{'replicas':>8} {'trials':>7} {'op availability':>16} "
        f"{'takeovers':>10} {'takeover latency':>17} {'HA msgs/op':>11}"
    ]
    for r in rows:
        latency = (
            f"{r['takeover_latency']:.1f}"
            if r["takeover_latency"] is not None
            else "-"
        )
        lines.append(
            f"{r['replicas']:>8} {r['trials']:>7} {r['availability']:>16.3f} "
            f"{r['takeovers']:>10} {latency:>17} {r['ha_msgs_per_op']:>11.2f}"
        )
    save_table(
        "e18_coordinator",
        f"E18 (ext): op availability + takeover latency across "
        f"{KILL_ROUNDS} coordinator kills/trial (heartbeat {HEARTBEAT:.0f}, "
        f"lease {LEASE:.0f} clock units) — standbys turn the coordinator "
        "blackout into a bounded stall",
        lines,
    )
    save_metrics("e18_coordinator", {"rows": rows})
    by = {r["replicas"]: r for r in rows}
    # No standbys: ops that need the dead singleton fail (only the ones
    # served entirely by live data buckets get through).  Any standby:
    # the whois pull path carries every op through succession.
    assert by[0]["availability"] < 0.9
    assert by[1]["availability"] > 0.95
    assert by[2]["availability"] > 0.95
    assert by[1]["availability"] > by[0]["availability"] + 0.1
    assert by[0]["takeovers"] == 0 and by[0]["ha_msgs_per_op"] == 0
    # Succession is lease-bounded: the lease must expire first, then the
    # promotion itself pays message-time (every send/call is a clock
    # unit) that grows with the replica count and the parity namespace.
    for replicas in (1, 2):
        assert by[replicas]["takeover_latency"] is not None
        assert LEASE * 0.5 <= by[replicas]["takeover_latency"] <= LEASE * 6
    # Replication overhead grows with the replica count.
    assert by[1]["ha_msgs_per_op"] < by[2]["ha_msgs_per_op"]
