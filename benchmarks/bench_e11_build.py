"""E11 — File build and split cost (figure).

Paper theme: what scaling-up costs.  Growing an LH*RS file pays the LH*
split machinery plus parity maintenance: every insert ships k Δ-records,
and every split re-groups its movers (one batched delete at the source
group and one batched insert at the target group per parity bucket).
The series tabulates cumulative messages per record while a file grows,
for k = 0..2, splitting the parity-maintenance share out; LH*g's
split-silence is the contrast.
"""

import time

import pytest

from harness import fmt, save_table, scaled
from repro.baselines import LHGConfig, LHGFile
from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng

CHECKPOINTS = [scaled(250), scaled(1000), scaled(4000)]
PARITY_KINDS = ("parity.update", "parity.batch")


def grow(file, upto, inserted, rng_keys):
    for key in rng_keys[inserted:upto]:
        file.insert(int(key), b"x" * 64)
    return upto


def run_series():
    rng = make_rng(33)
    keys = rng.choice(10**9, size=CHECKPOINTS[-1], replace=False)
    rows = []
    for k in (0, 1, 2):
        file = LHRSFile(LHRSConfig(group_size=4, availability=k,
                                   bucket_capacity=16))
        inserted = 0
        wall_s = 0.0
        for checkpoint in CHECKPOINTS:
            start = time.perf_counter()
            inserted = grow(file, checkpoint, inserted, keys)
            wall_s += time.perf_counter() - start
            total = file.stats.total
            parity_msgs = sum(total.by_kind.get(kind, 0)
                              for kind in PARITY_KINDS)
            rows.append(
                {
                    "scheme": f"LH*RS k={k}",
                    "records": inserted,
                    "buckets": file.bucket_count,
                    "splits": file.coordinator.state.splits_done,
                    "msgs_per_record": total.messages / inserted,
                    "parity_share": parity_msgs / total.messages,
                    "build_s": wall_s,
                }
            )
    # LH*g contrast: splits ship no parity messages at all.
    lhg = LHGFile(LHGConfig(group_size=4, bucket_capacity=16))
    inserted = 0
    wall_s = 0.0
    for checkpoint in CHECKPOINTS:
        start = time.perf_counter()
        inserted = grow(lhg, checkpoint, inserted, keys)
        wall_s += time.perf_counter() - start
        total = lhg.stats.total
        parity_msgs = total.by_kind.get("gparity.apply", 0)
        rows.append(
            {
                "scheme": "LH*g m=4",
                "records": inserted,
                "buckets": lhg.bucket_count,
                "splits": lhg.coordinator.state.splits_done,
                "msgs_per_record": total.messages / inserted,
                "parity_share": parity_msgs / total.messages,
                "build_s": wall_s,
            }
        )
    return rows


def test_e11_build_cost(benchmark):
    rows = benchmark.pedantic(run_series, rounds=1, iterations=1)
    lines = [
        f"{'scheme':<12} {'records':>8} {'buckets':>8} {'splits':>7} "
        f"{'msgs/record':>12} {'parity share':>13} {'build s':>8}"
    ]
    for r in rows:
        lines.append(
            f"{r['scheme']:<12} {r['records']:>8} {r['buckets']:>8} "
            f"{r['splits']:>7} {fmt(r['msgs_per_record'], 12)} "
            f"{fmt(r['parity_share'], 13)} {fmt(r['build_s'], 8, 3)}"
        )
    save_table(
        "e11_build",
        "E11: build cost while scaling — msgs/record flat in M; parity "
        "share grows with k",
        lines,
    )
    final = {r["scheme"]: r for r in rows if r["records"] == CHECKPOINTS[-1]}
    # Cost per record is ~flat in M (scalability); tiny smoke-scale files
    # are still in their warm-up transient, so only check at full scale.
    from harness import SCALE

    if SCALE >= 0.75:
        for scheme in final:
            series = [
                r["msgs_per_record"] for r in rows if r["scheme"] == scheme
            ]
            assert max(series) / min(series) < 1.6
    # ... and ordered in k.
    assert (final["LH*RS k=0"]["msgs_per_record"]
            < final["LH*RS k=1"]["msgs_per_record"]
            < final["LH*RS k=2"]["msgs_per_record"])
    assert final["LH*RS k=0"]["parity_share"] == 0.0
