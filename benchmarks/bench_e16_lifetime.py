"""E16 (extension) — Survival and MTTR under continuous failures (figure).

E5's availability is a *snapshot*; operationally what matters is the
lifetime process: crashes arrive continuously (exponential MTBF per
node via the FailureInjector), clients keep reading through the
degradation (retry/backoff, degraded reads off parity), and the
coordinator's autonomous probe→recover loop repairs each loss.  The
file dies only when more than k buckets of one group are down within
one repair interval.

This experiment runs that process on the real machinery — flaky-node
schedules firing on the simulation clock, a lossy message plane
battering the read traffic, ``run_probe_cycle`` as the repair loop —
and reports per availability level k and probe interval: survival
probability over the horizon and the *measured* MTTR (crash →
rebuilt, in clock units; every message and every backoff wait costs a
tick, so MTTR is in the same currency as operation latencies).

Expected shape: survival rises steeply with k (death needs k+1
near-simultaneous failures in one group); MTTR tracks the probe
interval — a loss waits about half an interval longer per skipped
probe.
"""

import pytest

from harness import save_table, scaled
from repro.core import LHRSConfig, LHRSFile, RecoveryError
from repro.sdds.client import OperationFailed
from repro.sim import FaultPlane
from repro.sim.rng import make_rng

ROUNDS = 40  # probe rounds per trial
MTBF = 800.0  # per-node mean time between failures (clock units)


def one_trial(k: int, probe_every: int, seed: int):
    """Returns (survived, death_round, mttr_samples)."""
    file = LHRSFile(
        LHRSConfig(
            group_size=4,
            availability=k,
            bucket_capacity=8,
            client_acks=True,
            retry_attempts=4,
            retry_backoff_base=0.25,
            spare_servers=64,
        )
    )
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=120, replace=False)]
    for key in keys:
        file.insert(key, b"lifetime")

    # The message plane stays hostile throughout: the client's retry
    # ladder absorbs lost requests and replies while buckets crash.
    plane = FaultPlane(rng=make_rng(seed + 1))
    plane.add_rule(
        kinds={"search", "search.result"}, drop=0.03, fail=0.03, duplicate=0.03
    )
    file.network.install_fault_plane(plane)

    injector = file.failures
    injector.rng = make_rng(seed + 2)
    nodes = [f"f.d{b}" for b in range(file.bucket_count)] + [
        f"f.p{g}.{i}"
        for g, level in file.group_levels().items()
        for i in range(level)
    ]
    # Crashes arrive per node at rate 1/MTBF; the huge "self-repair"
    # time means a crashed node stays down until the loop rebuilds it.
    injector.make_flaky(nodes, mtbf=MTBF, mttr=1e9)

    coordinator = file.rs_coordinator
    crashed_at: dict[str, float] = {}
    seen_events = 0
    mttr: list[float] = []
    for round_index in range(ROUNDS):
        if round_index % probe_every == 0:
            entry = coordinator.run_probe_cycle(rounds=1)[0]
        else:
            file.network.advance(1.0)  # crashes still fire on schedule
            entry = None
        for at, action, node in injector.event_log[seen_events:]:
            if action == "crash":
                crashed_at.setdefault(node, at)
        seen_events = len(injector.event_log)
        if entry is not None:
            # MTTR counts losses the *probe loop* noticed and repaired;
            # a node a client escalation already rebuilt between probes
            # never shows up unavailable and is dropped without a sample.
            for node in list(crashed_at):
                if file.network.is_available(node):
                    if node in entry["unavailable"]:
                        mttr.append(entry["time"] - crashed_at[node])
                    del crashed_at[node]
            if any("exceeds availability" in e["error"] for e in entry["errors"]):
                return False, round_index, mttr
        # A few reads ride along every round; crashed buckets answer
        # through degraded record recovery until the loop rebuilds them.
        for key in keys[3 * round_index : 3 * round_index + 3]:
            try:
                file.search(key)
            except OperationFailed:
                pass  # retry budget lost to the plane; the file lives
            except RecoveryError:
                return False, round_index, mttr  # group beyond help
    return True, ROUNDS, mttr


def run_grid():
    trials = scaled(30, minimum=8)
    rows = []
    for k in (1, 2, 3):
        for probe_every in (1, 2):
            survived = 0
            deaths: list[int] = []
            repair_times: list[float] = []
            for t in range(trials):
                ok, when, mttr = one_trial(
                    k, probe_every, seed=1000 * k + 10 * probe_every + t
                )
                survived += ok
                repair_times.extend(mttr)
                if not ok:
                    deaths.append(when)
            rows.append(
                {
                    "k": k,
                    "probe_every": probe_every,
                    "trials": trials,
                    "survival": survived / trials,
                    "repairs": len(repair_times),
                    "mttr": (
                        sum(repair_times) / len(repair_times)
                        if repair_times else None
                    ),
                    "median_death": sorted(deaths)[len(deaths) // 2]
                    if deaths else None,
                }
            )
    return rows


def test_e16_lifetime(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    lines = [
        f"{'k':>3} {'probe every':>12} {'trials':>7} {'survival':>9} "
        f"{'repairs':>8} {'MTTR':>6} {'median death round':>19}"
    ]
    for r in rows:
        death = r["median_death"] if r["median_death"] is not None else "-"
        mttr = f"{r['mttr']:.2f}" if r["mttr"] is not None else "-"
        lines.append(
            f"{r['k']:>3} {r['probe_every']:>12} {r['trials']:>7} "
            f"{r['survival']:>9.2f} {r['repairs']:>8} {mttr:>6} "
            f"{str(death):>19}"
        )
    save_table(
        "e16_lifetime",
        f"E16 (ext): survival + MTTR over {ROUNDS} probe rounds, per-node "
        f"MTBF {MTBF:.0f} clock units — k buys lifetime; slower probing "
        "costs repair time",
        lines,
    )
    by = {(r["k"], r["probe_every"]): r for r in rows}
    # Survival is monotone in k at fixed repair speed (sampling slack).
    assert by[(1, 1)]["survival"] <= by[(2, 1)]["survival"] + 0.1
    assert by[(2, 1)]["survival"] <= by[(3, 1)]["survival"] + 0.1
    assert by[(3, 1)]["survival"] >= 0.9
    # Slower repair can only hurt survival (small sampling slack).
    assert by[(2, 2)]["survival"] <= by[(2, 1)]["survival"] + 0.15
    # MTTR tracks the probe interval: probing every 2nd round makes a
    # loss wait longer on average.
    fast = [r["mttr"] for r in rows if r["probe_every"] == 1 and r["mttr"]]
    slow = [r["mttr"] for r in rows if r["probe_every"] == 2 and r["mttr"]]
    assert fast and slow
    assert sum(slow) / len(slow) > sum(fast) / len(fast)
