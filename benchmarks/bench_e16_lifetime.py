"""E16 (extension) — Survival under continuous failures (figure).

E5's availability is a *snapshot*; operationally what matters is
survival over time: failures arrive continuously, the coordinator
detects and repairs them (probe rounds), and the file dies only when
more than k buckets of one group fail *within one repair interval*.
This experiment runs that process on the real machinery — failures
injected per round, coordinator probe + RS recovery per round — and
estimates survival probability over a horizon for k = 1..3, plus the
effect of slower repair (probing every 2nd round).

Expected shape: survival rises steeply with k (the window needs k+1
near-simultaneous failures in one group) and falls as repair slows.
"""

import pytest

from harness import save_table, scaled
from repro.core import LHRSConfig, LHRSFile, RecoveryError
from repro.sim.rng import make_rng

ROUNDS = 40
FAIL_P = 0.02  # per-node, per-round failure probability


def one_trial(k, probe_every, seed):
    file = LHRSFile(
        LHRSConfig(group_size=4, availability=k, bucket_capacity=8)
    )
    rng = make_rng(seed)
    for key in rng.choice(10**9, size=120, replace=False):
        file.insert(int(key), b"lifetime")
    nodes = [f"f.d{b}" for b in range(file.bucket_count)] + [
        f"f.p{g}.{i}"
        for g, level in file.group_levels().items()
        for i in range(level)
    ]
    for round_index in range(ROUNDS):
        for node in nodes:
            if rng.random() < FAIL_P and file.network.is_available(node):
                file.network.fail(node)
        if round_index % probe_every == 0:
            try:
                file.rs_coordinator.probe()
            except RecoveryError:
                return False, round_index  # > k failures in one group
    try:
        file.rs_coordinator.probe()
    except RecoveryError:
        return False, ROUNDS
    return True, ROUNDS


def run_grid():
    trials = scaled(30, minimum=8)
    rows = []
    for k in (1, 2, 3):
        for probe_every in (1, 2):
            survived = 0
            deaths = []
            for t in range(trials):
                ok, when = one_trial(k, probe_every, seed=1000 * k + 10 * probe_every + t)
                survived += ok
                if not ok:
                    deaths.append(when)
            rows.append(
                {
                    "k": k,
                    "probe_every": probe_every,
                    "trials": trials,
                    "survival": survived / trials,
                    "median_death": sorted(deaths)[len(deaths) // 2]
                    if deaths else None,
                }
            )
    return rows


def test_e16_lifetime(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    lines = [
        f"{'k':>3} {'probe every':>12} {'trials':>7} {'survival':>9} "
        f"{'median death round':>19}"
    ]
    for r in rows:
        death = r["median_death"] if r["median_death"] is not None else "-"
        lines.append(
            f"{r['k']:>3} {r['probe_every']:>12} {r['trials']:>7} "
            f"{r['survival']:>9.2f} {str(death):>19}"
        )
    save_table(
        "e16_lifetime",
        f"E16 (ext): survival over {ROUNDS} rounds at {FAIL_P:.0%}/node/"
        "round — k buys lifetime; slower repair costs it",
        lines,
    )
    by = {(r["k"], r["probe_every"]): r["survival"] for r in rows}
    # Survival is monotone in k at fixed repair speed.
    assert by[(1, 1)] <= by[(2, 1)] <= by[(3, 1)]
    assert by[(3, 1)] >= 0.9
    # Slower repair can only hurt (allow small sampling slack).
    assert by[(2, 2)] <= by[(2, 1)] + 0.15
