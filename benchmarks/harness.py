"""Shared helpers for the experiment benchmarks.

Every ``bench_eN_*.py`` module regenerates one table/figure of the
evaluation (see DESIGN.md §4).  Conventions:

* each experiment builds its workload through `repro.workloads`, runs
  on the simulator, and renders a plain-text table;
* tables print to stdout *and* persist under ``benchmarks/output/`` so
  EXPERIMENTS.md can quote them;
* a representative kernel is wrapped with pytest-benchmark so
  ``pytest benchmarks/ --benchmark-only`` also yields timing rows.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core import LHRSConfig, LHRSFile
from repro.obs import MetricsRegistry
from repro.sim.rng import make_rng

OUTPUT_DIR = Path(__file__).parent / "output"

#: scale factor: set REPRO_BENCH_SCALE=0.2 for quick smoke runs
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    """Scale a workload size by REPRO_BENCH_SCALE."""
    return max(int(n * SCALE), minimum)


def save_table(name: str, title: str, lines: list[str]) -> str:
    """Print and persist an experiment's table; returns the text."""
    text = "\n".join([title, "-" * len(title), *lines, ""])
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text)
    print("\n" + text)
    return text


def save_metrics(name: str, data: dict) -> Path:
    """Persist one experiment's machine-readable metrics.

    Written next to the text table as ``output/<name>.metrics.json`` —
    CI uploads these as workflow artifacts, so a moved number in a table
    can be explained from the distributions behind it.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.metrics.json"
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True, default=str) + "\n"
    )
    return path


def with_metrics(file: LHRSFile) -> MetricsRegistry:
    """Attach a metrics registry to a built file; returns the registry.

    Metrics-only observability: labelled ``stats.measure`` windows feed
    per-op histograms and the network's delivery counters tick, but no
    tracer is installed and no messages are added — the measured
    message counts are identical with or without this call.
    """
    registry = MetricsRegistry()
    file.network.install_metrics(registry)
    file.metrics = registry
    return registry


def build_lhrs(
    m: int = 4,
    k: int = 1,
    capacity: int = 16,
    count: int = 500,
    payload: int = 64,
    seed: int = 42,
    **config_kwargs,
) -> tuple[LHRSFile, list[int]]:
    """An LH*RS file pre-loaded with a uniform workload."""
    config = LHRSConfig(
        group_size=m, availability=k, bucket_capacity=capacity, **config_kwargs
    )
    file = LHRSFile(config)
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    value = b"x" * payload
    for key in keys:
        file.insert(key, value)
    return file, keys


def converge(file, keys, sample: int | None = None) -> None:
    """Converge the default client's image by searching known keys."""
    for key in keys if sample is None else keys[:sample]:
        file.search(key)


def fmt(value, width: int = 8, digits: int = 2) -> str:
    """Fixed-width numeric cell."""
    if isinstance(value, float):
        return f"{value:>{width}.{digits}f}"
    return f"{value:>{width}}"
