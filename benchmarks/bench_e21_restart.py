"""E21 — restart recovery: emits BENCH_restart.json.

Measures the tentpole's service-level claim: a restarted bucket that
replays its checkpoint + WAL and *delta catches up* — fetching only the
ops it missed — beats the full RS rebuild by a margin that grows as
staleness shrinks.  Three result families:

* **restart** — catch-up vs full-rebuild MTTR across a staleness sweep
  (missed tail as a fraction of the bucket's records).  MTTR is the
  simulated repair time of the message window (:class:`LatencyModel`:
  fixed per-message cost + bandwidth + GF CPU term), the same model the
  recovery benchmarks use; wall-clock and repair bytes ride along.
* **repair bytes vs staleness** — catch-up bytes must scale with the
  missed tail, not with the bucket (the rebuild's cost).
* **durability overhead** — the insert path with the WAL on vs off
  (fsync every op, the strictest knob), plus disk-counter totals.

Usage::

    PYTHONPATH=src python benchmarks/bench_e21_restart.py           # full grid
    PYTHONPATH=src python benchmarks/bench_e21_restart.py --smoke   # CI gate

Shipped gates (smoke and full): at staleness <= 5% the catch-up MTTR is
<= 0.3x the full-rebuild MTTR and moves fewer bytes; across the sweep,
catch-up bytes grow monotonically with staleness.  Results land in
``BENCH_restart.json`` at the repo root (``--output`` overrides).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import LHRSConfig, LHRSFile
from repro.sim.stats import LatencyModel

REPO_ROOT = Path(__file__).resolve().parent.parent
MODEL = LatencyModel()
PAYLOAD = 128


def _items(count: int, seed: int = 7) -> list:
    rng = np.random.default_rng(seed)
    keys = [int(k) for k in rng.choice(10 ** 9, size=count, replace=False)]
    return [(k, rng.integers(0, 256, PAYLOAD, dtype=np.uint8).tobytes())
            for k in keys]


def _build_durable(items) -> LHRSFile:
    """A durable file whose WAL never auto-syncs: everything after the
    explicit checkpoint below is an unsynced tail a crash will eat —
    which makes the missed-tail size (the staleness) exactly
    controllable by the caller."""
    config = LHRSConfig(
        group_size=4, availability=2, bucket_capacity=256,
        parity_ack=True, client_acks=True,
        durability=True, wal_fsync_interval=10 ** 9,
    )
    file = LHRSFile(config)
    for key, value in items:
        file.insert(key, value)
    for server in file.data_servers():
        server.checkpoint_now()
    for server in file.parity_servers():
        server.checkpoint_now()
    return file


def _stale_updates(file: LHRSFile, items, victim_bucket: int,
                   fraction: float) -> list:
    """Update ``fraction`` of the victim's records (acked, parity
    applied, WAL tail unsynced) and return the updated pairs."""
    victims = [
        (key, value) for key, value in items
        if file.find_bucket_of(key) == victim_bucket
    ]
    stale = max(1, int(round(fraction * len(victims))))
    updated = [
        (key, value[::-1]) for key, value in victims[:stale]
    ]
    for key, value in updated:
        file.update(key, value)
    return updated


def bench_restart(count: int, fraction: float) -> dict:
    """One staleness point: catch-up arm vs full-rebuild arm."""
    items = _items(count)

    # --- catch-up arm -------------------------------------------------
    file = _build_durable(items)
    tracer, _, _ = file.enable_observability(trace_capacity=2000,
                                            audit=False)
    node = "f.d1"
    bucket_records = sum(
        1 for key, _ in items if file.find_bucket_of(key) == 1
    )
    updated = _stale_updates(file, items, victim_bucket=1,
                             fraction=fraction)
    file.stats.reset()
    start = time.perf_counter()
    with file.stats.measure("catchup") as catchup:
        file.failures.crash([node])
        file.failures.heal([node])
    catchup_wall = time.perf_counter() - start
    assert tracer.counts.get("catchup.fallback") is None, (
        "catch-up arm fell back to a rebuild — benchmark is void"
    )
    for key, value in updated:
        outcome = file.search(key)
        assert outcome.found and outcome.value == value
    assert file.verify_parity_consistency() == []

    # --- full-rebuild arm (identical file and staleness) --------------
    file = _build_durable(items)
    _stale_updates(file, items, victim_bucket=1, fraction=fraction)
    file.stats.reset()
    victim = file.fail_data_bucket(1)
    start = time.perf_counter()
    with file.stats.measure("rebuild") as rebuild:
        file.recover([victim])
    rebuild_wall = time.perf_counter() - start
    assert file.verify_parity_consistency() == []

    return {
        "count": count,
        "bucket_records": bucket_records,
        "staleness": fraction,
        "missed_ops": len(updated),
        "catchup_mttr_ms": MODEL.window_time(catchup) * 1e3,
        "rebuild_mttr_ms": MODEL.window_time(rebuild) * 1e3,
        "mttr_ratio": (
            MODEL.window_time(catchup) / MODEL.window_time(rebuild)
        ),
        "catchup_bytes": catchup.bytes,
        "rebuild_bytes": rebuild.bytes,
        "catchup_messages": catchup.messages,
        "rebuild_messages": rebuild.messages,
        "catchup_wall_ms": catchup_wall * 1e3,
        "rebuild_wall_ms": rebuild_wall * 1e3,
    }


def bench_overhead(count: int, repeats: int) -> dict:
    """Insert-path cost of the durable plane at its strictest setting
    (fsync every logged op)."""
    items = _items(count, seed=11)

    def arm(durable: bool):
        best, disk = float("inf"), {}
        for _ in range(repeats):
            config = LHRSConfig(
                group_size=4, availability=2, bucket_capacity=256,
                parity_ack=True, client_acks=True, durability=durable,
            )
            file = LHRSFile(config)
            start = time.perf_counter()
            for key, value in items:
                file.insert(key, value)
            best = min(best, time.perf_counter() - start)
            if durable:
                disks = [s._disk for s in file.data_servers()]
                disks += [s._disk for s in file.parity_servers()]
                disk = {
                    "fsyncs": sum(d.fsyncs for d in disks),
                    "appends": sum(d.appends for d in disks),
                    "bytes_written": sum(d.bytes_written for d in disks),
                }
        return best, disk

    off_s, _ = arm(False)
    on_s, disk = arm(True)
    return {
        "count": count,
        "off_ops_per_s": count / off_s,
        "on_ops_per_s": count / on_s,
        "overhead_x": on_s / off_s,
        "disk": disk,
    }


def run(smoke: bool) -> dict:
    count = 240 if smoke else 600
    fractions = [0.05] if smoke else [0.02, 0.05, 0.1, 0.2, 0.4]
    results = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "smoke": smoke,
            "note": (
                "mttr = simulated repair window time (LatencyModel); "
                "staleness = missed tail / victim bucket records"
            ),
        },
        "restart": [bench_restart(count, f) for f in fractions],
        "overhead": bench_overhead(count, repeats=2 if smoke else 3),
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fixed-size grid for CI")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_restart.json")
    args = parser.parse_args(argv)

    results = run(args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")

    for r in results["restart"]:
        print(
            f"staleness={r['staleness']:>5.0%} ({r['missed_ops']:>3} ops): "
            f"catch-up {r['catchup_mttr_ms']:>7.3f} ms / "
            f"{r['catchup_bytes']:>8d} B   vs   rebuild "
            f"{r['rebuild_mttr_ms']:>7.3f} ms / {r['rebuild_bytes']:>8d} B"
            f"   (mttr {r['mttr_ratio']:.2f}x)"
        )
    o = results["overhead"]
    print(
        f"insert path: {o['off_ops_per_s']:>8.0f} ops/s -> "
        f"{o['on_ops_per_s']:>8.0f} ops/s durable "
        f"({o['overhead_x']:.2f}x cost, {o['disk']['fsyncs']} fsyncs)"
    )
    print(f"\nwrote {args.output}")

    # Regression gates (the acceptance numbers this PR ships with).
    failures = []
    for r in results["restart"]:
        if r["staleness"] <= 0.05:
            if r["mttr_ratio"] > 0.3:
                failures.append(
                    f"staleness {r['staleness']:.0%}: mttr ratio "
                    f"{r['mttr_ratio']:.2f} > 0.30"
                )
            if r["catchup_bytes"] >= r["rebuild_bytes"]:
                failures.append(
                    f"staleness {r['staleness']:.0%}: catch-up moved "
                    f"{r['catchup_bytes']} B >= rebuild "
                    f"{r['rebuild_bytes']} B"
                )
    sweep = results["restart"]
    for lo, hi in zip(sweep, sweep[1:]):
        if hi["catchup_bytes"] < lo["catchup_bytes"]:
            failures.append(
                f"repair bytes shrank as staleness grew: "
                f"{lo['staleness']:.0%} -> {hi['staleness']:.0%}"
            )
    if failures:
        print("\nGATE FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("gates: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
