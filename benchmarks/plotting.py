"""Tiny ASCII plotting for the figure-type experiments.

The papers' evaluation has both tables and figures; the benchmark
harness renders figures as terminal charts so `benchmarks/output/`
carries the curve shapes, not just the numbers.
"""

from __future__ import annotations


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
) -> list[str]:
    """Render named (x, y) series as an ASCII chart, one glyph each."""
    import math

    glyphs = "*o+x#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return ["(no data)"]

    def tx(x: float) -> float:
        return math.log10(max(x, 1e-12)) if logx else x

    xs = [tx(x) for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in pts:
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if y_label:
        lines.append(y_label)
    for r, row in enumerate(grid):
        label = f"{y_hi:9.3g}" if r == 0 else (
            f"{y_lo:9.3g}" if r == height - 1 else " " * 9
        )
        lines.append(f"{label} |{''.join(row)}|")
    lines.append(" " * 10 + "-" * (width + 2))
    x_axis = f"{(10 ** x_lo if logx else x_lo):.3g}"
    x_end = f"{(10 ** x_hi if logx else x_hi):.3g}"
    pad = width - len(x_axis) - len(x_end)
    lines.append(" " * 11 + x_axis + " " * max(pad, 1) + x_end
                 + (f"   {x_label}" if x_label else ""))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return lines
