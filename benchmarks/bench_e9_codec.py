"""E9 — RS encode/decode throughput (figure; real CPU benchmark).

Paper theme: the parity calculus is table-driven GF arithmetic; the XOR
row (parity bucket 0) is markedly faster than general GF rows, GF(2^8)
and GF(2^16) trade table size against symbol count, and decode adds only
a small matrix-inversion term over encode.  These are genuine
pytest-benchmark timings on the host CPU.

The ``*_batch`` tests time the stacked 2D stripe kernels this codec's
bulk paths run on (see ``benchmarks/codec_bench.py`` for the tracked
scalar-vs-batched regression grid in ``BENCH_codec.json``).
"""

import pytest

from repro.gf import GF
from repro.rs import RSCodec

PAYLOAD = 4096
M = 4

# The acceptance configuration of the batched kernels: many 1 KB-record
# groups encoded/decoded per kernel dispatch instead of per record.
BATCH_PAYLOAD = 1024
BATCH_GROUPS = 64


def make_group(codec, seed=1):
    import numpy as np

    rng = np.random.default_rng(seed)
    payloads = [rng.integers(0, 256, PAYLOAD, dtype=np.uint8).tobytes()
                for _ in range(codec.m)]
    parity = codec.encode(payloads)
    shares = {j: p for j, p in enumerate(payloads)}
    shares.update({codec.m + i: p for i, p in enumerate(parity)})
    return payloads, shares


@pytest.mark.parametrize("width", [8, 16])
@pytest.mark.parametrize("k", [1, 2, 3])
def test_e9_encode_throughput(benchmark, width, k):
    codec = RSCodec(m=M, k=k, field=GF(width))
    payloads, _ = make_group(codec)
    result = benchmark(codec.encode, payloads)
    assert len(result) == k
    benchmark.extra_info["MB_encoded"] = M * PAYLOAD / 1e6
    benchmark.extra_info["config"] = f"GF(2^{width}) m={M} k={k}"


@pytest.mark.parametrize("width", [8, 16])
@pytest.mark.parametrize("lost", [[0], [0, 1], [0, 1, 2]])
def test_e9_decode_throughput(benchmark, width, lost):
    k = len(lost)
    codec = RSCodec(m=M, k=k, field=GF(width))
    payloads, shares = make_group(codec)
    survivors = {p: v for p, v in shares.items() if p not in lost}
    result = benchmark(codec.recover, survivors, lost)
    for pos in lost:
        assert result[pos] == payloads[pos]
    benchmark.extra_info["config"] = f"GF(2^{width}) f={k}"


def make_batch(codec, ngroups=BATCH_GROUPS, payload=BATCH_PAYLOAD, seed=3):
    import numpy as np

    rng = np.random.default_rng(seed)
    return [
        [rng.integers(0, 256, payload, dtype=np.uint8).tobytes()
         for _ in range(codec.m)]
        for _ in range(ngroups)
    ]


@pytest.mark.parametrize("width", [8, 16])
def test_e9_encode_batch_throughput(benchmark, width):
    """One stacked kernel pass over many groups (the bulk-build path)."""
    codec = RSCodec(m=M, k=2, field=GF(width))
    groups = make_batch(codec)
    result = benchmark(codec.encode_batch, groups)
    assert result[0] == codec.encode(groups[0])
    benchmark.extra_info["MB_encoded"] = (
        BATCH_GROUPS * M * BATCH_PAYLOAD / 1e6
    )
    benchmark.extra_info["config"] = (
        f"GF(2^{width}) m={M} k=2 x{BATCH_GROUPS} groups"
    )


@pytest.mark.parametrize("width", [8, 16])
def test_e9_decode_batch_throughput(benchmark, width):
    """Rebuild two lost data positions of many groups in one kernel."""
    field = GF(width)
    codec = RSCodec(m=M, k=2, field=field)
    groups = make_batch(codec)
    full = [list(g) + codec.encode(g) for g in groups]
    lost = [0, 1]
    survivors = [p for p in range(M + 2) if p not in lost]
    length = field.symbol_length_for_bytes(BATCH_PAYLOAD)

    def batched():
        stacked = {
            p: field.stack_payloads([cw[p] for cw in full], length)
            for p in survivors
        }
        return codec.recover_stripes(stacked, lost)

    result = benchmark(batched)
    assert (
        field.bytes_from_symbols(result[0][0], BATCH_PAYLOAD)
        == groups[0][0]
    )
    benchmark.extra_info["MB_decoded"] = (
        BATCH_GROUPS * len(lost) * BATCH_PAYLOAD / 1e6
    )
    benchmark.extra_info["config"] = (
        f"GF(2^{width}) m={M} f=2 x{BATCH_GROUPS} groups"
    )


def test_e9_xor_fast_path_vs_general_row(benchmark):
    """Fold a Δ into parity 0 (XOR) vs parity 1 (general GF row)."""
    codec = RSCodec(m=M, k=2, field=GF(8))
    delta = bytes(range(256)) * (PAYLOAD // 256)

    def both():
        acc0 = codec.new_parity_accumulator(PAYLOAD)
        acc1 = codec.new_parity_accumulator(PAYLOAD)
        codec.fold(acc0, 0, 2, delta)  # coefficient 1: XOR
        codec.fold(acc1, 1, 2, delta)  # general coefficient
        return acc0, acc1

    benchmark(both)


def test_e9_delta_update_throughput(benchmark):
    """The steady-state path: one Δ folded into k parity accumulators."""
    k = 2
    codec = RSCodec(m=M, k=k, field=GF(8))
    delta = bytes(range(256)) * (PAYLOAD // 256)
    accs = [codec.new_parity_accumulator(PAYLOAD) for _ in range(k)]

    def update():
        for i in range(k):
            accs[i] = codec.fold(accs[i], i, 1, delta)

    benchmark(update)
    benchmark.extra_info["KB_per_update"] = PAYLOAD / 1024
