"""E1 — Storage overhead vs (m, k).

Paper theme: parity storage is ~k/m of data storage; the data file keeps
LH*'s ~70% load factor, so the *byte* overhead is (k/m)/load while the
*allocated-bucket* overhead is exactly k/m.  This bench builds files for
a grid of (m, k) and tabulates measured against analytic.
"""

import pytest

from harness import build_lhrs, fmt, save_table, scaled

GRID = [(4, 1), (4, 2), (4, 3), (8, 1), (8, 2), (16, 1)]
COUNT = scaled(3000)


def run_grid():
    rows = []
    for m, k in GRID:
        file, _ = build_lhrs(m=m, k=k, capacity=32, count=COUNT, payload=100)
        groups = len(file.group_levels())
        bucket_overhead = file.parity_bucket_count() / file.bucket_count
        rows.append(
            {
                "m": m,
                "k": k,
                "buckets": file.bucket_count,
                "groups": groups,
                "load": file.load_factor(),
                "bucket_overhead": bucket_overhead,
                "byte_overhead": file.storage_overhead(),
                "analytic_k_over_m": k / m,
            }
        )
    return rows


def render(rows):
    header = (
        f"{'m':>4} {'k':>3} {'buckets':>8} {'load':>6} "
        f"{'bucket-ovh':>11} {'k/m':>6} {'byte-ovh':>9} {'(k/m)/load':>11}"
    )
    lines = [header]
    for r in rows:
        lines.append(
            f"{r['m']:>4} {r['k']:>3} {r['buckets']:>8} "
            f"{fmt(r['load'], 6)} {fmt(r['bucket_overhead'], 11, 3)} "
            f"{fmt(r['analytic_k_over_m'], 6, 3)} "
            f"{fmt(r['byte_overhead'], 9, 3)} "
            f"{fmt(r['analytic_k_over_m'] / r['load'], 11, 3)}"
        )
    return lines


def test_e1_storage_overhead(benchmark):
    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    save_table(
        "e1_storage",
        "E1: storage overhead vs (m, k) — allocated overhead = k/m; "
        "byte overhead ~ (k/m)/load",
        render(rows),
    )
    for r in rows:
        # Allocated overhead tracks k/m (partial last group adds slack).
        assert r["bucket_overhead"] == pytest.approx(
            r["analytic_k_over_m"], rel=0.4
        )
        # Byte overhead tracks (k/m)/load (wide groups in small files
        # run sparser, hence the generous band).
        assert r["byte_overhead"] == pytest.approx(
            r["analytic_k_over_m"] / r["load"], rel=0.45
        )
