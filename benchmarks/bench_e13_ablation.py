"""E13 — Ablation: the normalized (all-ones) generator vs raw Vandermonde.

Paper theme: LH*RS's generator is deliberately *structured* — first
parity row and first data column all ones — so parity bucket 0 works by
XOR and position-0 Δ-folds are XOR at every parity bucket.  A raw
systematic Vandermonde generator is equally MDS but has no ones
structure.  This bench measures the XOR-fold fraction and the real CPU
time of encode and Δ-fold under both constructions.
"""

import time

import pytest

from harness import fmt, save_table, scaled
from repro.gf import GF
from repro.rs import RSCodec
from repro.rs.generator import parity_matrix

M, K = 4, 3
PAYLOAD = 4096
ROUNDS = scaled(300)


def ones_fraction(kind):
    p = parity_matrix(GF(8), M, K, kind)
    entries = [p[i, j] for i in range(K) for j in range(M)]
    return sum(1 for e in entries if e == 1) / len(entries)


def timed_folds(kind):
    codec = RSCodec(m=M, k=K, field=GF(8), kind=kind)
    delta = bytes(range(256)) * (PAYLOAD // 256)
    accs = [codec.new_parity_accumulator(PAYLOAD) for _ in range(K)]
    start = time.perf_counter()
    for r in range(ROUNDS):
        pos = r % M
        for i in range(K):
            accs[i] = codec.fold(accs[i], i, pos, delta)
    return time.perf_counter() - start


def timed_encode(kind):
    import numpy as np

    codec = RSCodec(m=M, k=K, field=GF(8), kind=kind)
    rng = np.random.default_rng(7)
    payloads = [rng.integers(0, 256, PAYLOAD, dtype=np.uint8).tobytes()
                for _ in range(M)]
    start = time.perf_counter()
    for _ in range(ROUNDS // 4):
        codec.encode(payloads)
    return time.perf_counter() - start


def run_ablation():
    rows = []
    for kind in ("cauchy", "vandermonde"):
        rows.append(
            {
                "kind": kind,
                "ones": ones_fraction(kind),
                "fold_s": timed_folds(kind),
                "encode_s": timed_encode(kind),
            }
        )
    return rows


def test_e13_generator_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = [
        f"{'generator':<12} {'ones frac':>10} {'Δ-folds s':>10} "
        f"{'encode s':>9}"
    ]
    for r in rows:
        lines.append(
            f"{r['kind']:<12} {fmt(r['ones'], 10)} {fmt(r['fold_s'], 10, 4)} "
            f"{fmt(r['encode_s'], 9, 4)}"
        )
    save_table(
        "e13_ablation",
        "E13: normalized Cauchy vs raw Vandermonde — the ones structure "
        "converts a big share of folds into XOR",
        lines,
    )
    cauchy, vandermonde = rows
    # Normalization puts ones in the whole first row and first column.
    expected_ones = (M + K - 1) / (M * K)
    assert cauchy["ones"] >= expected_ones - 1e-9
    assert vandermonde["ones"] < cauchy["ones"]
    # More XOR folds should not be slower.
    assert cauchy["fold_s"] <= vandermonde["fold_s"] * 1.15


def test_e13_fold_kernel(benchmark):
    """pytest-benchmark row for the normalized-generator fold kernel."""
    codec = RSCodec(m=M, k=K, field=GF(8), kind="cauchy")
    delta = bytes(range(256)) * (PAYLOAD // 256)
    acc = codec.new_parity_accumulator(PAYLOAD)
    benchmark(codec.fold, acc, 0, 1, delta)
