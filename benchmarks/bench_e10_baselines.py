"""E10 — LH*RS against mirroring, striping and XOR grouping (table).

Paper theme: the design-space table.  Same workload on every scheme;
columns are the published trade-offs: storage overhead, failure-free
search/insert messages, availability level, single-bucket recovery cost.
Expected shape: mirroring = 100% storage/fast recovery; striping = cheap
storage but ~2s-message searches; LH*g = ~1/m storage, LH*-cost search,
1-availability, whole-F2-scan recovery; LH*RS = ~k/m storage, LH*-cost
search, k-availability, group-local recovery.
"""

import pytest

from harness import fmt, save_table, scaled
from repro.baselines import LHGConfig, LHGFile, LHMFile, LHSFile, LHStarBaseline
from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng

COUNT = scaled(600)
CAPACITY = 16
PAYLOAD = 64


def load(file, seed=21):
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=COUNT, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * (PAYLOAD // 8))
    return keys


def measure_costs(file, keys):
    for key in keys:
        file.search(key)
    with file.stats.measure("s") as sw:
        for key in keys[:50]:
            file.search(key)
    with file.stats.measure("i") as iw:
        for offset, key in enumerate(keys[:50]):
            file.insert(10**9 + offset, b"x" * PAYLOAD)
    return sw.messages / 50, iw.messages / 50


def run_comparison():
    rows = []

    lh = LHStarBaseline(capacity=CAPACITY)
    keys = load(lh)
    s, i = measure_costs(lh, keys)
    rows.append(("LH*", 0, 0.0, s, i, None))

    lhm = LHMFile(capacity=CAPACITY)
    keys = load(lhm)
    s, i = measure_costs(lhm, keys)
    node = lhm.fail_data_bucket(1)
    with lhm.stats.measure("r") as rw:
        lhm.recover([node])
    rows.append(("LH*m", 1, lhm.storage_overhead(), s, i, rw.messages))

    lhs = LHSFile(stripes=4, capacity=CAPACITY)
    keys = load(lhs)
    s, i = measure_costs(lhs, keys)
    rows.append(("LH*s s=4", 1, lhs.storage_overhead(), s, i, None))

    lhg = LHGFile(LHGConfig(group_size=4, bucket_capacity=CAPACITY))
    keys = load(lhg)
    s, i = measure_costs(lhg, keys)
    node = lhg.fail_data_bucket(1)
    with lhg.stats.measure("r") as rw:
        lhg.recover([node])
    rows.append(("LH*g m=4", 1, lhg.storage_overhead(), s, i, rw.messages))

    for k in (1, 2, 3):
        lhrs = LHRSFile(
            LHRSConfig(group_size=4, availability=k, bucket_capacity=CAPACITY)
        )
        keys = load(lhrs)
        s, i = measure_costs(lhrs, keys)
        node = lhrs.fail_data_bucket(1)
        with lhrs.stats.measure("r") as rw:
            lhrs.recover([node])
        rows.append((f"LH*RS k={k}", k, lhrs.storage_overhead(), s, i,
                     rw.messages))
    return rows


def test_e10_baseline_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = [
        f"{'scheme':<12} {'avail':>5} {'overhead':>9} {'search':>7} "
        f"{'insert':>7} {'recover 1 bucket':>17}"
    ]
    for name, avail, overhead, search, insert, recovery in rows:
        rec = f"{recovery} msgs" if recovery is not None else "-"
        lines.append(
            f"{name:<12} {avail:>5} {fmt(overhead, 9, 3)} {fmt(search, 7)} "
            f"{fmt(insert, 7)} {rec:>17}"
        )
    save_table(
        "e10_baselines",
        "E10: the design space — who pays what for availability",
        lines,
    )
    table = {name: (avail, ovh, s, i, r) for name, avail, ovh, s, i, r in rows}
    # Storage: mirroring ~1.0 >> grouping ~1/m; striping ~1/s.
    assert table["LH*m"][1] == pytest.approx(1.0)
    assert table["LH*g m=4"][1] < 0.5
    assert table["LH*s s=4"][1] == pytest.approx(0.25, rel=0.1)
    # Search: striping pays ~2s; everyone else ~2.
    assert table["LH*s s=4"][2] >= 7.5
    for name in ("LH*", "LH*m", "LH*g m=4", "LH*RS k=1", "LH*RS k=2"):
        assert table[name][2] == pytest.approx(2.0, abs=0.05)
    # Insert: ~1+k for LH*RS, ~2 for mirroring, ~s+1 for striping.
    assert table["LH*RS k=1"][3] < table["LH*RS k=2"][3] < table["LH*RS k=3"][3]
    # Recovery: mirroring cheapest; LH*g scans F2 (more than LH*RS group).
    assert table["LH*m"][4] < table["LH*RS k=1"][4] < table["LH*g m=4"][4]
    # Only LH*RS offers availability > 1.
    assert table["LH*RS k=3"][0] == 3
