"""E6 — Scalable availability (figure).

Paper theme: with fixed k the whole-file availability still goes to 0 as
M grows; a policy that raises k at group-count thresholds keeps it ~flat
at bounded extra storage.  Includes a measured run: a real file grown
through two policy thresholds with eager retrofits, its per-checkpoint
availability and overhead tabulated, consistency verified.
"""

import pytest

from harness import save_table, scaled
from repro.core import (
    AvailabilityPolicy,
    LHRSConfig,
    LHRSFile,
    file_availability,
)

P = 0.99
M_GROUP = 4
POLICY = AvailabilityPolicy.scalable(
    base_level=1, first_threshold=4, growth=4, max_level=4
)


def analytic_series():
    rows = []
    for exponent in range(2, 13):
        total = M_GROUP * (2 ** exponent)
        groups = total // M_GROUP
        level = POLICY.level_for(groups)
        rows.append(
            {
                "M": total,
                "fixed_k1": file_availability(total, M_GROUP, P, k=1),
                "level": level,
                "scalable": file_availability(
                    total, M_GROUP, P, k_per_group=[level] * groups
                ),
            }
        )
    return rows


def measured_run():
    config = LHRSConfig(
        group_size=M_GROUP,
        bucket_capacity=8,
        policy=POLICY,
        upgrade_existing_groups=True,
    )
    file = LHRSFile(config)
    checkpoints, inserted = [], 0
    for target in (scaled(200), scaled(800), scaled(2400)):
        for key in range(inserted, target):
            file.insert(key, b"p" * 40)
        inserted = target
        checkpoints.append(
            {
                "records": inserted,
                "M": file.bucket_count,
                "k": max(file.group_levels().values()),
                "P": file.analytic_availability(P),
                "overhead": file.storage_overhead(),
                "consistent": not file.verify_parity_consistency(),
            }
        )
    return checkpoints


def test_e6_scalable_availability(benchmark):
    rows = benchmark.pedantic(analytic_series, rounds=1, iterations=1)
    lines = [f"{'M':>7} {'P(k=1)':>10} {'k(M)':>5} {'P(scalable)':>12}"]
    for r in rows:
        lines.append(
            f"{r['M']:>7} {r['fixed_k1']:>10.6f} {r['level']:>5} "
            f"{r['scalable']:>12.6f}"
        )
    from plotting import ascii_chart

    lines.append("")
    lines.extend(
        ascii_chart(
            {
                "fixed k=1": [(r["M"], r["fixed_k1"]) for r in rows],
                "scalable k(M)": [(r["M"], r["scalable"]) for r in rows],
            },
            x_label="M (log)",
            y_label="P(all data servable)",
            logx=True,
        )
    )
    checkpoints = measured_run()
    lines.append("")
    lines.append("Measured file grown through policy thresholds "
                 "(eager retrofits):")
    lines.append(f"{'records':>8} {'M':>5} {'k':>3} {'P':>10} "
                 f"{'overhead':>9} {'consistent':>11}")
    for c in checkpoints:
        lines.append(
            f"{c['records']:>8} {c['M']:>5} {c['k']:>3} {c['P']:>10.6f} "
            f"{c['overhead']:>9.3f} {str(c['consistent']):>11}"
        )
    save_table(
        "e6_scalable",
        "E6: fixed k=1 decays with M; scalable k(M) stays ~flat",
        lines,
    )
    fixed = [r["fixed_k1"] for r in rows]
    scalable = [r["scalable"] for r in rows]
    assert fixed == sorted(fixed, reverse=True)
    assert fixed[-1] < 0.35
    assert min(scalable) > 0.95
    for c in checkpoints:
        assert c["consistent"]
    assert checkpoints[-1]["k"] > checkpoints[0]["k"] or checkpoints[0]["k"] >= 2
    assert checkpoints[-1]["P"] > 0.99
