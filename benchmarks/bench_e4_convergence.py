"""E4 — Client image convergence (figure).

Paper theme: a brand-new client needs O(log M) IAMs before its image
stops causing forwarding; afterwards operations run at the flat LH*
cost.  The series below reports cumulative IAMs and the per-window
average search cost as a fresh client works through a random key
stream, for three file sizes.
"""

import math

from harness import build_lhrs, save_table, scaled


def run_series(count):
    file, keys = build_lhrs(k=1, capacity=8, count=count, payload=32)
    fresh = file.new_client()
    window = 50
    series = []
    for start in range(0, min(len(keys), scaled(500)), window):
        chunk = keys[start:start + window]
        with file.stats.measure("w") as w:
            for key in chunk:
                fresh.search(key)
        series.append(
            {
                "ops": start + len(chunk),
                "iams": fresh.image.adjustments,
                "avg_cost": w.messages / len(chunk),
            }
        )
    return file.bucket_count, series


def run_all():
    return [run_series(scaled(n)) for n in (400, 1600, 6400)]


def test_e4_image_convergence(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = []
    for m, series in results:
        lines.append(f"file size M = {m}:")
        lines.append(f"  {'ops':>5} {'cum IAMs':>9} {'avg search msgs':>16}")
        for point in series:
            lines.append(
                f"  {point['ops']:>5} {point['iams']:>9} "
                f"{point['avg_cost']:>16.3f}"
            )
        bound = 3 * math.ceil(math.log2(m)) + 3
        lines.append(f"  total IAMs {series[-1]['iams']} <= bound {bound}")
    save_table(
        "e4_convergence",
        "E4: fresh-client convergence — O(log M) IAMs, then flat ~2-msg "
        "searches",
        lines,
    )
    for m, series in results:
        assert series[-1]["iams"] <= 3 * math.ceil(math.log2(m)) + 3
        assert series[-1]["avg_cost"] <= 2.2  # converged by the end
