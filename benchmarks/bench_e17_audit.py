"""E17 (extension) — Scrubbing with algebraic signatures.

The LH*RS authors' follow-on work audits RS-coded stores with algebraic
signatures: GF-linear fingerprints that commute with the parity
calculus, so a coordinator verifies a record group by moving one w-bit
signature per member instead of the payloads.  This experiment measures
the audit's wire cost against a payload dump across record sizes, and
demonstrates the detect → localize → repair loop on injected bit rot.
"""

import pytest

from harness import fmt, save_table, scaled
from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng


def build(payload_bytes, count, k=2):
    file = LHRSFile(
        LHRSConfig(group_size=4, availability=k, bucket_capacity=32)
    )
    rng = make_rng(17)
    for key in rng.choice(10**9, size=count, replace=False):
        payload = (int(key).to_bytes(8, "big") * (payload_bytes // 8 + 1))
        file.insert(int(key), payload[:payload_bytes])
    return file


def audit_vs_dump(payload_bytes):
    file = build(payload_bytes, count=scaled(400))
    with file.stats.measure("audit") as audit_w:
        report = file.audit()
    assert report["clean"]
    with file.stats.measure("dump") as dump_w:
        coordinator = file.rs_coordinator
        for bucket in range(file.bucket_count):
            coordinator.call(f"f.d{bucket}", "bucket.dump")
        for server in file.parity_servers():
            coordinator.call(server.node_id, "parity.dump")
    return {
        "payload": payload_bytes,
        "audit_kb": audit_w.bytes / 1024,
        "dump_kb": dump_w.bytes / 1024,
        "ratio": dump_w.bytes / audit_w.bytes,
    }


def detect_and_repair():
    file = build(256, count=scaled(300))
    rng = make_rng(18)
    # Inject bit rot into three data buckets in *distinct* groups —
    # syndrome localization identifies a single corrupt column per
    # group (two corruptions in one group exceed what k=2 can pinpoint,
    # just as two erasures exceed k=1).
    groups = sorted(file.group_levels())
    chosen_groups = rng.choice(len(groups), size=min(3, len(groups)),
                               replace=False)
    injected = []
    for g in chosen_groups:
        bucket = groups[int(g)] * 4 + int(rng.integers(0, 4))
        if bucket >= file.bucket_count:
            bucket = groups[int(g)] * 4
        server = file.data_servers()[int(bucket)]
        if not server.bucket.records:
            continue
        key = next(iter(server.bucket.records))
        payload = bytearray(server.bucket.records[key])
        payload[int(rng.integers(0, len(payload)))] ^= 0xA5
        server.bucket.records[key] = bytes(payload)
        injected.append((int(bucket), key))
    report = file.audit()
    localized = 0
    for group_report in report["reports"]:
        for position in {
            p for p in group_report["suspects"].values() if p is not None
        }:
            file.repair_corruption(group_report["group"], position)
            localized += 1
    clean_after = file.audit()["clean"]
    return {
        "injected": len(injected),
        "groups_flagged": len(report["reports"]),
        "repairs": localized,
        "clean_after": clean_after,
        "consistent": not file.verify_parity_consistency(),
    }


def test_e17_audit(benchmark):
    rows = benchmark.pedantic(
        lambda: [audit_vs_dump(size) for size in (32, 128, 512, 2048)],
        rounds=1, iterations=1,
    )
    scrub = detect_and_repair()
    lines = [f"{'payload B':>10} {'audit KB':>9} {'dump KB':>9} {'dump/audit':>11}"]
    for r in rows:
        lines.append(
            f"{r['payload']:>10} {fmt(r['audit_kb'], 9, 1)} "
            f"{fmt(r['dump_kb'], 9, 1)} {fmt(r['ratio'], 11, 1)}"
        )
    lines.append("")
    lines.append(
        f"Scrub loop: injected bit rot in {scrub['injected']} buckets -> "
        f"{scrub['groups_flagged']} groups flagged, {scrub['repairs']} "
        f"repairs, clean after: {scrub['clean_after']}, parity consistent: "
        f"{scrub['consistent']}"
    )
    save_table(
        "e17_audit",
        "E17 (ext): signature audit cost is payload-size invariant — the "
        "dump/audit ratio grows with record size",
        lines,
    )
    ratios = [r["ratio"] for r in rows]
    assert ratios == sorted(ratios)  # grows with payload size
    assert ratios[-1] > 10
    assert scrub["clean_after"] and scrub["consistent"]
    assert scrub["repairs"] >= scrub["groups_flagged"] >= 1
