"""E14 (extension) — File shrink: merge costs and parity maintenance.

The papers treat deletions/shrink as the rare case and sketch the
machinery (§4.3 themes); this experiment measures it: the message cost
of one merge as a function of k (the dissolving bucket's records leave
their record groups and re-enter the absorber's), and a full
grow→churn-down→shrink lifecycle with the underflow policy, verifying
parity stays consistent and availability math tracks the smaller file.
"""

import pytest

from harness import build_lhrs, fmt, save_table, scaled
from repro.sdds.coordinator import SplitPolicy
from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng


def measure_merge_cost(k):
    file, _ = build_lhrs(m=4, k=k, capacity=16, count=scaled(600), payload=64)
    moved = len(file.data_servers()[-1].bucket)
    with file.stats.measure("merge") as window:
        file.rs_coordinator.merge_once()
    assert file.verify_parity_consistency() == []
    return {
        "k": k,
        "records_moved": moved,
        "messages": window.messages,
        "parity_batches": window.by_kind.get("parity.batch", 0),
        "kbytes": window.bytes / 1024,
    }


def lifecycle():
    file = LHRSFile(
        LHRSConfig(group_size=4, availability=1, bucket_capacity=16),
        split_policy=SplitPolicy(threshold=0.58, merge_threshold=0.25),
    )
    rng = make_rng(14)
    keys = [int(x) for x in rng.choice(10**9, size=scaled(1500), replace=False)]
    for key in keys:
        file.insert(key, b"x" * 64)
    peak = file.bucket_count
    for key in keys[: int(len(keys) * 0.93)]:
        file.delete(key)
    shrunk = file.bucket_count
    assert file.verify_parity_consistency() == []
    survivors = keys[int(len(keys) * 0.93):]
    served = sum(1 for key in survivors[::7] if file.search(key).found)
    return {
        "peak_buckets": peak,
        "shrunk_buckets": shrunk,
        "records_left": file.total_records(),
        "sampled_reads_ok": served,
        "sampled_reads": len(survivors[::7]),
        "availability": file.analytic_availability(0.99),
    }


def test_e14_shrink(benchmark):
    rows = benchmark.pedantic(
        lambda: [measure_merge_cost(k) for k in (0, 1, 2)],
        rounds=1, iterations=1,
    )
    life = lifecycle()
    lines = [
        f"{'k':>3} {'records moved':>14} {'messages':>9} "
        f"{'parity batches':>15} {'KB':>7}"
    ]
    for r in rows:
        lines.append(
            f"{r['k']:>3} {r['records_moved']:>14} {r['messages']:>9} "
            f"{r['parity_batches']:>15} {fmt(r['kbytes'], 7)}"
        )
    lines.append("")
    lines.append("Underflow-policy lifecycle (grow, delete 93%, auto-shrink):")
    lines.append(
        f"  peak {life['peak_buckets']} buckets -> {life['shrunk_buckets']} "
        f"after churn; {life['records_left']} records left; "
        f"{life['sampled_reads_ok']}/{life['sampled_reads']} sampled reads OK; "
        f"P(0.99) = {life['availability']:.6f}"
    )
    save_table(
        "e14_shrink",
        "E14 (ext): merge cost grows with k (2k parity batches per merge); "
        "the underflow policy shrinks a churned file safely",
        lines,
    )
    costs = {r["k"]: r for r in rows}
    assert costs[0]["parity_batches"] == 0
    assert costs[1]["parity_batches"] == 2      # 1 delete + 1 insert batch
    assert costs[2]["parity_batches"] == 4
    assert costs[0]["messages"] < costs[1]["messages"] < costs[2]["messages"]
    assert life["shrunk_buckets"] < life["peak_buckets"]
    assert life["sampled_reads_ok"] == life["sampled_reads"]
