"""E15 (extension) — Batched parity: throughput vs vulnerability.

Eager LH*RS ships one Δ-record per parity bucket per mutation (1 + k
messages).  Batching B Δs per parity message amortizes toward 1 + k/B —
at the price of a bounded vulnerability window: a data bucket that
crashes with unflushed Δs recovers to its last-flushed state (at most
B-1 mutations lost, only on the crashed bucket).  This experiment
measures both sides.
"""

import pytest

from harness import fmt, save_table, scaled
from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng

K = 2
BATCHES = (1, 2, 4, 8, 16)


def steady_cost(batch):
    file = LHRSFile(
        LHRSConfig(group_size=4, availability=K, bucket_capacity=16,
                   parity_batch_size=batch)
    )
    rng = make_rng(15)
    keys = [int(x) for x in rng.choice(10**9, size=scaled(500), replace=False)]
    for key in keys:
        file.insert(key, b"x" * 64)
    for key in keys:
        file.search(key)  # converge
    state = file.coordinator.state
    safe = [
        key for key in keys
        if file.client.image.address(key) == state.address(key)
    ][: scaled(200)]
    with file.stats.measure("u") as window:
        for key in safe:
            file.update(key, b"u" * 64)
    return window.messages / len(safe)


def vulnerability(batch):
    """Average mutations lost when a bucket crashes mid-window."""
    file = LHRSFile(
        LHRSConfig(group_size=4, availability=1, bucket_capacity=64,
                   parity_batch_size=batch)
    )
    rng = make_rng(16)
    keys = [int(x) for x in rng.choice(10**9, size=scaled(300), replace=False)]
    for key in keys:
        file.insert(key, b"x" * 32)
    file.flush_all_parity()
    # Mutate half the records, then crash bucket 0 without flushing.
    mutated = keys[: len(keys) // 2]
    for key in mutated:
        file.update(key, b"MUTATED!" * 4)
    queued = len(file.data_servers()[0]._parity_queue)
    node = file.fail_data_bucket(0)
    file.recover([node])
    lost = sum(
        1 for key in mutated
        if file.find_bucket_of(key) == 0
        and file.search(key).value != b"MUTATED!" * 4
    )
    # Surviving buckets still hold queued Δs (normal lazy state); flush
    # before the oracle consistency check.
    file.flush_all_parity()
    assert file.verify_parity_consistency() == []
    return queued, lost


def run_experiment():
    rows = []
    for batch in BATCHES:
        cost = steady_cost(batch)
        queued, lost = vulnerability(batch)
        rows.append(
            {
                "B": batch,
                "msgs_per_update": cost,
                "amortized_model": 1 + K / batch,
                "queued_at_crash": queued,
                "mutations_lost": lost,
            }
        )
    return rows


def test_e15_lazy_parity(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        f"{'B':>4} {'msgs/update':>12} {'model 1+k/B':>12} "
        f"{'queued at crash':>16} {'mutations lost':>15}"
    ]
    for r in rows:
        lines.append(
            f"{r['B']:>4} {fmt(r['msgs_per_update'], 12)} "
            f"{fmt(r['amortized_model'], 12)} {r['queued_at_crash']:>16} "
            f"{r['mutations_lost']:>15}"
        )
    save_table(
        "e15_lazy_parity",
        "E15 (ext): parity batching — messages fall toward 1+k/B; the "
        "crash window grows with B (lost <= queued <= B-1)",
        lines,
    )
    by_batch = {r["B"]: r for r in rows}
    assert by_batch[1]["msgs_per_update"] == pytest.approx(1 + K, abs=0.05)
    assert by_batch[1]["mutations_lost"] == 0
    costs = [r["msgs_per_update"] for r in rows]
    assert costs == sorted(costs, reverse=True)  # monotone improvement
    for r in rows:
        assert r["mutations_lost"] <= r["queued_at_crash"] <= r["B"] - 1 + 1
        assert r["msgs_per_update"] == pytest.approx(
            r["amortized_model"], abs=0.45
        )
