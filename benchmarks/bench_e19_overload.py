"""E19 (extension) — Gray-failure tolerance: tail latency and goodput
under a 50x straggler, 2x overload, and paced recovery (table +
BENCH_tail.json).

The LH*RS availability machinery handles *dead* buckets; E19 measures
what the gray-failure stack (deadline/hedged reads, per-bucket circuit
breaker, bounded queues with busy shedding, paced rebuilds) buys when a
bucket is merely *slow* — the failure mode the paper's binary up/down
model cannot see.  Three scenarios, each contrasted with the stack off:

* **straggler** — one data bucket serves 50x slow (ramping gray
  failure).  Off: every read addressed to it blocks for the full
  straggle and the tail blows up.  On: reads hedge through the parity
  reconstruction path after an adaptive p99 delay, the breaker
  short-circuits repeat offenders, and p99 stays inside the configured
  deadline at >= 70% of healthy goodput.
* **overload** — offered load ~2x the drain rate.  Off (unbounded
  queues): backlogs deepen without bound and per-op latency grows with
  them.  On (bounded queues + busy shedding + decorrelated-jitter
  backoff): queue depth is capped, clients back off and retry, and the
  tail stays bounded — with zero lost acknowledged writes (shed
  Delta-parity retransmits are idempotent by sequence number).
* **paced recovery** — rebuild a failed bucket while survivors hold a
  backlog.  Off: dump/load transfers pile onto the backlog and
  foreground reads queue behind the rebuild.  On: a token bucket paces
  transfers against the drain rate, keeping foreground p99 within 2x
  healthy.

Latency is virtual time from the deterministic service model
(`link + service x slowdown x (1 + queue_depth)` per delivery), so every
number below is exactly reproducible.  Goodput is completed reads per
unit of virtual time.

Usage::

    PYTHONPATH=src python benchmarks/bench_e19_overload.py           # full
    PYTHONPATH=src python benchmarks/bench_e19_overload.py --smoke   # CI gate

Results land in ``BENCH_tail.json`` at the repo root (override with
``--output``); the same grid runs under pytest-benchmark via
``pytest benchmarks/bench_e19_overload.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import save_metrics, save_table

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import data_node
from repro.sim import FaultPlane
from repro.sim.rng import make_rng

REPO_ROOT = Path(__file__).resolve().parent.parent

DEADLINE = 24.0
QUEUE_LIMIT = 8
STRAGGLE = 50.0
SEED = 19


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def summarize(latencies: list[float]) -> dict:
    return {
        "n": len(latencies),
        "p50": round(percentile(latencies, 0.50), 3),
        "p99": round(percentile(latencies, 0.99), 3),
        "max": round(max(latencies), 3),
        "mean": round(sum(latencies) / len(latencies), 3),
        # completed ops per unit of virtual time spent reading
        "goodput": round(len(latencies) / sum(latencies), 4),
    }


def build_file(
    n_records: int,
    *,
    deadline: float | None,
    queue_limit: int | None,
    pace_rate: float | None = None,
    pace_burst: float = 2.0,
    drain_rate: float = 1.0,
) -> tuple[LHRSFile, FaultPlane, list[int]]:
    config = LHRSConfig(
        group_size=4,
        availability=1,
        bucket_capacity=8,
        client_acks=True,
        retry_attempts=8,
        retry_jitter=True,
        read_deadline=deadline,
        bucket_queue_limit=queue_limit,
        recovery_pace_rate=pace_rate,
        recovery_pace_burst=pace_burst,
    )
    file = LHRSFile(config)
    file.enable_observability(strict=False)
    file.enable_service_model(
        link_latency=0.25, service_time=1.0, drain_rate=drain_rate
    )
    plane = FaultPlane(rng=make_rng(SEED))
    file.network.install_fault_plane(plane)
    # The client is a library, not a server: replies land on its node
    # but cost no service time (otherwise a shared client queue grows
    # with the offered load and pollutes every per-bucket measurement).
    file.network.service.set_service(file.client.node_id, 0.0)
    rng = make_rng(SEED)
    keys = [int(x) for x in rng.choice(10**9, size=n_records, replace=False)]
    for key in keys:
        file.insert(key, b"e19-%d" % key)
    return file, plane, keys


def mixed_ops(file: LHRSFile, keys: list[int], fresh) -> list[float]:
    """A read-mostly foreground workload (one insert per four reads);
    returns per-op virtual-time latencies."""
    net = file.network
    out = []
    for i, key in enumerate(keys):
        start = net.virtual_time
        assert file.search(key).found, f"read lost key {key}"
        out.append(net.virtual_time - start)
        if i % 4 == 3:
            start = net.virtual_time
            file.insert(next(fresh), b"fg")
            out.append(net.virtual_time - start)
    return out


def settle(file: LHRSFile, slack: float = 8.0) -> None:
    """Drain every service backlog (e.g. the load phase's) so the next
    measurement starts from a steady state."""
    net = file.network
    service = net.service
    deepest = max(
        (service.queue_depth(node, net.now) for node in list(net.nodes)),
        default=0.0,
    )
    net.advance(deepest / service.drain_rate + slack)


def read_latencies(file: LHRSFile, keys: list[int], rounds: int) -> list[float]:
    net = file.network
    client = file.client
    deadline_governed = (
        client.deadline is not None and net.service is not None
    )
    out = []
    for _ in range(rounds):
        for key in keys:
            start = net.virtual_time
            outcome = file.search(key)
            if deadline_governed:
                # The client's own accounting: min(primary, hedge).
                # Wall virtual-time would double-count a hedged read —
                # the synchronous simulator runs the hedge *after* the
                # primary instead of racing it.
                out.append(client.last_read_latency)
            else:
                out.append(net.virtual_time - start)
            assert outcome.found, f"read lost key {key}"
    return out


# ----------------------------------------------------------------------
# scenario 1: 50x straggler — deadline/hedged reads vs unbounded blocking
# ----------------------------------------------------------------------
def run_straggler(n_records: int, rounds: int) -> dict:
    results = {}
    for mode, deadline in (("feature_off", None), ("feature_on", DEADLINE)):
        file, plane, keys = build_file(
            n_records, deadline=deadline, queue_limit=QUEUE_LIMIT
        )
        # Warm the client's image (splits leave it stale; the first
        # pass pays the forwarding hops) before the baseline.
        read_latencies(file, keys, 1)
        settle(file)
        healthy = summarize(read_latencies(file, keys, rounds))
        settle(file)
        # Gray failure: one data bucket serves 50x slow.
        victim = max(range(file.bucket_count),
                     key=lambda b: sum(1 for k in keys
                                       if file.find_bucket_of(k) == b))
        plane.add_slow_rule(
            node=data_node(file.file_id, victim),
            factor=STRAGGLE,
            start=file.network.now,
        )
        slow = summarize(read_latencies(file, keys, rounds))
        client = file.client
        results[mode] = {
            "healthy": healthy,
            "straggler": slow,
            "victim_bucket": victim,
            "victim_keys": sum(
                1 for k in keys if file.find_bucket_of(k) == victim
            ),
            "goodput_ratio": round(slow["goodput"] / healthy["goodput"], 3),
            "hedged_reads": getattr(client, "hedged_reads", 0),
            "deadline_misses": getattr(client, "deadline_misses", 0),
            "degraded_fallbacks": getattr(client, "degraded_fallbacks", 0),
            "breaker_opens": int(
                file.metrics.counter("read.breaker.opened").value
            ),
        }
        assert file.verify_parity_consistency() == []
        assert not file.auditor.violations, file.auditor.violations[:3]
    results["deadline"] = DEADLINE
    results["straggle_factor"] = STRAGGLE
    return results


# ----------------------------------------------------------------------
# scenario 2: 2x overload — bounded queues + shedding vs unbounded
# ----------------------------------------------------------------------
def run_overload(n_records: int) -> dict:
    results = {}
    for mode, limit in (("unbounded", None), ("bounded", QUEUE_LIMIT)):
        # Offered load ~2x what the service queues drain: every insert
        # parks ~4 units of work (client->bucket, Delta-parity fan-out,
        # acks) against drain_rate*interarrival ~2 units drained.
        file, plane, keys = build_file(
            0, deadline=None, queue_limit=limit, drain_rate=0.12
        )
        net = file.network
        service = net.service
        rng = make_rng(SEED + 1)
        burst = [int(x) for x in rng.choice(10**9, size=n_records,
                                            replace=False)]
        latencies = []
        for key in burst:
            start = net.virtual_time
            file.insert(key, b"load")
            latencies.append(net.virtual_time - start)
        missing = sum(1 for k in burst if not file.search(k).found)
        # Deepest backlog across the *bucket* nodes (data + parity) —
        # the queues the limit binds; parity buckets concentrate the
        # group's Delta-parity stream, so they flood first.
        prefixes = (f"{file.file_id}.d", f"{file.file_id}.p")
        bucket_depth = max(
            (
                depth
                for node, depth in service.max_depths.items()
                if node.startswith(prefixes)
            ),
            default=0.0,
        )
        results[mode] = {
            "writes": summarize(latencies),
            "shed": int(service.counters.get("shed", 0)),
            # deepest *data bucket* backlog — the bounded queues; the
            # global max is dominated by the unbounded control plane
            "max_bucket_depth": round(bucket_depth, 1),
            "max_queue_depth": round(service.max_depth_seen, 1),
            "lost_acked_writes": missing,
        }
        assert missing == 0, f"{mode}: {missing} acknowledged writes lost"
        assert file.verify_parity_consistency() == []
        assert not file.auditor.violations, file.auditor.violations[:3]
    return results


# ----------------------------------------------------------------------
# scenario 3: recovery pacing — token-bucket rebuild vs full blast
# ----------------------------------------------------------------------
def run_pacing(n_records: int) -> dict:
    results = {}
    drain = 0.1
    for mode, rate in (("unpaced", None), ("paced", drain)):
        file, plane, keys = build_file(
            n_records, deadline=None, queue_limit=None,
            pace_rate=rate, drain_rate=drain,
        )
        rng = make_rng(SEED + 2)
        fresh = iter(
            10**9 + int(x) for x in rng.choice(10**9, size=2 * n_records,
                                               replace=False)
        )
        read_latencies(file, keys, 1)  # warm the client's image
        settle(file)
        healthy = summarize(mixed_ops(file, keys, fresh))
        settle(file)
        # Mass rebuild: one bucket per group fails, so the dump/load
        # burst hits every survivor — and every group's parity bucket —
        # at once.  Unpaced, the transfers land back-to-back and
        # foreground traffic queues behind them (writes especially:
        # their Delta-parity waits behind the whole-bucket parity
        # transfer).  Paced at the drain rate, each transfer's backlog
        # clears before the next fires.
        victims = [
            file.fail_data_bucket(b)
            for b in range(0, file.bucket_count, file.config.group_size)
        ]
        rebuild_start = file.network.now
        file.recover(victims)
        rebuild_ticks = file.network.now - rebuild_start
        foreground = summarize(mixed_ops(file, keys, fresh))
        results[mode] = {
            "healthy": healthy,
            "foreground": foreground,
            "fg_over_healthy_p99": round(
                foreground["p99"] / healthy["p99"], 2
            ),
            "rebuild_ticks": round(rebuild_ticks, 1),
            "pace_waits": int(
                file.metrics.counter("recovery.pace.waits").value
            ),
        }
        assert all(file.search(k).found for k in keys)
        assert file.verify_parity_consistency() == []
    return results


# ----------------------------------------------------------------------
def run_all(smoke: bool) -> dict:
    n_reads = 120 if smoke else 240
    rounds = 2 if smoke else 4
    n_writes = 200 if smoke else 400
    report = {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "smoke": smoke,
            "seed": SEED,
        },
        "straggler": run_straggler(n_reads, rounds),
        "overload": run_overload(n_writes),
        "pacing": run_pacing(n_reads),
    }
    s_on = report["straggler"]["feature_on"]
    s_off = report["straggler"]["feature_off"]
    o_on = report["overload"]["bounded"]
    o_off = report["overload"]["unbounded"]
    p_on = report["pacing"]["paced"]
    p_off = report["pacing"]["unpaced"]
    report["gates"] = {
        # acceptance: with one bucket 50x slow, p99 stays inside the
        # deadline and goodput holds >= 70% of healthy
        "straggler_p99_within_deadline": s_on["straggler"]["p99"] <= DEADLINE,
        "straggler_goodput_ratio_ge_70pct": s_on["goodput_ratio"] >= 0.70,
        # the contrast: without the stack the straggle dominates the tail
        "feature_off_blows_deadline": s_off["straggler"]["p99"] > DEADLINE,
        "hedging_engaged": s_on["hedged_reads"] > 0
        and s_on["degraded_fallbacks"] > 0,
        # bounded queues shed, cap depth, and tighten the write tail
        "overload_sheds": o_on["shed"] > 0,
        "overload_depth_bounded": (
            o_on["max_bucket_depth"] <= 2 * QUEUE_LIMIT
            and o_off["max_bucket_depth"] > 4 * QUEUE_LIMIT
        ),
        "overload_tail_tighter": (
            o_on["writes"]["p99"] < o_off["writes"]["p99"]
        ),
        # acceptance: paced rebuild keeps foreground p99 within 2x healthy
        "paced_fg_p99_within_2x_healthy": p_on["fg_over_healthy_p99"] <= 2.0,
        "pacing_engaged": p_on["pace_waits"] > 0,
        "pacing_beats_unpaced": (
            p_on["foreground"]["p99"] < p_off["foreground"]["p99"]
        ),
    }
    return report


def render_table(report: dict) -> list[str]:
    s = report["straggler"]
    o = report["overload"]
    p = report["pacing"]
    lines = [
        f"{'scenario':<26} {'p50':>8} {'p99':>8} {'max':>9} "
        f"{'goodput':>8} {'notes':<34}"
    ]
    for mode in ("feature_off", "feature_on"):
        r = s[mode]
        for phase in ("healthy", "straggler"):
            row = r[phase]
            notes = ""
            if phase == "straggler":
                notes = (
                    f"ratio {r['goodput_ratio']:.2f}, "
                    f"hedged {r['hedged_reads']}, "
                    f"degraded {r['degraded_fallbacks']}, "
                    f"misses {r['deadline_misses']}"
                )
            lines.append(
                f"{mode + '/' + phase:<26} {row['p50']:>8.2f} "
                f"{row['p99']:>8.2f} {row['max']:>9.2f} "
                f"{row['goodput']:>8.4f} {notes:<34}"
            )
    for mode in ("unbounded", "bounded"):
        row = o[mode]["writes"]
        notes = (
            f"shed {o[mode]['shed']}, "
            f"bucket depth {o[mode]['max_bucket_depth']:.0f}"
        )
        lines.append(
            f"{'overload/' + mode:<26} {row['p50']:>8.2f} "
            f"{row['p99']:>8.2f} {row['max']:>9.2f} "
            f"{row['goodput']:>8.4f} {notes:<34}"
        )
    for mode in ("unpaced", "paced"):
        row = p[mode]["foreground"]
        notes = (
            f"fg/healthy p99 {p[mode]['fg_over_healthy_p99']:.2f}x, "
            f"waits {p[mode]['pace_waits']}, "
            f"rebuild {p[mode]['rebuild_ticks']:.0f} ticks"
        )
        lines.append(
            f"{'rebuild/' + mode:<26} {row['p50']:>8.2f} "
            f"{row['p99']:>8.2f} {row['max']:>9.2f} "
            f"{row['goodput']:>8.4f} {notes:<34}"
        )
    return lines


def test_e19_overload(benchmark):
    report = benchmark.pedantic(lambda: run_all(smoke=True),
                                rounds=1, iterations=1)
    save_table(
        "e19_overload",
        f"E19 (ext): tail latency + goodput with one bucket {STRAGGLE:.0f}x "
        f"slow, 2x overload, and rebuild under load (deadline {DEADLINE:.0f},"
        f" queue limit {QUEUE_LIMIT}) — the gray-failure stack bounds the "
        "tail the binary failure model cannot see",
        render_table(report),
    )
    save_metrics("e19_overload", report)
    failed = [g for g, ok in report["gates"].items() if not ok]
    assert not failed, f"gates failed: {failed}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller workload for the CI gate")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_tail.json")
    args = parser.parse_args()
    report = run_all(smoke=args.smoke)
    print("\n".join(render_table(report)))
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.output}")
    failed = [g for g, ok in report["gates"].items() if not ok]
    for gate, ok in sorted(report["gates"].items()):
        print(f"  gate {gate:<36} {'PASS' if ok else 'FAIL'}")
    if failed:
        print(f"FAILED gates: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
