"""Legacy setup shim.

The execution environment has no network and no `wheel` package, so PEP
517 editable installs (which build an editable wheel) cannot run.  With
no pyproject.toml in the tree, `pip install -e .` falls back to
`setup.py develop`, which needs only setuptools.  All metadata lives in
setup.cfg.
"""

from setuptools import setup

setup()
