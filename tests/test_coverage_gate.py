"""Unit tests for the stdlib coverage-floor gate (tools/coverage_gate.py).

The gate runs in CI against a pytest-cov JSON report; these tests drive
it against synthetic reports so the gating logic itself is covered by
the tier-1 suite even where pytest-cov is not installed.
"""

import importlib.util
import json
from pathlib import Path

import pytest

SPEC = importlib.util.spec_from_file_location(
    "coverage_gate",
    Path(__file__).resolve().parents[1] / "tools" / "coverage_gate.py",
)
gate = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(gate)


def report(files):
    return {
        "files": {
            path: {"summary": {"num_statements": total, "covered_lines": hit}}
            for path, (total, hit) in files.items()
        }
    }


class TestPackageMatching:
    def test_matches_by_path_segment(self):
        packages = ["repro/gf", "repro/core"]
        assert gate.package_of("src/repro/gf/field.py", packages) == "repro/gf"
        assert gate.package_of("src/repro/core/file.py", packages) == "repro/core"
        assert gate.package_of("src/repro/sim/network.py", packages) is None

    def test_windows_separators_normalized(self):
        assert gate.package_of(
            r"src\repro\gf\field.py", ["repro/gf"]
        ) == "repro/gf"

    def test_longest_match_wins(self):
        assert gate.package_of(
            "src/repro/core/file.py", ["repro", "repro/core"]
        ) == "repro/core"

    def test_no_substring_false_positives(self):
        # "repro/gf" must not claim files from a sibling "repro/gfx".
        assert gate.package_of("src/repro/gfx/x.py", ["repro/gf"]) is None

    def test_file_floor_outranks_package(self):
        packages = ["repro/core", "repro/core/journal.py"]
        assert gate.package_of(
            "src/repro/core/journal.py", packages
        ) == "repro/core/journal.py"
        assert gate.package_of(
            "src/repro/core/file.py", packages
        ) == "repro/core"

    def test_file_entry_requires_exact_suffix(self):
        # "journal.py" the file, not any path merely containing it.
        assert gate.package_of(
            "src/repro/core/journal.pyc", ["repro/core/journal.py"]
        ) is None
        assert gate.package_of(
            "src/other/core/journal.py", ["repro/core/journal.py"]
        ) is None


class TestEvaluate:
    def test_all_floors_held(self):
        status, lines = gate.evaluate(
            report({
                "src/repro/gf/field.py": (100, 95),
                "src/repro/rs/codec.py": (50, 50),
                "src/repro/core/file.py": (200, 180),
            }),
            {"repro/gf": 90, "repro/rs": 90, "repro/core": 85},
        )
        assert status == 0
        assert all(line.startswith("ok") for line in lines)
        assert any("repro/gf: 95.0%" in line for line in lines)

    def test_breach_fails_with_status_1(self):
        status, lines = gate.evaluate(
            report({"src/repro/gf/field.py": (100, 50)}),
            {"repro/gf": 90},
        )
        assert status == 1
        assert lines == [
            "FAIL repro/gf: 50.0% line coverage (50/100 lines, floor 90%)"
        ]

    def test_aggregation_is_line_weighted(self):
        # 90/100 + 0/10 = 90/110 ≈ 81.8% — a per-file average would say 45%.
        status, lines = gate.evaluate(
            report({
                "src/repro/gf/field.py": (100, 90),
                "src/repro/gf/tables.py": (10, 0),
            }),
            {"repro/gf": 80},
        )
        assert status == 0
        assert "81.8%" in lines[0]

    def test_unmeasured_package_is_a_config_error(self):
        status, lines = gate.evaluate(
            report({"src/repro/gf/field.py": (10, 10)}),
            {"repro/gf": 90, "repro/core": 85},
        )
        assert status == 2
        assert any("no measured files" in line for line in lines)


class TestCli:
    def test_main_reads_report_and_gates(self, tmp_path, capsys):
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps(report({
            "src/repro/gf/field.py": (10, 10),
        })))
        assert gate.main([str(path), "--floor", "repro/gf=90"]) == 0
        assert "ok   repro/gf: 100.0%" in capsys.readouterr().out

    def test_main_missing_report_is_status_2(self, tmp_path, capsys):
        assert gate.main([str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_default_floors_cover_issue_packages(self):
        assert set(gate.DEFAULT_FLOORS) == {
            "repro/gf",
            "repro/rs",
            "repro/core",
            "repro/core/journal.py",
            "repro/sdds",
            "repro/sdds/client.py",
            "repro/core/data_bucket.py",
            "repro/check",
            "repro/store",
            "repro/lint",
            "repro/proto",
        }

    def test_floor_spec_validation(self):
        with pytest.raises(Exception):
            gate.parse_floor("garbage")
        assert gate.parse_floor("repro/gf=92.5") == ("repro/gf", 92.5)
