"""Multiple files sharing one network (the papers: files share servers)."""

from repro.baselines import LHMFile
from repro.core import LHRSConfig, LHRSFile
from repro.sdds import LHStarFile
from repro.sim import Network
from repro.sim.rng import make_rng


class TestSharedNetwork:
    def test_two_lhrs_files_coexist(self):
        network = Network()
        alpha = LHRSFile(
            LHRSConfig(group_size=4, availability=1, bucket_capacity=8),
            file_id="alpha", network=network,
        )
        beta = LHRSFile(
            LHRSConfig(group_size=8, availability=2, bucket_capacity=8),
            file_id="beta", network=network,
        )
        rng = make_rng(29)
        keys = [int(x) for x in rng.choice(10**9, size=200, replace=False)]
        for key in keys:
            alpha.insert(key, b"A" + key.to_bytes(8, "big"))
            beta.insert(key, b"B" + key.to_bytes(8, "big"))
        for key in keys[::9]:
            assert alpha.search(key).value[0:1] == b"A"
            assert beta.search(key).value[0:1] == b"B"
        assert alpha.verify_parity_consistency() == []
        assert beta.verify_parity_consistency() == []

    def test_failure_in_one_file_does_not_touch_the_other(self):
        network = Network()
        alpha = LHRSFile(
            LHRSConfig(bucket_capacity=8), file_id="alpha", network=network
        )
        beta = LHRSFile(
            LHRSConfig(bucket_capacity=8), file_id="beta", network=network
        )
        for key in range(150):
            alpha.insert(key, b"a")
            beta.insert(key, b"b")
        stats_before = network.stats.total.messages
        node = alpha.fail_data_bucket(1)
        alpha.recover([node])
        assert beta.verify_parity_consistency() == []
        assert all(beta.search(k).found for k in range(0, 150, 17))
        assert network.stats.total.messages > stats_before

    def test_mixed_schemes_share_a_network(self):
        network = Network()
        lhrs = LHRSFile(
            LHRSConfig(bucket_capacity=8), file_id="rs", network=network
        )
        plain = LHStarFile(file_id="plain", capacity=8, network=network)
        mirrored = LHMFile(file_id="mir", capacity=8, network=network)
        for key in range(120):
            lhrs.insert(key, b"x")
            plain.insert(key, b"y")
            mirrored.insert(key, b"z")
        assert lhrs.search(7).value == b"x"
        assert plain.search(7).value == b"y"
        assert mirrored.search(7).value == b"z"
        assert mirrored.verify_mirror_consistency() == []
