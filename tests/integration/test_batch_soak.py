"""Batched chaos soak: the bulk data plane under the scalar soak's rules.

Thousands of operations submitted exclusively through ``*_many`` while
the fault plane batters ``ops.batch``/``parity.batch`` (drop, transient
fail, duplicate — the retransmission envelope the per-(data, position)
sequence numbers are built for) *and* the scalar kinds the fallback
path uses, with crash windows taking ≤ k members of a group down at a
time.  The invariant auditor rides the whole soak in strict mode.

At the end: parity recomputed == stored, every confirmed write
readable, every confirmed delete gone, the auditor never fired.
"""

import numpy as np

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import parity_node
from repro.sim import FaultPlane

BATCH_KINDS = {"ops.batch", "parity.batch"}
SCALAR_MUTATIONS = {"insert", "update", "delete", "parity.update"}


def run_batch_soak(operations: int, seed: int, batch_size: int = 40) -> LHRSFile:
    config = LHRSConfig(
        group_size=4,
        availability=2,
        bucket_capacity=16,
        parity_ack=True,
        client_acks=True,
        retry_attempts=8,
        retry_backoff_base=0.5,
        batch_ops=True,
        batch_max_ops=64,
    )
    file = LHRSFile(config)
    net = file.network
    tracer, metrics, auditor = file.enable_observability(trace_capacity=20_000)

    plane = FaultPlane(rng=np.random.default_rng(seed))
    plane.add_rule(kinds=BATCH_KINDS, drop=0.02, fail=0.03, duplicate=0.03)
    plane.add_rule(kinds=SCALAR_MUTATIONS, drop=0.02, fail=0.03,
                   duplicate=0.02)
    net.install_fault_plane(plane)

    injector = file.failures
    rng = np.random.default_rng(seed + 1)
    oracle: dict[int, bytes] = {}
    written: set[int] = set()
    ambiguous: set[int] = set()
    applied = failed = 0

    # Crash windows relative to *current* virtual time so they always
    # overlap live batches; ≤ k members of one group at a time.
    crash_cycle = [
        lambda g: (f"f.d{4 * g}",),
        lambda g: (f"f.d{4 * g + 1}", parity_node("f", g, 0)),
        lambda g: (parity_node("f", g, 1),),
    ]

    rounds = max(operations // batch_size, 1)
    for round_no in range(rounds):
        if round_no % 7 == 3:
            group = (round_no // 7) % max(len(file.group_levels()), 1)
            for node in crash_cycle[round_no % 3](group):
                injector.schedule_crash(
                    node, at=net.now + 1.0, duration=50.0
                )

        keys = list(dict.fromkeys(
            int(k) for k in rng.integers(0, 600, size=batch_size)
        ))
        roll = float(rng.random())
        if roll < 0.40:
            items = [(k, b"v%d-%d" % (round_no, k)) for k in keys]
            out = file.insert_many(items)
        elif roll < 0.65:
            items = [(k, b"u%d-%d" % (round_no, k)) for k in keys]
            out = file.update_many(items)  # upsert semantics
        elif roll < 0.82:
            items = None
            out = file.delete_many(keys)
        else:
            items = None
            out = file.search_many(keys)

        for idx, key in enumerate(keys):
            res = out.outcomes[idx]
            if res is None or res.status == "failed":
                failed += 1
                if roll < 0.82:
                    ambiguous.add(key)
                continue
            applied += 1
            if roll < 0.65:
                oracle[key] = items[idx][1]
                written.add(key)
                ambiguous.discard(key)
            elif roll < 0.82:
                oracle.pop(key, None)
                ambiguous.discard(key)
            elif key not in ambiguous:
                if key in oracle:
                    assert res.status == "found" and res.value == oracle[key]
                else:
                    assert res.status == "not_found"

    assert applied >= rounds * 2  # the plane confirmed real work
    assert applied > failed  # and the retry ladder won far more than it lost

    # ---- quiesce: no more faults, windows all closed ------------------
    plane.clear_rules()
    while injector.pending_events:
        net.advance(60.0)
    net.advance(60.0)

    entries = file.rs_coordinator.run_probe_cycle(rounds=3)
    assert entries[-1]["unavailable"] == []
    assert entries[-1]["errors"] == []
    file.flush_all_parity()

    # ---- acceptance: the file survived --------------------------------
    assert file.verify_parity_consistency() == []
    for key, value in oracle.items():
        if key in ambiguous:
            continue
        outcome = file.search(key)
        assert outcome.found and outcome.value == value, key
    for key in written - set(oracle) - ambiguous:
        assert not file.search(key).found, key

    # The batch plane really carried the load and every fault class hit.
    for counter in ("dropped", "failed", "duplicated"):
        assert plane.counters[counter] > 0, counter
    assert tracer.counts.get("batch.scatter", 0) > rounds // 2
    assert metrics.get("batch.ops").value >= rounds * batch_size // 2

    # ---- observability acceptance --------------------------------------
    assert auditor.violations == []
    assert auditor.check_file(file) == []
    assert auditor.events_seen > rounds
    return file


def test_batch_soak_5000_ops():
    run_batch_soak(operations=5000, seed=20260808)


def test_batch_soak_smoke():
    """Fixed-seed quick variant (CI's batched chaos gate)."""
    run_batch_soak(operations=600, seed=4321)
