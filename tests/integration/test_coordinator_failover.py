"""Coordinator-kill soak: thousands of mixed operations while the
coordinator itself is repeatedly assassinated — cleanly between
operations (scheduled windows) and mid-restructuring (armed crash
points firing one crash mid-split and one mid-recovery).

What the run must show (the PR's acceptance criteria):

* zero lost or duplicated records — every acked write readable, every
  acked delete gone, under the same hostile message plane as the chaos
  soak;
* the promoted standby's reconstructed ``(n, i)`` and group-level map
  byte-equal the journal truth after every takeover;
* the strict-mode :class:`InvariantAuditor` rides the whole run and
  never fires.

Clients keep addressing ``<file>.coord``; succession is invisible to
them except for the whois round they pay when they catch the blackout.
"""

import json

import numpy as np

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import parity_node
from repro.sdds.client import OperationFailed
from repro.sim import FaultPlane

MUTATION_KINDS = {"insert", "update", "delete", "search", "parity.update"}
REPLY_KINDS = {"search.result", "op.ack", "iam"}


def live_state_bytes(file: LHRSFile) -> bytes:
    coordinator = file.rs_coordinator
    return json.dumps(
        {
            "n": coordinator.state.n,
            "i": coordinator.state.i,
            "group_levels": {
                str(g): l for g, l in sorted(coordinator.group_levels.items())
            },
        },
        sort_keys=True,
    ).encode()


def journal_state_bytes(file: LHRSFile) -> bytes:
    replayed = file.rs_coordinator.journal.replay()
    return json.dumps(
        {
            "n": replayed.n,
            "i": replayed.i,
            "group_levels": {
                str(g): l for g, l in sorted(replayed.group_levels.items())
            },
        },
        sort_keys=True,
    ).encode()


def run_coordinator_chaos(
    operations: int, seed: int, trace_capacity: int | None = 20_000
) -> LHRSFile:
    config = LHRSConfig(
        group_size=4,
        availability=2,
        bucket_capacity=16,
        parity_ack=True,
        client_acks=True,
        retry_attempts=8,
        retry_backoff_base=0.5,
        coordinator_replicas=2,
        heartbeat_interval=3.0,
        lease_timeout=9.0,
        journal_checkpoint_interval=8,
    )
    file = LHRSFile(config)
    net = file.network
    tracer, metrics, auditor = file.enable_observability(
        trace_capacity=trace_capacity
    )
    # Capacity-bounded tracers evict events; a subscriber sees them all.
    crashes_by_point: dict[str, int] = {}
    takeover_checks: list[tuple[bytes, bytes]] = []

    def watch(event):
        if event.type == "coord.crash":
            point = event.attrs.get("point", "?")
            crashes_by_point[point] = crashes_by_point.get(point, 0) + 1
        elif event.type == "coord.takeover.end":
            # Byte-equality of live state vs journal truth, captured at
            # the instant succession completes.
            takeover_checks.append(
                (live_state_bytes(file), journal_state_bytes(file))
            )

    tracer.subscribe(watch)

    plane = FaultPlane(rng=np.random.default_rng(seed))
    plane.add_rule(kinds=MUTATION_KINDS, drop=0.02, fail=0.03, duplicate=0.02)
    plane.add_rule(kinds=REPLY_KINDS, drop=0.02, fail=0.02, duplicate=0.02,
                   delay=0.04, delay_window=3.0)
    net.install_fault_plane(plane)

    # Some data-bucket crash windows so recovery runs (and so an armed
    # recover.mid crash point has something to fire inside), plus clean
    # scheduled coordinator kills between operations.
    injector = file.failures
    horizon = operations + 100
    for w, at in enumerate(range(150, horizon, 150)):
        group = w % 3
        injector.schedule_crash(f"f.d{4 * group}", at=float(at),
                                duration=60.0)
        injector.schedule_crash(parity_node("f", group, 0),
                                at=float(at) + 20.0, duration=60.0)
    for at in range(400, horizon, 700):
        injector.schedule_crash("f.coord", at=float(at))  # down until takeover

    # The mid-restructuring kills: armed once each, re-armed on the
    # current primary until they have fired.
    file.rs_coordinator.arm_crash("split.mid")
    file.rs_coordinator.arm_crash("recover.mid")

    rng = np.random.default_rng(seed + 1)
    oracle: dict[int, bytes] = {}
    written: set[int] = set()
    ambiguous: set[int] = set()
    acked = failed = 0

    for t in range(operations):
        if t % 100 == 0 and net.is_available("f.coord"):
            coordinator = file.rs_coordinator
            for point in ("split.mid", "recover.mid"):
                if not crashes_by_point.get(point):
                    coordinator.arm_crash(point)
        key = int(rng.integers(0, 600))
        roll = float(rng.random())
        try:
            if roll < 0.45:
                value = b"v%d-%d" % (t, key)
                file.insert(key, value)
                oracle[key] = value
                written.add(key)
                ambiguous.discard(key)
                acked += 1
            elif roll < 0.65:
                value = b"u%d-%d" % (t, key)
                file.update(key, value)  # upsert semantics
                oracle[key] = value
                written.add(key)
                ambiguous.discard(key)
                acked += 1
            elif roll < 0.80:
                file.delete(key)
                oracle.pop(key, None)
                ambiguous.discard(key)
                acked += 1
            else:
                outcome = file.search(key)
                if key not in ambiguous:
                    if key in oracle:
                        assert outcome.found and outcome.value == oracle[key]
                    else:
                        assert not outcome.found
        except OperationFailed:
            failed += 1
            if roll < 0.80:
                ambiguous.add(key)

    assert acked + failed >= int(operations * 0.70)
    assert acked > failed * 10

    # ---- quiesce -------------------------------------------------------
    plane.clear_rules()
    while injector.pending_events:
        net.advance(60.0)
    net.advance(60.0)
    if not net.is_available("f.coord"):
        file.await_takeover()
    assert plane.pending == 0

    entries = file.rs_coordinator.run_probe_cycle(rounds=3)
    assert entries[-1]["unavailable"] == []
    assert entries[-1]["errors"] == []

    # ---- acceptance: no record lost or duplicated ----------------------
    assert file.verify_parity_consistency() == []
    for key, value in oracle.items():
        if key in ambiguous:
            continue
        outcome = file.search(key)
        assert outcome.found and outcome.value == value, key
    for key in written - set(oracle) - ambiguous:
        assert not file.search(key).found, key
    # No duplicates: every key lives in exactly one bucket.
    seen: set[int] = set()
    for records in file.census_with_ranks().values():
        overlap = seen & set(records)
        assert not overlap, f"keys duplicated across buckets: {overlap}"
        seen |= set(records)

    # ---- acceptance: the coordinator really died, repeatedly -----------
    takeovers = sum(s.takeovers for s in file.standbys)
    assert takeovers >= 2, "the kill schedule never forced a succession"
    assert crashes_by_point.get("split.mid"), "no crash fired mid-split"
    assert crashes_by_point.get("recover.mid"), "no crash fired mid-recovery"
    resumed = tracer.counts.get("coord.resume", 0)
    assert resumed >= 1  # at least one open intent was rolled forward

    # ---- acceptance: state byte-equal to journal truth -----------------
    assert takeover_checks, "no takeover was observed"
    for live, truth in takeover_checks:
        assert live == truth
    assert live_state_bytes(file) == journal_state_bytes(file)
    assert file.check_reconstructed_state()

    # ---- observability acceptance --------------------------------------
    assert auditor.violations == []
    assert auditor.check_file(file) == []
    assert tracer.counts.get("coord.takeover.end", 0) == takeovers
    assert metrics.get("net.messages").value > 0
    return file


def test_coordinator_failover_soak_5000_ops():
    run_coordinator_chaos(operations=5000, seed=20260806)


def test_coordinator_kill_smoke():
    """Fixed-seed quick variant (CI's coordinator-kill gate)."""
    run_coordinator_chaos(operations=700, seed=4321)
