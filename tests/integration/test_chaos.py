"""Chaos soak: thousands of mixed operations under a hostile message
plane *and* concurrent crash/restore windows.

The fault rules follow the protocol's safety envelope:

* mutations (and their Δs) are dropped, transiently failed and
  duplicated — but never *delayed*: a held mutation re-delivered later
  could reorder with a subsequent write to the same key across a
  different A2 forwarding path, which no last-writer oracle can track.
  Sequence numbers and write acks are exactly the machinery that makes
  drop/dup/fail survivable, so that is what we batter.
* read replies, acks and IAMs also get delayed (bounded, per-channel
  FIFO) — late replies must satisfy waiting retries, late acks must
  match retried tokens.

Crash windows take at most k members of a group down at a time; the
self-healing probe loop and the report-driven recovery paths race the
windows.  At the end: every acked write readable, every acked delete
gone, parity recomputed == stored, every crashed node rebuilt.
"""

import numpy as np
import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import parity_node
from repro.sdds.client import OperationFailed
from repro.sim import FaultPlane

MUTATION_KINDS = {"insert", "update", "delete", "search", "parity.update"}
REPLY_KINDS = {"search.result", "op.ack", "iam"}


def run_chaos(
    operations: int, seed: int, trace_capacity: int | None = 20_000
) -> LHRSFile:
    config = LHRSConfig(
        group_size=4,
        availability=2,
        bucket_capacity=16,
        parity_ack=True,
        client_acks=True,
        retry_attempts=6,
        retry_backoff_base=0.5,
    )
    file = LHRSFile(config)
    net = file.network
    # Full observability: the invariant auditor rides the whole soak in
    # strict mode — any cross-layer violation raises at the offending
    # message with the trace tail attached (explain-on-failure).
    tracer, metrics, auditor = file.enable_observability(
        trace_capacity=trace_capacity
    )

    plane = FaultPlane(rng=np.random.default_rng(seed))
    plane.add_rule(kinds=MUTATION_KINDS, drop=0.03, fail=0.04, duplicate=0.03)
    plane.add_rule(kinds=REPLY_KINDS, drop=0.03, fail=0.03, duplicate=0.03,
                   delay=0.05, delay_window=3.0)
    net.install_fault_plane(plane)

    # Staggered crash windows: ≤ k members of one group at a time,
    # cycling over the first six groups, overlapping across groups.
    injector = file.failures
    pairs = [
        lambda g: (f"f.d{4 * g}", f"f.d{4 * g + 1}"),
        lambda g: (f"f.d{4 * g + 2}", parity_node("f", g, 0)),
        lambda g: (parity_node("f", g, 0), parity_node("f", g, 1)),
    ]
    horizon = operations + 100
    for w, at in enumerate(range(120, horizon, 60)):
        group = w % 6
        for node in pairs[w % 3](group):
            injector.schedule_crash(node, at=float(at), duration=80.0)

    rng = np.random.default_rng(seed + 1)
    oracle: dict[int, bytes] = {}
    written: set[int] = set()
    ambiguous: set[int] = set()
    acked = failed = 0

    for t in range(operations):
        key = int(rng.integers(0, 600))
        roll = float(rng.random())
        try:
            if roll < 0.45:
                value = b"v%d-%d" % (t, key)
                file.insert(key, value)
                oracle[key] = value
                written.add(key)
                ambiguous.discard(key)
                acked += 1
            elif roll < 0.65:
                value = b"u%d-%d" % (t, key)
                file.update(key, value)  # upsert semantics
                oracle[key] = value
                written.add(key)
                ambiguous.discard(key)
                acked += 1
            elif roll < 0.80:
                file.delete(key)
                oracle.pop(key, None)
                ambiguous.discard(key)
                acked += 1
            else:
                outcome = file.search(key)
                if key not in ambiguous:
                    if key in oracle:
                        assert outcome.found and outcome.value == oracle[key]
                    else:
                        assert not outcome.found
        except OperationFailed:
            failed += 1
            if roll < 0.80:
                ambiguous.add(key)

    assert acked + failed >= int(operations * 0.70)  # mostly mutations ran
    assert acked > failed * 10  # the retry ladder confirms the vast majority

    # ---- quiesce: no more faults, windows all closed ------------------
    plane.clear_rules()
    while injector.pending_events:
        net.advance(60.0)
    net.advance(60.0)
    assert plane.pending == 0  # every delayed message matured

    # ---- the self-healing loop sweeps up whatever is still down -------
    entries = file.rs_coordinator.run_probe_cycle(rounds=3)
    assert entries[-1]["unavailable"] == []
    assert entries[-1]["errors"] == []

    # ---- acceptance: the file survived ---------------------------------
    assert file.verify_parity_consistency() == []
    for key, value in oracle.items():
        if key in ambiguous:
            continue
        outcome = file.search(key)
        assert outcome.found and outcome.value == value, key
    for key in written - set(oracle) - ambiguous:
        assert not file.search(key).found, key

    crashed = {node for _, action, node in injector.event_log
               if action == "crash"}
    assert crashed  # the windows really fired
    assert all(net.is_available(node) for node in crashed)
    assert file.rs_coordinator.recovery.groups_recovered >= 1
    # The plane really exercised every fault class.
    for counter in ("dropped", "failed", "duplicated", "delayed", "released"):
        assert plane.counters[counter] > 0, counter

    # ---- observability acceptance --------------------------------------
    # The auditor watched every event in strict mode and never fired;
    # the quiesce-point generation audit agrees parity == data.
    assert auditor.violations == []
    assert auditor.check_file(file) == []
    assert auditor.events_seen > operations  # it really saw the traffic
    assert tracer.counts.get("fault.injected", 0) > 0
    assert tracer.counts.get("recovery.rank", 0) > 0
    assert 0 < metrics.get("net.messages").value <= net.stats.total.messages
    return file


def test_chaos_soak_5000_ops():
    run_chaos(operations=5000, seed=20260806)


def test_chaos_smoke():
    """Fixed-seed quick variant (CI's 30-second chaos gate)."""
    run_chaos(operations=700, seed=1234)
