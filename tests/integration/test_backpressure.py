"""Backpressure integration: bounded queues shed under overload, clients
back off and retry, Δ-parity sequence numbers keep duplicates-after-shed
idempotent, and the strict invariant auditor rides a shedding chaos soak.

The danger zone for load shedding in LH*RS is the Δ-parity channel: a
data bucket's parity send can be refused (``busy``), retried, and — with
a hostile plane — *also* duplicated, so a parity bucket can legally see
the same Δ zero, one or two times.  The per-position sequence numbers
are what make that safe; these tests batter exactly that seam.
"""

import numpy as np
import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import parity_node
from repro.sdds.client import OperationFailed
from repro.sim import FaultPlane
from repro.sim.rng import make_rng


def overloaded_file(queue_limit=4, drain_rate=0.15, seed=11, **overrides):
    base = dict(
        group_size=4,
        availability=1,
        bucket_capacity=16,
        client_acks=True,
        parity_ack=True,
        retry_attempts=8,
        retry_jitter=True,
        bucket_queue_limit=queue_limit,
    )
    base.update(overrides)
    config = LHRSConfig(**base)
    file = LHRSFile(config)
    file.enable_observability()
    file.enable_service_model(
        link_latency=0.25, service_time=1.0, drain_rate=drain_rate
    )
    plane = FaultPlane(rng=make_rng(seed))
    file.network.install_fault_plane(plane)
    return file, plane


def test_overload_sheds_but_loses_no_acked_write():
    file, plane = overloaded_file()
    oracle = {}
    failed = 0
    for key in range(250):
        value = b"ov%d" % key
        try:
            file.insert(key, value)
            oracle[key] = value
        except OperationFailed:
            failed += 1
    service = file.network.service
    assert service.counters["shed"] > 0  # the bound really bit
    assert file.tracer.counts.get("msg.shed", 0) == service.counters["shed"]
    assert file.metrics.counter("svc.shed").value == service.counters["shed"]
    # jittered backoff + retries carried (nearly) everything through
    assert len(oracle) > failed * 10
    for key, value in oracle.items():
        outcome = file.search(key)
        assert outcome.found and outcome.value == value
    assert file.verify_parity_consistency() == []
    assert file.auditor.violations == []


def test_duplicate_after_shed_is_idempotent():
    """A Δ-parity send can be shed, retried *and* duplicated; sequence
    numbers must collapse the replay to exactly-once application."""
    file, plane = overloaded_file(queue_limit=3, drain_rate=0.2)
    plane.add_rule(kinds={"parity.update"}, duplicate=0.25)
    oracle = {}
    for key in range(200):
        value = b"dup%d" % key
        try:
            file.insert(key, value)
            oracle[key] = value
        except OperationFailed:
            pass
    assert file.network.service.counters["shed"] > 0
    assert plane.counters["duplicated"] > 0
    # both hazards fired on the same channel; parity still agrees with
    # data exactly (no double-applied Δ)
    assert file.verify_parity_consistency() == []
    for key, value in oracle.items():
        outcome = file.search(key)
        assert outcome.found and outcome.value == value
    assert file.auditor.violations == []


def test_queue_gauges_and_depth_bound():
    file, plane = overloaded_file(queue_limit=4, drain_rate=0.1)
    for key in range(150):
        try:
            file.insert(key, b"x")
        except OperationFailed:
            pass
    service = file.network.service
    # sheddable traffic respects the admission bound at every data
    # bucket; structural messages may push a little past it
    for bucket in range(file.bucket_count):
        node = f"{file.file_id}.d{bucket}"
        assert service.max_depths.get(node, 0.0) <= 4 + 4
    assert file.metrics.get("svc.queue_depth").count > 0
    assert file.metrics.get("svc.queue_depth.max").value > 0


def run_shedding_soak(operations: int, seed: int) -> LHRSFile:
    """Chaos soak with the full gray-failure stack engaged: bounded
    queues + low drain (constant shedding), a ramping straggler, lossy
    and duplicating rules on the mutation plane, crash windows, and the
    strict invariant auditor watching every event."""
    file, plane = overloaded_file(
        queue_limit=4,
        drain_rate=0.3,
        seed=seed,
        availability=2,
        read_deadline=64.0,
    )
    net = file.network
    plane.add_rule(
        kinds={"insert", "update", "delete", "parity.update"},
        drop=0.02, fail=0.03, duplicate=0.03,
    )
    plane.add_slow_rule(node="f.d1", factor=8.0, ramp=0.05, jitter=0.2)
    injector = file.failures
    for w, at in enumerate(range(150, operations, 200)):
        injector.schedule_crash(
            f"f.d{4 * (w % 3)}" if w % 2 else parity_node("f", w % 3, 0),
            at=float(at), duration=90.0,
        )

    rng = np.random.default_rng(seed + 1)
    oracle: dict[int, bytes] = {}
    ambiguous: set[int] = set()
    acked = failed = 0
    for t in range(operations):
        key = int(rng.integers(0, 400))
        roll = float(rng.random())
        try:
            if roll < 0.5:
                value = b"s%d-%d" % (t, key)
                file.insert(key, value)
                oracle[key] = value
                ambiguous.discard(key)
                acked += 1
            elif roll < 0.7:
                file.delete(key)
                oracle.pop(key, None)
                ambiguous.discard(key)
                acked += 1
            else:
                outcome = file.search(key)
                if key not in ambiguous:
                    if key in oracle:
                        assert outcome.found and outcome.value == oracle[key]
                    else:
                        assert not outcome.found
        except OperationFailed:
            failed += 1
            if roll < 0.7:
                ambiguous.add(key)

    assert acked > failed  # shedding degraded, it did not stop, service

    # quiesce and sweep up
    plane.clear_rules()
    while injector.pending_events:
        net.advance(60.0)
    net.advance(120.0)
    entries = file.rs_coordinator.run_probe_cycle(rounds=3)
    assert entries[-1]["unavailable"] == []

    assert net.service.counters["shed"] > 0  # the soak really shed
    assert file.verify_parity_consistency() == []
    for key, value in oracle.items():
        if key in ambiguous:
            continue
        outcome = file.search(key)
        assert outcome.found and outcome.value == value, key
    # strict mode: any violation would have raised at the offending
    # event; the post-hoc list must be empty too
    assert file.auditor.violations == []
    assert file.auditor.check_file(file) == []
    return file


def test_shedding_soak_smoke():
    """Fixed-seed quick variant (CI's straggler chaos gate)."""
    run_shedding_soak(operations=500, seed=20260808)


def test_shedding_soak_2000_ops():
    run_shedding_soak(operations=2000, seed=42)
