"""Failures landing *during* splits, merges and upgrades.

Structural operations move records and parity in multiple steps; these
tests pin that a parity (or mirror) site dying mid-operation leaves the
system consistent — the mutate-first / rebuild-from-current / no-resend
discipline at work.
"""

import pytest

from repro.baselines import LHMFile
from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng


def build(k=2, count=200, capacity=8, seed=53, **kw):
    file = LHRSFile(
        LHRSConfig(group_size=4, availability=k, bucket_capacity=capacity, **kw)
    )
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big"))
    return file, keys


class TestParityDownDuringStructuralOps:
    def test_split_with_source_group_parity_down(self):
        file, _ = build()
        source, target, _ = file.coordinator.state.next_split()
        source_group = source // 4
        node = file.fail_parity_bucket(source_group, 0)
        file.coordinator.split_once()
        assert file.network.is_available(node)  # healed by the batch send
        assert file.verify_parity_consistency() == []

    def test_split_with_target_group_parity_down(self):
        file, _ = build()
        # Grow until the next split's target lands in an existing group.
        while True:
            source, target, _ = file.coordinator.state.next_split()
            if target % 4 != 0:
                break
            file.coordinator.split_once()
        target_group = target // 4
        node = file.fail_parity_bucket(target_group, 1)
        file.coordinator.split_once()
        assert file.network.is_available(node)
        assert file.verify_parity_consistency() == []

    def test_merge_with_absorber_group_parity_down(self):
        file, _ = build()
        state = file.coordinator.state
        last = state.bucket_count - 1
        if last % 4 == 0:
            file.rs_coordinator.merge_once()  # make the next merge non-retiring
        source = state.copy()
        source.retreat_merge()
        absorber_group = source.n // 4
        node = file.fail_parity_bucket(absorber_group, 0)
        file.rs_coordinator.merge_once()
        assert file.network.is_available(node)
        assert file.verify_parity_consistency() == []

    def test_availability_raise_with_data_bucket_down(self):
        """Retrofitting a group reads its data; a dead member must be
        recovered first (the dump call reports it)."""
        from repro.core import RecoveryError

        file, _ = build(k=1)
        file.fail_data_bucket(1)
        # raise_group_level dumps bucket 1 -> NodeUnavailable surfaces;
        # recover first, then raising works.
        with pytest.raises(Exception):
            file.rs_coordinator.raise_group_level(0, 2)
        file.recover(["f.d1"])
        file.rs_coordinator.raise_group_level(0, 2)
        assert file.verify_parity_consistency() == []


class TestMirrorDuringStructuralOps:
    def test_split_with_mirror_down(self):
        file = LHMFile(capacity=8)
        rng = make_rng(54)
        for key in rng.choice(10**9, size=150, replace=False):
            file.insert(int(key), b"m")
        source, _, _ = file.coordinator.state.next_split()
        node = file.fail_mirror(source)
        file.coordinator.split_once()
        assert file.network.is_available(node)
        assert file.verify_mirror_consistency() == []


class TestFailuresDuringWorkloadWithLazyParity:
    def test_lazy_mode_soak_with_failures(self):
        from repro.workloads import (
            FailureSchedule, OperationMix, generate_operations, run_trace,
        )

        file, _ = build(k=2, parity_batch_size=4, capacity=16, count=300)
        candidates = [f"f.d{b}" for b in range(file.bucket_count)]
        schedule = FailureSchedule.random_bursts(
            candidates, operations=400, bursts=3, seed=55
        )
        ops = generate_operations(
            400, OperationMix(insert=1, search=2, update=1, delete=0.2),
            seed=56,
        )
        run_trace(file, ops, schedule)
        file.rs_coordinator.probe()
        file.flush_all_parity()
        assert file.verify_parity_consistency() == []
