"""Cross-scheme integration: every scheme, same workload, same answers.

The schemes differ in redundancy machinery, never in semantics: an
identical operation stream must leave identical logical content in
LH*, LH*m, LH*s, LH*g and LH*RS files, and all must serve the same
reads — including through a failure of any single bucket.
"""

import pytest

from repro.baselines import LHGConfig, LHGFile, LHMFile, LHSFile, LHStarBaseline
from repro.core import LHRSConfig, LHRSFile
from repro.workloads import KeyStream, OperationMix, PayloadShape, generate_operations


def make_schemes():
    return {
        "lh*": LHStarBaseline(capacity=8),
        "lh*m": LHMFile(capacity=8),
        "lh*s": LHSFile(stripes=4, capacity=8),
        "lh*g": LHGFile(LHGConfig(group_size=4, bucket_capacity=8)),
        "lh*rs-k1": LHRSFile(LHRSConfig(group_size=4, availability=1,
                                        bucket_capacity=8)),
        "lh*rs-k2": LHRSFile(LHRSConfig(group_size=4, availability=2,
                                        bucket_capacity=8)),
    }


def run_workload(file, ops):
    oracle = {}
    for op, key, payload in ops:
        if op == "insert":
            file.insert(key, payload)
            oracle[key] = payload
        elif op == "update":
            file.update(key, payload)
            oracle[key] = payload
        elif op == "delete":
            file.delete(key)
            oracle.pop(key, None)
        else:
            file.search(key)
    return oracle


@pytest.fixture(scope="module")
def workload():
    return list(
        generate_operations(
            400,
            OperationMix(insert=2, search=1, update=1, delete=0.4),
            keys=KeyStream(kind="uniform", seed=31),
            payloads=PayloadShape(kind="variable", min_size=8, max_size=64,
                                  seed=31),
            seed=31,
        )
    )


class TestEquivalence:
    def test_all_schemes_agree_with_the_oracle(self, workload):
        for name, file in make_schemes().items():
            oracle = run_workload(file, workload)
            assert file.total_records() == len(oracle), name
            for key, payload in list(oracle.items())[::5]:
                outcome = file.search(key)
                assert outcome.found, (name, key)
                assert outcome.value == payload, (name, key)
            absent = 10**9 + 99
            assert not file.search(absent).found, name

    def test_redundant_schemes_survive_any_single_bucket(self, workload):
        """Fail bucket 1's server in each 1+-available scheme; a sample
        of reads must still return oracle values."""
        for name, file in make_schemes().items():
            if name in ("lh*", "lh*s"):
                continue  # no transparent client failover in these two
            oracle = run_workload(file, workload)
            file.network.fail(f"{file.file_id}.d1")
            sample = [
                (k, v) for k, v in oracle.items()
                if file.find_bucket_of(k) == 1
            ][:5]
            for key, payload in sample:
                outcome = file.search(key)
                assert outcome.found and outcome.value == payload, (name, key)

    def test_striping_survives_via_reconstruction(self, workload):
        file = LHSFile(stripes=4, capacity=8)
        oracle = run_workload(file, workload)
        key, payload = next(iter(oracle.items()))
        bucket = file.segments[2].find_bucket_of(key)
        file.fail_segment_bucket(2, bucket)
        outcome = file.search(key)
        assert outcome.found and outcome.value == payload

    def test_consistency_oracles_all_green(self, workload):
        schemes = make_schemes()
        for name, file in schemes.items():
            run_workload(file, workload)
        assert schemes["lh*m"].verify_mirror_consistency() == []
        assert schemes["lh*g"].verify_parity_consistency() == []
        assert schemes["lh*rs-k1"].verify_parity_consistency() == []
        assert schemes["lh*rs-k2"].verify_parity_consistency() == []
