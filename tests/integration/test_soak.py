"""Long-run soak tests: everything at once.

These exercise interactions no unit test reaches: scalable availability
upgrades *while* failures land, GF(2^16) parity through a full lifecycle,
the Vandermonde generator at fixed k, growth + shrink + regrowth cycles,
multiple clients with diverging images, and coordinator probing.
"""

import pytest

from repro.core import AvailabilityPolicy, LHRSConfig, LHRSFile
from repro.sim.rng import make_rng
from repro.workloads import (
    FailureSchedule,
    KeyStream,
    OperationMix,
    PayloadShape,
    generate_operations,
    run_trace,
)


class TestLifecycleSoak:
    def test_scalable_availability_under_failures(self):
        """Policy upgrades interleave with crashes and keep everything
        consistent and recoverable."""
        config = LHRSConfig(
            group_size=4,
            bucket_capacity=8,
            policy=AvailabilityPolicy.scalable(
                base_level=1, first_threshold=4, growth=4, max_level=3
            ),
            upgrade_existing_groups=True,
        )
        file = LHRSFile(config)
        warm = generate_operations(500, OperationMix(insert=1), seed=41)
        run_trace(file, warm)
        candidates = [f"f.d{b}" for b in range(file.bucket_count)]
        schedule = FailureSchedule.random_bursts(
            candidates, operations=600, bursts=5, seed=42
        )
        ops = generate_operations(
            600, OperationMix(insert=1, search=2, update=1, delete=0.3),
            keys=KeyStream(seed=43, key_space=10**8), seed=43,
        )
        run_trace(file, ops, schedule)
        # Recovery is reactive: nodes nothing touched stay down until a
        # probe round sweeps them up.
        file.rs_coordinator.probe()
        assert file.verify_parity_consistency() == []
        assert max(file.group_levels().values()) >= 2
        assert all(
            file.network.is_available(e.node_id) for e in schedule.events
        )

    def test_gf16_full_lifecycle(self):
        """GF(2^16) parity: growth, mutations, multi-failure recovery."""
        file = LHRSFile(
            LHRSConfig(group_size=4, availability=2, bucket_capacity=8,
                       field_width=16)
        )
        rng = make_rng(44)
        keys = [int(x) for x in rng.choice(10**9, size=300, replace=False)]
        for key in keys:
            # Odd payload lengths stress the 2-byte-symbol padding.
            file.insert(key, key.to_bytes(8, "big") * 2 + b"!")
        for key in keys[::3]:
            file.update(key, b"gf16-" + key.to_bytes(8, "big"))
        assert file.verify_parity_consistency() == []
        before = file.census_with_ranks()
        nodes = [file.fail_data_bucket(0), file.fail_data_bucket(3)]
        file.recover(nodes)
        assert file.census_with_ranks() == before
        assert file.verify_parity_consistency() == []

    def test_vandermonde_generator_fixed_k(self):
        """The ablation generator is fully usable at fixed k."""
        file = LHRSFile(
            LHRSConfig(group_size=4, availability=2, bucket_capacity=8,
                       generator="vandermonde")
        )
        rng = make_rng(45)
        keys = [int(x) for x in rng.choice(10**9, size=250, replace=False)]
        for key in keys:
            file.insert(key, key.to_bytes(8, "big"))
        assert file.verify_parity_consistency() == []
        nodes = [file.fail_data_bucket(1), file.fail_data_bucket(2)]
        before = file.census_with_ranks()
        file.recover(nodes)
        assert file.census_with_ranks() == before
        assert file.verify_parity_consistency() == []

    def test_vandermonde_cannot_scale_availability(self):
        from repro.core import RecoveryError

        file = LHRSFile(
            LHRSConfig(group_size=4, availability=1, bucket_capacity=8,
                       generator="vandermonde")
        )
        with pytest.raises(RecoveryError, match="nested"):
            file.rs_coordinator.raise_group_level(0, 2)

    def test_grow_shrink_regrow_cycles(self):
        file = LHRSFile(LHRSConfig(group_size=4, availability=1,
                                   bucket_capacity=8))
        live = {}
        rng = make_rng(46)
        for cycle in range(3):
            fresh = [int(x) + cycle * 10**9 for x in
                     rng.choice(10**8, size=200, replace=False)]
            for key in fresh:
                file.insert(key, key.to_bytes(8, "big"))
                live[key] = key.to_bytes(8, "big")
            victims = list(live)[: int(len(live) * 0.8)]
            for key in victims:
                file.delete(key)
                del live[key]
            while file.bucket_count > 8:
                file.rs_coordinator.merge_once()
            assert file.verify_parity_consistency() == []
        assert file.total_records() == len(live)
        for key, value in list(live.items())[::9]:
            assert file.search(key).value == value

    def test_many_clients_diverging_images(self):
        file = LHRSFile(LHRSConfig(group_size=4, availability=1,
                                   bucket_capacity=8))
        clients = [file.new_client() for _ in range(5)]
        rng = make_rng(47)
        keys = [int(x) for x in rng.choice(10**9, size=400, replace=False)]
        for index, key in enumerate(keys):
            clients[index % 5].insert(key, key.to_bytes(8, "big"))
        # Every client can read every record regardless of whose image
        # drove the insert.
        for index, key in enumerate(keys[::13]):
            outcome = clients[(index + 3) % 5].search(key)
            assert outcome.found and outcome.value == key.to_bytes(8, "big")
        assert file.verify_parity_consistency() == []

    def test_coordinator_probe_recovers_silent_failures(self):
        file = LHRSFile(LHRSConfig(group_size=4, availability=2,
                                   bucket_capacity=8))
        rng = make_rng(48)
        for key in rng.choice(10**9, size=200, replace=False):
            file.insert(int(key), b"probe-me")
        before = file.census_with_ranks()
        # Silent failures: nobody touches these buckets.
        file.fail_data_bucket(2)
        file.fail_parity_bucket(1, 0)
        summary = file.rs_coordinator.probe()
        assert set(summary["unavailable"]) == {"f.d2", "f.p1.0"}
        assert summary["recovered"]["groups"] == 2
        assert file.census_with_ranks() == before
        assert file.verify_parity_consistency() == []

    def test_probe_clean_file_is_quiet(self):
        file = LHRSFile(LHRSConfig(bucket_capacity=8))
        for key in range(50):
            file.insert(key, b"x")
        summary = file.rs_coordinator.probe()
        assert summary["unavailable"] == []
        assert "recovered" not in summary
