"""WAL frames, checkpoints and replay — including the crash sweep.

The load-bearing property (the tentpole's acceptance bar): crash at
*every* fsync boundary and replay recovers exactly the durable prefix —
never a record beyond it, never a torn frame mistaken for data.  A
hypothesis sweep drives record shapes, fsync intervals, checkpoint
cadences and crash points through that invariant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    BucketLog,
    SimDisk,
    decode_blob,
    decode_frames,
    disk_rng,
    encode_blob,
    encode_frame,
)


def make_disk(profile=None, seed=3, node="n1"):
    return SimDisk(
        node,
        rng=disk_rng(seed, node),
        profile=(lambda: profile) if profile is not None else None,
    )


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
class TestFrames:
    def test_roundtrip_preserves_types(self):
        record = {
            "op": "insert",
            "key": 17,
            "delta": b"\x00\xffpayload",
            "nested": {"ranks": {3: 9}, "items": [1, b"x", "s"]},
        }
        frames, clean = decode_frames(encode_frame(record))
        assert clean
        assert frames == [record]

    def test_digit_dict_keys_restored_to_int(self):
        frames, _ = decode_frames(encode_frame({"seqs": {0: 5, 2: 9}}))
        assert frames[0]["seqs"] == {0: 5, 2: 9}

    def test_identical_records_serialize_identically(self):
        record = {"b": 1, "a": b"xy"}
        assert encode_frame(record) == encode_frame(dict(record))

    def test_concatenated_frames_decode_in_order(self):
        data = encode_frame({"n": 1}) + encode_frame({"n": 2})
        frames, clean = decode_frames(data)
        assert clean
        assert [f["n"] for f in frames] == [1, 2]

    def test_torn_tail_stops_scan_unclean(self):
        data = encode_frame({"n": 1}) + encode_frame({"n": 2})[:-3]
        frames, clean = decode_frames(data)
        assert not clean
        assert [f["n"] for f in frames] == [1]

    def test_torn_header_stops_scan_unclean(self):
        data = encode_frame({"n": 1}) + b"\x01\x02"
        frames, clean = decode_frames(data)
        assert not clean
        assert [f["n"] for f in frames] == [1]

    def test_bitflip_fails_checksum(self):
        data = bytearray(encode_frame({"n": 1}) + encode_frame({"n": 2}))
        data[len(data) - 2] ^= 0x40  # flip a bit in the second body
        frames, clean = decode_frames(bytes(data))
        assert not clean
        assert [f["n"] for f in frames] == [1]

    def test_rotted_length_field_rejected(self):
        data = bytearray(encode_frame({"n": 1}))
        data[3] ^= 0x80  # blow up the length field far past the log end
        frames, clean = decode_frames(bytes(data))
        assert not clean
        assert frames == []

    def test_blob_roundtrip_and_rejection(self):
        blob = encode_blob({"kind": "data", "records": [b"p"]})
        assert decode_blob(blob) == {"kind": "data", "records": [b"p"]}
        assert decode_blob(b"") is None
        assert decode_blob(blob[:-1]) is None


# ----------------------------------------------------------------------
# BucketLog
# ----------------------------------------------------------------------
class TestBucketLog:
    def test_append_stamps_monotonic_lsns(self):
        log = BucketLog(make_disk())
        assert [log.append({"op": "a"}), log.append({"op": "b"})] == [1, 2]

    def test_append_does_not_mutate_caller_record(self):
        log = BucketLog(make_disk())
        record = {"op": "a"}
        log.append(record)
        assert record == {"op": "a"}

    def test_recover_replays_appends(self):
        disk = make_disk()
        log = BucketLog(disk)
        log.append({"op": "a"})
        log.append({"op": "b"})
        disk.crash()
        state, tail, clean = BucketLog(disk).recover()
        assert state is None
        assert clean
        assert [rec["op"] for rec in tail] == ["a", "b"]

    def test_fsync_interval_batches_durability(self):
        disk = make_disk()
        log = BucketLog(disk, fsync_interval=3)
        for op in "abcde":
            log.append({"op": op})
        disk.crash()  # 'd', 'e' were never fsynced
        _, tail, clean = BucketLog(disk).recover()
        assert clean
        assert [rec["op"] for rec in tail] == ["a", "b", "c"]

    def test_checkpoint_retires_log_and_skips_duplicates(self):
        disk = make_disk()
        log = BucketLog(disk)
        log.append({"op": "a"})
        log.checkpoint({"kind": "data", "count": 1})
        log.append({"op": "b"})
        disk.crash()
        state, tail, clean = BucketLog(disk).recover()
        assert clean
        assert state["count"] == 1
        assert state["lsn"] == 1
        assert [rec["op"] for rec in tail] == ["b"]

    def test_recover_resumes_lsn_past_checkpoint_highwater(self):
        disk = make_disk()
        log = BucketLog(disk)
        log.append({"op": "a"})
        log.checkpoint({"kind": "data"})
        disk.crash()
        replay = BucketLog(disk)
        replay.recover()
        assert replay.append({"op": "b"}) == 2

    def test_torn_wal_reports_unclean(self):
        disk = make_disk({"torn_write": 1.0}, seed=11)
        log = BucketLog(disk, fsync_interval=10)
        log.append({"op": "a"})
        log.sync()
        log.append({"op": "doomed-but-long-enough-to-tear"})
        disk.crash()
        _, tail, clean = BucketLog(disk).recover()
        assert not clean
        assert [rec["op"] for rec in tail] == ["a"]

    def test_rotted_wal_reports_unclean(self):
        disk = make_disk({"bitrot": 1.0, "bitrot_flips": 8}, seed=13)
        log = BucketLog(disk)
        for op in "abcdef":
            log.append({"op": op, "pad": b"x" * 32})
        disk.crash()
        _, tail, clean = BucketLog(disk).recover()
        # flips landed in the only non-empty durable file: the log
        assert not clean
        assert [rec["op"] for rec in tail] == list("abcdef")[:len(tail)]


# ----------------------------------------------------------------------
# the crash sweep (acceptance bar)
# ----------------------------------------------------------------------
RECORDS = st.lists(
    st.fixed_dictionaries(
        {
            "op": st.sampled_from(["insert", "update", "delete"]),
            "key": st.integers(0, 99),
            "delta": st.binary(max_size=12),
        }
    ),
    min_size=1,
    max_size=24,
)


@settings(max_examples=60, deadline=None)
@given(
    records=RECORDS,
    fsync_interval=st.integers(1, 5),
    checkpoint_every=st.integers(0, 7),
)
def test_crash_at_every_boundary_replays_exactly_durable_prefix(
    records, fsync_interval, checkpoint_every
):
    """Crash after every single append: replay ≡ durable prefix.

    For each crash point the durable prefix is computed from first
    principles — every record up to the last fsync barrier (interval
    boundary, explicit checkpoint, or both) — and replay must produce
    exactly that sequence: nothing beyond it (no resurrecting unsynced
    appends), nothing torn, and the checkpoint state folded in.
    """
    for crash_after in range(len(records) + 1):
        disk = SimDisk("sweep", rng=disk_rng(1, "sweep"))
        log = BucketLog(disk, fsync_interval=fsync_interval)
        durable = 0  # records protected by the last fsync barrier
        checkpointed = 0  # records folded into the checkpoint state
        since_sync = 0
        for i, record in enumerate(records[:crash_after]):
            log.append(record)
            since_sync += 1
            if since_sync >= fsync_interval:
                durable = i + 1
                since_sync = 0
            if checkpoint_every and (i + 1) % checkpoint_every == 0:
                log.checkpoint({"applied": i + 1})
                durable = checkpointed = i + 1
                since_sync = 0
        disk.crash()

        state, tail, clean = BucketLog(disk).recover()
        assert clean  # no torn-write rule: the prefix ends exactly
        replayed = (state["applied"] if state is not None else 0) + len(tail)
        assert replayed == durable
        assert (state is None) == (checkpointed == 0)
        expected_tail = records[checkpointed:durable]
        assert [
            {k: rec[k] for k in ("op", "key", "delta")} for rec in tail
        ] == expected_tail
