"""SimDisk semantics: fsync barriers, crash loss, torn writes, bit-rot.

The disk model is the foundation the WAL's durability argument stands
on, so its contract is pinned operation by operation: only fsynced
bytes survive a crash, staged whole-file replaces are atomic, and every
fault draw comes from the disk's own seeded generator (independent of
the network RNG, so crash damage replays exactly).
"""

import pytest

from repro.store import DiskError, SimDisk, disk_rng


def make_disk(profile=None, seed=7, node="n1"):
    return SimDisk(
        node,
        rng=disk_rng(seed, node),
        profile=(lambda: profile) if profile is not None else None,
    )


class TestWritePath:
    def test_append_visible_to_read_before_fsync(self):
        disk = make_disk()
        disk.append("wal", b"abc")
        assert disk.read("wal") == b"abc"
        assert disk.unsynced_bytes("wal") == 3

    def test_fsync_moves_tail_to_durable(self):
        disk = make_disk()
        disk.append("wal", b"abc")
        disk.fsync("wal")
        assert disk.unsynced_bytes("wal") == 0
        disk.crash()
        assert disk.read("wal") == b"abc"

    def test_crash_drops_unsynced_tail(self):
        disk = make_disk()
        disk.append("wal", b"abc")
        disk.fsync("wal")
        disk.append("wal", b"def")
        disk.crash()
        assert disk.read("wal") == b"abc"

    def test_write_file_is_atomic_until_fsync(self):
        disk = make_disk()
        disk.append("ckpt", b"old")
        disk.fsync("ckpt")
        disk.write_file("ckpt", b"new-image")
        # staged replace is visible to reads ...
        assert disk.read("ckpt") == b"new-image"
        disk.crash()
        # ... but a crash before fsync leaves the old image untouched
        assert disk.read("ckpt") == b"old"

    def test_write_file_durable_after_fsync(self):
        disk = make_disk()
        disk.write_file("ckpt", b"image")
        disk.fsync("ckpt")
        disk.crash()
        assert disk.read("ckpt") == b"image"

    def test_staged_replace_supersedes_earlier_appends(self):
        disk = make_disk()
        disk.append("wal", b"aaa")
        disk.write_file("wal", b"replaced")
        disk.fsync("wal")
        assert disk.read("wal") == b"replaced"

    def test_truncate_stages_empty_file(self):
        disk = make_disk()
        disk.append("wal", b"aaa")
        disk.fsync("wal")
        disk.truncate("wal")
        disk.fsync("wal")
        assert disk.read("wal") == b""

    def test_exists(self):
        disk = make_disk()
        assert not disk.exists("wal")
        disk.append("wal", b"x")
        assert disk.exists("wal")


class TestFaults:
    def test_torn_write_leaves_prefix_of_first_dropped_append(self):
        disk = make_disk({"torn_write": 1.0})
        disk.append("wal", b"durable|")
        disk.fsync("wal")
        disk.append("wal", b"first-dropped")
        disk.append("wal", b"second-dropped")
        disk.crash()
        image = disk.read("wal")
        assert image.startswith(b"durable|")
        torn = image[len(b"durable|"):]
        # a strict, non-empty prefix of the first dropped append only
        assert 1 <= len(torn) < len(b"first-dropped")
        assert b"first-dropped".startswith(torn)
        assert b"second" not in image

    def test_bitrot_flips_bytes_in_durable_image(self):
        disk = make_disk({"bitrot": 1.0, "bitrot_flips": 3})
        disk.append("wal", bytes(64))
        disk.fsync("wal")
        disk.crash()
        image = disk.read("wal")
        assert len(image) == 64
        flipped = sum(1 for byte in image if byte != 0)
        assert 1 <= flipped <= 3

    def test_io_error_raises_disk_error(self):
        disk = make_disk({"io_error": 1.0})
        with pytest.raises(DiskError):
            disk.append("wal", b"x")

    def test_slow_factor_stretches_io_time(self):
        fast = make_disk()
        slow = make_disk({"slow_factor": 4.0})
        for disk in (fast, slow):
            disk.append("wal", b"x" * 100)
            disk.fsync("wal")
        assert slow.io_time == pytest.approx(4.0 * fast.io_time)
        assert fast.io_time == pytest.approx(100.0)

    def test_crash_damage_is_deterministic_per_seed(self):
        def run():
            disk = make_disk({"torn_write": 1.0, "bitrot": 1.0}, seed=99)
            disk.append("wal", b"base-frame")
            disk.fsync("wal")
            disk.append("wal", b"doomed-tail-bytes")
            disk.crash()
            return disk.read("wal")

        assert run() == run()

    def test_distinct_nodes_draw_independent_fault_streams(self):
        streams = []
        for node in ("f.d1", "f.d2"):
            disk = SimDisk(node, rng=disk_rng(5, node),
                           profile=lambda: {"torn_write": 0.5})
            damage = []
            for round_ in range(24):
                disk.append("wal", b"tail-%02d-payload" % round_)
                disk.crash()
                damage.append(len(disk.read("wal")))
            streams.append(damage)
        assert streams[0] != streams[1]


class TestCounters:
    def test_append_and_fsync_counters(self):
        disk = make_disk()
        disk.append("wal", b"abcd")
        disk.append("wal", b"ef")
        disk.fsync("wal")
        assert disk.appends == 2
        assert disk.fsyncs == 1
        assert disk.bytes_written == 6
