"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--records", "200", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "parity consistent: True" in out
        assert "healed: True" in out

    def test_availability_table(self, capsys):
        assert main(["availability", "--p", "0.95", "--max-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "k=2" in out and "4096" in out

    def test_codec(self, capsys):
        assert main(["codec", "--payload", "512"]) == 0
        out = capsys.readouterr().out
        assert "MB/s" in out

    def test_check_clean_sweep(self, capsys):
        assert main([
            "check", "--seeds", "3", "--ops", "40", "--keys", "10",
            "--prefill", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_check_mutant_writes_counterexample(self, tmp_path, capsys):
        artifact = tmp_path / "ce.json"
        status = main([
            "check", "--seeds", "5", "--seed-base", "2",
            "--ops", "70", "--keys", "8", "--prefill", "12",
            "--crash-rate", "0.10",
            "--mutant", "drop_parity_seq",
            "--artifact", str(artifact),
        ])
        assert status == 1
        assert artifact.exists()
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "shrunk" in out

        assert main(["check", "--replay", str(artifact)]) == 0
        assert "reproduced the violation" in capsys.readouterr().out

    def test_check_unknown_mutant(self, capsys):
        assert main(["check", "--mutant", "gremlins"]) == 2
        assert "unknown mutant" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
