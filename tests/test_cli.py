"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo", "--records", "200", "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "parity consistent: True" in out
        assert "healed: True" in out

    def test_availability_table(self, capsys):
        assert main(["availability", "--p", "0.95", "--max-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "k=2" in out and "4096" in out

    def test_codec(self, capsys):
        assert main(["codec", "--payload", "512"]) == 0
        out = capsys.readouterr().out
        assert "MB/s" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
