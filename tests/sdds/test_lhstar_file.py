"""Integration-grade tests of the LH* SDDS: growth, addressing, costs.

These pin the published LH* behaviour that LH*RS inherits: correct
placement under any growth, ≤ 2 forwarding hops, ~1-message inserts and
~2-message searches from converged clients, O(log M) IAMs for fresh
clients, complete scans, ~70% load factor without load control.
"""

import math

import pytest

from repro.lh import addressing
from repro.sdds import LHStarFile, SplitPolicy
from repro.sim.rng import make_rng


def grow_file(file, count, value=b"x" * 16, key_space=10**9, seed=7):
    rng = make_rng(seed)
    keys = rng.choice(key_space, size=count, replace=False)
    for key in keys:
        file.insert(int(key), value)
    return [int(k) for k in keys]


class TestGrowthAndPlacement:
    def test_file_splits_under_inserts(self):
        file = LHStarFile(capacity=8)
        grow_file(file, 400)
        assert file.bucket_count > 16
        assert file.total_records() == 400

    def test_every_record_in_its_correct_bucket(self):
        """Placement invariant: key c sits in bucket h_{j}(c)."""
        file = LHStarFile(capacity=8)
        grow_file(file, 300)
        for server in file.data_servers():
            for key in server.bucket:
                assert addressing.h(server.level, key) == server.number

    def test_all_records_searchable_after_growth(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 250)
        for key in keys[::7]:
            outcome = file.search(key)
            assert outcome.found and outcome.value == b"x" * 16

    def test_search_absent_key(self):
        file = LHStarFile(capacity=8)
        grow_file(file, 100)
        assert not file.search(10**9 + 7).found

    def test_bucket_levels_match_file_state(self):
        file = LHStarFile(capacity=8)
        grow_file(file, 300)
        state = file.coordinator.state
        for server in file.data_servers():
            assert server.level == state.level_of(server.number)

    def test_n0_greater_than_one(self):
        file = LHStarFile(capacity=8, n0=4)
        keys = grow_file(file, 200)
        assert file.bucket_count >= 4
        for key in keys[::11]:
            assert file.search(key).found


class TestMessagingCosts:
    def test_converged_client_insert_is_one_message(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 300)
        client = file.client
        # Converge the client on the live key population.
        for key in keys:
            client.search(key)
        state = file.coordinator.state
        # Pick a key the image addresses correctly whose bucket will not
        # overflow: the insert then costs exactly one message.
        key = next(
            k for k in range(10**6)
            if client.image.address(k) == state.address(k)
            and len(file.data_servers()[state.address(k)].bucket) + 2
            < file.coordinator.capacity
        )
        with file.stats.measure("insert") as window:
            client.insert(key, b"v")
        assert window.messages == 1

    def test_converged_client_search_is_two_messages(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 300)
        for key in keys:
            file.search(key)  # converges the image
        with file.stats.measure("search") as window:
            file.search(keys[0])
        assert window.messages == 2

    def test_worst_case_search_at_most_four_messages_plus_iam(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 500)
        fresh = file.new_client()
        for key in keys[::3]:
            with file.stats.measure("search") as window:
                outcome = fresh.search(key)
            assert outcome.found
            # request + ≤2 forwards + reply + optional IAM
            assert window.messages <= 5
            assert window.by_kind["search"] <= 3  # ≤ 2 forwarding hops

    def test_fresh_client_converges_in_o_log_m_iams(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 600)
        fresh = file.new_client()
        for key in keys:
            fresh.search(key)
        m = file.bucket_count
        assert fresh.image.adjustments <= 2 * math.ceil(math.log2(m)) + 2

    def test_average_insert_cost_near_one(self):
        file = LHStarFile(capacity=16)
        rng = make_rng(3)
        before = file.stats.total.messages
        count = 600
        for key in rng.choice(10**9, size=count, replace=False):
            file.insert(int(key), b"payload")
        per_insert = (file.stats.total.messages - before) / count
        # Splits, forwards and IAMs add overhead; the paper reports ~1.
        assert per_insert < 2.0


class TestUpdatesAndDeletes:
    def test_update_changes_value(self):
        file = LHStarFile(capacity=8)
        file.insert(42, b"old")
        file.update(42, b"new")
        assert file.search(42).value == b"new"

    def test_update_absent_key_reports_error(self):
        file = LHStarFile(capacity=8)
        file.update(99, b"v")
        assert file.client.last_error is not None
        assert file.client.last_error["key"] == 99

    def test_delete_removes(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 120)
        file.delete(keys[5])
        assert not file.search(keys[5]).found
        assert file.total_records() == 119

    def test_delete_absent_is_idempotent(self):
        file = LHStarFile(capacity=8)
        file.delete(12345)
        assert file.total_records() == 0


class TestScans:
    def test_deterministic_scan_returns_everything(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 200)
        result = file.scan()
        assert result.complete
        assert sorted(k for k, _ in result.records) == sorted(keys)
        assert result.buckets_heard == file.bucket_count

    def test_scan_from_stale_image_propagates(self):
        """A fresh client's scan reaches buckets it has never heard of."""
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 300)
        fresh = file.new_client()
        assert fresh.image.bucket_count_estimate < file.bucket_count
        result = fresh.scan()
        assert result.complete
        assert len(result.records) == len(keys)

    def test_scan_with_predicate(self):
        file = LHStarFile(capacity=8)
        for key in range(100):
            file.insert(key, b"even" if key % 2 == 0 else b"odd")
        result = file.scan(lambda k, v: v == b"even")
        assert len(result.records) == 50
        assert all(v == b"even" for _, v in result.records)

    def test_probabilistic_scan_counts_only_matching_buckets(self):
        file = LHStarFile(capacity=8)
        grow_file(file, 200)
        file.insert(10**9 + 1, b"needle")
        with file.stats.measure("scan") as window:
            result = file.scan(lambda k, v: v == b"needle", deterministic=False)
        assert [k for k, _ in result.records] == [10**9 + 1]
        assert window.by_kind["scan.reply"] == 1

    def test_deterministic_scan_detects_unavailable_bucket(self):
        file = LHStarFile(capacity=8)
        grow_file(file, 200)
        victim = file.bucket_count - 1
        file.network.fail(f"f.d{victim}")
        result = file.scan()
        assert not result.complete
        assert victim in result.missing


class TestLoadControl:
    def test_default_load_factor_near_70_percent(self):
        """The papers report ~70% storage load in ordinary operation."""
        file = LHStarFile(capacity=32)
        grow_file(file, 4000)
        assert 0.60 <= file.load_factor() <= 0.80

    def test_polling_high_threshold_loads_more(self):
        """The paper's stronger load control pushes load toward ~85%."""
        default = LHStarFile(capacity=16)
        controlled = LHStarFile(
            capacity=16, policy=SplitPolicy(mode="poll", threshold=0.88)
        )
        grow_file(default, 1200)
        grow_file(controlled, 1200)
        assert controlled.bucket_count < default.bucket_count
        assert controlled.load_factor() > default.load_factor()
        assert controlled.load_factor() >= 0.8

    def test_every_overflow_is_most_eager(self):
        eager = LHStarFile(capacity=16, policy=SplitPolicy(mode="every_overflow"))
        default = LHStarFile(capacity=16)
        grow_file(eager, 1200)
        grow_file(default, 1200)
        assert eager.bucket_count >= default.bucket_count
        assert eager.load_factor() <= default.load_factor()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SplitPolicy(mode="nonsense")
        with pytest.raises(ValueError):
            SplitPolicy(threshold=0.0)


class TestOracleHelpers:
    def test_census_and_totals_agree(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 150)
        census = file.census()
        assert sum(len(b) for b in census.values()) == len(keys) == file.total_records()

    def test_find_bucket_of(self):
        file = LHStarFile(capacity=8)
        keys = grow_file(file, 150)
        for key in keys[:20]:
            assert key in file.data_servers()[file.find_bucket_of(key)].bucket
