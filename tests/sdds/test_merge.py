"""Tests for bucket merges (file shrink) in plain LH*."""

import pytest

from repro.lh import FileState
from repro.sdds import LHStarFile, SplitPolicy
from repro.sim.rng import make_rng


def grow(file, count, seed=7):
    rng = make_rng(seed)
    keys = [int(k) for k in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, b"x" * 16)
    return keys


class TestRetreatMerge:
    def test_inverse_of_advance(self):
        state = FileState(n0=1)
        history = []
        for _ in range(25):
            history.append(state.as_tuple())
            state.advance_split()
        for _ in range(25):
            state.retreat_merge()
            assert state.as_tuple() == history.pop()

    def test_merge_pairs_match_split_pairs(self):
        state = FileState(n0=4)
        splits = [state.advance_split()[:2] for _ in range(13)]
        merges = [state.retreat_merge()[:2] for _ in range(13)]
        assert merges == list(reversed(splits))

    def test_cannot_shrink_below_initial(self):
        with pytest.raises(ValueError):
            FileState(n0=1).retreat_merge()

    def test_wrap_around_level(self):
        state = FileState(n0=1, n=0, i=3)
        source, target, level = state.retreat_merge()
        assert (source, target, level) == (3, 7, 2)
        assert state.as_tuple() == (3, 2)


class TestMergeProtocol:
    def test_merge_once_preserves_records(self):
        file = LHStarFile(capacity=8)
        keys = grow(file, 200)
        before = file.bucket_count
        source, target = file.coordinator.merge_once()
        assert file.bucket_count == before - 1
        assert target == before - 1
        assert f"f.d{target}" not in file.network.nodes
        assert file.total_records() == 200
        for key in keys[::9]:
            assert file.search(key).found

    def test_placement_invariant_after_merges(self):
        from repro.lh import addressing

        file = LHStarFile(capacity=8)
        grow(file, 200)
        for _ in range(5):
            file.coordinator.merge_once()
        for server in file.data_servers():
            for key in server.bucket:
                assert addressing.h(server.level, key) == server.number

    def test_shrink_to_initial_and_regrow(self):
        """Shrink an emptied file back to one bucket, then regrow.

        Records must be deleted first: merging an over-full file makes
        the coordinator's load control split right back (by design).
        """
        file = LHStarFile(capacity=8)
        keys = grow(file, 60)
        for key in keys[:55]:
            file.delete(key)
        survivors = keys[55:]
        while file.bucket_count > 1:
            file.coordinator.merge_once()
        assert file.total_records() == 5
        assert not file.coordinator.state.splits_done
        grow(file, 100, seed=8)
        assert file.total_records() == 105
        for key in survivors:
            assert file.search(key).found

    def test_stale_client_routed_and_corrected_after_shrink(self):
        file = LHStarFile(capacity=8)
        keys = grow(file, 200)
        client = file.client
        for key in keys:
            client.search(key)  # converge on the grown file
        for _ in range(8):
            file.coordinator.merge_once()
        # The image now points past the file; ops must still succeed
        # (coordinator routing) and the image must be pulled back.
        for key in keys[:40]:
            assert client.search(key).found
        state = file.coordinator.state
        assert client.image.bucket_count_estimate <= state.bucket_count

    def test_deterministic_scan_after_shrink(self):
        file = LHStarFile(capacity=8)
        keys = grow(file, 150)
        for _ in range(4):
            file.coordinator.merge_once()
        result = file.new_client().scan()
        assert result.complete
        assert sorted(k for k, _ in result.records) == sorted(keys)


class TestMergePolicy:
    def test_underflow_triggers_merges(self):
        file = LHStarFile(
            capacity=16,
            policy=SplitPolicy(threshold=0.58, merge_threshold=0.3),
        )
        keys = grow(file, 800)
        grown = file.bucket_count
        for key in keys[: int(len(keys) * 0.9)]:
            file.delete(key)
        assert file.bucket_count < grown
        remaining = [k for k in keys[int(len(keys) * 0.9):]]
        for key in remaining[::5]:
            assert file.search(key).found

    def test_merge_threshold_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            SplitPolicy(threshold=0.5, merge_threshold=0.6)
        with pytest.raises(ValueError, match="hysteresis"):
            SplitPolicy(merge_threshold=-0.1)

    def test_no_merges_by_default(self):
        file = LHStarFile(capacity=16)
        keys = grow(file, 400)
        grown = file.bucket_count
        for key in keys:
            file.delete(key)
        assert file.bucket_count == grown  # merge_threshold=0 disables
