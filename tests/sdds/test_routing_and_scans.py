"""Focused tests of routing fallbacks and scan variants."""

import pytest

from repro.sdds import LHStarFile
from repro.sim.network import Network, NodeUnavailable
from repro.sim.rng import make_rng


def grow(file, count, seed=7):
    rng = make_rng(seed)
    keys = [int(k) for k in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, b"x" * 16)
    return keys


class TestCoordinatorRouting:
    def test_route_delivers_and_corrects_image(self):
        file = LHStarFile(capacity=8)
        keys = grow(file, 150)
        client = file.client
        # Force the client through the routing path directly.
        op = {"key": keys[0], "client": client.node_id,
              "request": client._next_request()}
        client._route_via_coordinator("search", op)
        reply = client._results.pop(op["request"])
        assert reply["found"]
        state = file.coordinator.state
        assert (client.image.n, client.image.i) == state.as_tuple()

    def test_forwarding_bucket_down_falls_back_to_coordinator(self):
        """A2 forwarding that hits a dead bucket reroutes via the
        coordinator instead of losing the request (LH*g §2.8 rule)."""
        file = LHStarFile(capacity=8)
        keys = grow(file, 300)
        state = file.coordinator.state
        # Find a key whose fresh-image route forwards through a bucket
        # we can kill without killing the final destination.
        fresh = file.new_client()
        for key in keys:
            start = fresh.image.address(key)
            true = state.address(key)
            if start != true:
                break
        else:
            pytest.skip("no forwarding case found")
        file.network.fail(f"f.d{true}")
        # Plain LH* client surfaces NodeUnavailable only if the *final*
        # bucket is dead — which it is here; check the surface.
        with pytest.raises(NodeUnavailable):
            # routed via coordinator -> coordinator delivers -> dead
            fresh.search(key)

    def test_route_of_mutations(self):
        file = LHStarFile(capacity=8)
        grow(file, 100)
        client = file.client
        client._route_via_coordinator(
            "insert", {"key": 777, "value": b"routed", "client": client.node_id}
        )
        assert file.search(777).value == b"routed"


class TestScanVariants:
    def test_multicast_less_network_scan_costs_per_bucket(self):
        network = Network(multicast_available=False)
        file = LHStarFile(capacity=8, network=network)
        grow(file, 150)
        for key in range(50):
            file.search(key)
        with file.stats.measure("scan") as window:
            result = file.scan()
        assert result.complete
        # Without a multicast fabric every request is unicast: at least
        # one request per bucket plus one reply per bucket.
        assert window.messages >= 2 * file.bucket_count

    def test_multicast_fabric_scan_cheaper(self):
        with_fabric = LHStarFile(capacity=8, network=Network())
        without = LHStarFile(
            capacity=8, network=Network(multicast_available=False)
        )
        grow(with_fabric, 150)
        grow(without, 150)
        with with_fabric.stats.measure("scan") as w1:
            with_fabric.scan()
        with without.stats.measure("scan") as w2:
            without.scan()
        assert w1.messages < w2.messages

    def test_probabilistic_scan_cannot_prove_completeness(self):
        file = LHStarFile(capacity=8)
        grow(file, 150)
        file.network.fail(f"f.d{file.bucket_count - 1}")
        result = file.scan(deterministic=False)
        # It reports complete=True by construction — the point is that
        # it *cannot* detect the dead bucket, unlike deterministic mode.
        assert result.complete
        deterministic = file.scan(deterministic=True)
        assert not deterministic.complete

    def test_scan_empty_file(self):
        file = LHStarFile(capacity=8)
        result = file.scan()
        assert result.complete
        assert result.records == []

    def test_scan_replies_carry_levels_for_termination(self):
        file = LHStarFile(capacity=8)
        grow(file, 200)
        result = file.scan()
        assert result.expected_buckets == file.bucket_count


class TestKeyValidation:
    @pytest.mark.parametrize("bad", [-1, 1.5, "key", None, True])
    def test_bad_keys_rejected_client_side(self, bad):
        file = LHStarFile(capacity=8)
        with pytest.raises(ValueError, match="non-negative integers"):
            file.insert(bad, b"v")
        with pytest.raises(ValueError):
            file.search(bad)
        with pytest.raises(ValueError):
            file.delete(bad)

    def test_zero_and_huge_keys_fine(self):
        file = LHStarFile(capacity=8)
        file.insert(0, b"zero")
        file.insert(2**62, b"huge")
        assert file.search(0).value == b"zero"
        assert file.search(2**62).value == b"huge"


class TestStatusAndIntrospection:
    def test_status_handler(self):
        file = LHStarFile(capacity=8)
        grow(file, 50)
        reply = file.client.call("f.d0", "status")
        assert reply["bucket"] == 0
        assert reply["records"] == len(file.data_servers()[0].bucket)

    def test_state_handler(self):
        file = LHStarFile(capacity=8)
        grow(file, 120)
        reply = file.client.call("f.coord", "state")
        assert (reply["n"], reply["i"]) == file.coordinator.state.as_tuple()

    def test_forward_counters(self):
        file = LHStarFile(capacity=8)
        keys = grow(file, 300)
        fresh = file.new_client()
        for key in keys[:100]:
            fresh.search(key)
        assert sum(s.forwards for s in file.data_servers()) > 0


class TestScanStaleImage:
    """Deterministic scans against images the file has moved away from.

    The completeness proof and the fan-out both derive the extent
    M = n + 2^i·N from one place (``addressing.file_extent``); these
    pin the behaviours that proof protects."""

    def test_scan_with_stale_oversized_image_after_shrink(self):
        file = LHStarFile(capacity=8)
        keys = grow(file, 200)
        client = file.client
        for key in keys:
            client.search(key)  # converge the image on the grown file
        for _ in range(8):
            file.coordinator.merge_once()
        # The image now points past the end of the shrunken file: the
        # fan-out hits unknown nodes, yet every live bucket replies and
        # the derived extent must prove completeness from those alone.
        assert client.image.bucket_count_estimate > file.bucket_count
        result = client.scan()
        assert result.complete
        assert result.expected_buckets == file.bucket_count
        assert sorted(k for k, _ in result.records) == sorted(keys)
        assert len(result.records) == len(keys)  # no duplicates

    def test_scan_expected_count_matches_exact_image(self):
        from repro.lh import addressing

        file = LHStarFile(capacity=8)
        keys = grow(file, 150)
        result = file.new_client().scan()
        assert result.complete
        state = file.coordinator.state
        assert result.expected_buckets == file.bucket_count
        assert file.bucket_count == addressing.file_extent(
            state.n, state.i, state.n0
        )
        assert sorted(k for k, _ in result.records) == sorted(keys)
