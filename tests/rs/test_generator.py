"""Tests for the LH*RS generator construction."""

import pytest

from repro.gf import GF, GFMatrix
from repro.rs.generator import generator_matrix, parity_matrix


@pytest.mark.parametrize("width", [4, 8, 16])
@pytest.mark.parametrize("m,k", [(1, 1), (2, 1), (4, 2), (4, 3), (3, 3)])
def test_cauchy_parity_has_all_ones_first_row_and_column(width, m, k):
    p = parity_matrix(GF(width), m, k, "cauchy")
    assert p.row(0) == [1] * m
    assert p.col(0) == [1] * k


@pytest.mark.parametrize("m,k", [(2, 2), (3, 2), (4, 3), (2, 4)])
@pytest.mark.parametrize("kind", ["cauchy", "vandermonde"])
def test_every_square_submatrix_nonsingular(m, k, kind):
    """The defining MDS property: any ≤ k erasures are recoverable."""
    p = parity_matrix(GF(8), m, k, kind)
    assert p.all_square_submatrices_nonsingular()


@pytest.mark.parametrize("kind", ["cauchy", "vandermonde"])
def test_generator_rows_any_m_independent(kind):
    from itertools import combinations

    m, k = 4, 3
    g = generator_matrix(GF(8), m, k, kind)
    assert (g.rows, g.cols) == (m + k, m)
    for rows in combinations(range(m + k), m):
        assert g.take_rows(rows).is_nonsingular()


def test_generator_top_block_is_identity():
    g = generator_matrix(GF(8), 4, 2)
    assert g.take_rows(range(4)) == GFMatrix.identity(GF(8), 4)


def test_parity_matrix_cached_per_parameters():
    f = GF(8)
    assert parity_matrix(f, 4, 2) is parity_matrix(f, 4, 2)
    assert parity_matrix(f, 4, 2) is not parity_matrix(f, 4, 3)


def test_field_capacity_limit():
    with pytest.raises(ValueError, match="wider field"):
        parity_matrix(GF(4), 14, 3)
    # Exactly at capacity is fine.
    parity_matrix(GF(4), 13, 3)


def test_invalid_parameters():
    f = GF(8)
    with pytest.raises(ValueError):
        parity_matrix(f, 0, 1)
    with pytest.raises(ValueError):
        parity_matrix(f, 4, -1)
    with pytest.raises(ValueError):
        parity_matrix(f, 4, 1, "reed-muller")


def test_vandermonde_generally_lacks_ones_structure():
    """The ablation arm: raw systematic Vandermonde parity is MDS but its
    rows are not normalized, so Δ-updates cannot use the XOR fast path."""
    p = parity_matrix(GF(8), 4, 3, "vandermonde")
    assert p.all_square_submatrices_nonsingular()
    rows_all_ones = [p.row(i) == [1] * 4 for i in range(3)]
    assert not all(rows_all_ones)
