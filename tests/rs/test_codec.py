"""Unit and property tests for the (m+k, m) RS codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF
from repro.rs import DecodeError, RSCodec


def make_group(codec, payloads):
    """Full share map {position: payload} for a data payload list."""
    parity = codec.encode(payloads)
    shares = {j: p for j, p in enumerate(payloads) if p}
    shares.update({codec.m + i: p for i, p in enumerate(parity)})
    return shares


class TestEncode:
    def test_single_parity_is_xor(self):
        codec = RSCodec(m=4, k=1)
        payloads = [b"abcd", b"efgh", b"ijkl", b"mnop"]
        (parity,) = codec.encode(payloads)
        expected = bytes(a ^ b ^ c ^ d for a, b, c, d in zip(*payloads))
        assert parity == expected

    def test_first_parity_is_xor_even_with_k3(self):
        codec = RSCodec(m=3, k=3)
        payloads = [b"xy", b"zw", b"uv"]
        parity = codec.encode(payloads)
        expected = bytes(a ^ b ^ c for a, b, c in zip(*payloads))
        assert parity[0] == expected

    def test_lone_record_copied_to_all_parities(self):
        """All-ones first column: a single record at position 0 appears
        verbatim in every parity payload."""
        codec = RSCodec(m=4, k=3)
        parity = codec.encode([b"hello world"])
        assert all(p == b"hello world" for p in parity)

    def test_empty_slots_ignored(self):
        codec = RSCodec(m=4, k=2)
        sparse = codec.encode([b"aa", None, b"bb", None])
        dense = codec.encode([b"aa", b"", b"bb", b""])
        assert sparse == dense

    def test_variable_lengths_padded(self):
        codec = RSCodec(m=2, k=1)
        (parity,) = codec.encode([b"abcdef", b"x"])
        assert len(parity) == 6
        assert parity[0] == ord("a") ^ ord("x")
        assert parity[1:] == b"bcdef"

    def test_k0_produces_nothing(self):
        assert RSCodec(m=4, k=0).encode([b"a"] * 4) == []

    def test_too_many_payloads_rejected(self):
        with pytest.raises(ValueError):
            RSCodec(m=2, k=1).encode([b"a", b"b", b"c"])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RSCodec(m=0, k=1)
        with pytest.raises(ValueError):
            RSCodec(m=2, k=-1)


class TestRecover:
    @pytest.mark.parametrize("width", [8, 16])
    @pytest.mark.parametrize("lost", [[0], [3], [1, 2], [0, 4], [4, 5], [0, 1]])
    def test_recover_patterns_m4_k2(self, width, lost):
        codec = RSCodec(m=4, k=2, field=GF(width))
        payloads = [b"alpha!", b"bravo!", b"charly", b"delta!"]
        shares = make_group(codec, payloads)
        survivors = {p: v for p, v in shares.items() if p not in lost}
        recovered = codec.recover(survivors, lost)
        for pos in lost:
            assert recovered[pos] == shares[pos]

    def test_insufficient_survivors(self):
        codec = RSCodec(m=3, k=1)
        shares = make_group(codec, [b"aa", b"bb", b"cc"])
        survivors = {0: shares[0], 1: shares[1]}  # only 2 of required 3
        with pytest.raises(DecodeError):
            codec.recover(survivors, [2, 3])

    def test_no_survivors(self):
        with pytest.raises(DecodeError):
            RSCodec(m=2, k=1).recover({}, [0])

    def test_overlapping_lost_and_available_rejected(self):
        codec = RSCodec(m=2, k=1)
        shares = make_group(codec, [b"aa", b"bb"])
        with pytest.raises(ValueError):
            codec.recover(shares, [0])

    def test_payload_lengths_strip_padding(self):
        codec = RSCodec(m=2, k=1)
        payloads = [b"abcdef", b"x"]
        shares = make_group(codec, payloads)
        del shares[1]
        out = codec.recover(shares, [1], payload_lengths={1: 1})
        assert out[1] == b"x"

    def test_recover_defaults_to_all_missing(self):
        codec = RSCodec(m=2, k=2)
        payloads = [b"aa", b"bb"]
        shares = make_group(codec, payloads)
        survivors = {0: shares[0], 2: shares[2]}
        out = codec.recover(survivors)
        assert out[1] == b"bb"
        assert out[3] == shares[3]

    def test_xor_fast_path_matches_general_decode(self):
        codec = RSCodec(m=4, k=2)
        payloads = [b"p0p0", b"p1p1", b"p2p2", b"p3p3"]
        shares = make_group(codec, payloads)
        # Fast path: one data loss, parity 0 (position m) present.
        fast = dict(shares)
        del fast[2]
        assert codec.recover(fast, [2])[2] == b"p2p2"
        # General path: same loss but parity 0 also gone.
        general = dict(shares)
        del general[2], general[4]
        assert codec.recover(general, [2])[2] == b"p2p2"


class TestDelta:
    def test_delta_of_insert_is_payload(self):
        assert RSCodec.delta(b"", b"new") == b"new"

    def test_delta_of_delete_is_payload(self):
        assert RSCodec.delta(b"old", b"") == b"old"

    def test_fold_insert_then_update_then_delete(self):
        codec = RSCodec(m=4, k=2)
        group = [b"r0", b"r1!", None, b"r3"]
        accs = [codec.new_parity_accumulator() for _ in range(2)]

        def fold_all(pos, old, new):
            delta = codec.delta(old, new)
            for i in range(2):
                accs[i] = codec.fold(accs[i], i, pos, delta)

        for pos, payload in enumerate(group):
            if payload:
                fold_all(pos, b"", payload)
        fold_all(1, b"r1!", b"r1-changed")
        group[1] = b"r1-changed"
        fold_all(3, b"r3", b"")
        group[3] = None

        expected = codec.encode(group)
        longest = max(len(p) for p in group if p)
        for i in range(2):
            assert codec.parity_bytes(accs[i], longest) == expected[i]

    def test_fold_grows_accumulator(self):
        codec = RSCodec(m=2, k=1)
        acc = codec.new_parity_accumulator()
        acc = codec.fold(acc, 0, 0, b"ab")
        assert len(acc) == 2
        acc = codec.fold(acc, 0, 1, b"wxyz")
        assert len(acc) == 4
        assert codec.parity_bytes(acc, 4) == codec.encode([b"ab", b"wxyz"])[0]

    def test_parity_bytes_pads_short_accumulator(self):
        codec = RSCodec(m=2, k=1)
        acc = codec.new_parity_accumulator(2)
        assert codec.parity_bytes(acc, 5) == b"\0" * 5

    def test_coefficient_bounds(self):
        codec = RSCodec(m=2, k=1)
        with pytest.raises(IndexError):
            codec.coefficient(1, 0)
        with pytest.raises(IndexError):
            codec.coefficient(0, 2)
        assert codec.coefficient(0, 0) == 1


# ----------------------------------------------------------------------
# The MDS invariant, property-tested (DESIGN.md invariant 1)
# ----------------------------------------------------------------------
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_property_any_k_losses_recoverable(data):
    width = data.draw(st.sampled_from([8, 16]))
    m = data.draw(st.integers(min_value=1, max_value=5))
    k = data.draw(st.integers(min_value=1, max_value=3))
    codec = RSCodec(m=m, k=k, field=GF(width))
    payloads = [
        data.draw(st.binary(min_size=1, max_size=24)) for _ in range(m)
    ]
    shares = make_group(codec, payloads)
    n_lost = data.draw(st.integers(min_value=1, max_value=k))
    lost = data.draw(
        st.lists(
            st.sampled_from(sorted(shares)),
            min_size=n_lost,
            max_size=n_lost,
            unique=True,
        )
    )
    survivors = {p: v for p, v in shares.items() if p not in lost}
    lengths = {j: len(payloads[j]) for j in range(m)}
    recovered = codec.recover(survivors, lost, payload_lengths=lengths)
    for pos in lost:
        if pos < m:
            assert recovered[pos] == payloads[pos]
        else:
            assert recovered[pos] == shares[pos]


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_property_incremental_equals_full_encode(data):
    """Invariant 3 at codec level: any interleaving of Δ-folds equals a
    from-scratch encode of the final group state."""
    m = data.draw(st.integers(min_value=1, max_value=4))
    k = data.draw(st.integers(min_value=1, max_value=3))
    codec = RSCodec(m=m, k=k)
    state: list[bytes] = [b""] * m
    accs = [codec.new_parity_accumulator() for _ in range(k)]
    for _ in range(data.draw(st.integers(min_value=1, max_value=10))):
        pos = data.draw(st.integers(min_value=0, max_value=m - 1))
        new = data.draw(st.binary(max_size=16))
        delta = codec.delta(state[pos], new)
        for i in range(k):
            accs[i] = codec.fold(accs[i], i, pos, delta)
        state[pos] = new
    expected = codec.encode([p or None for p in state])
    longest = max((len(p) for p in state if p), default=0)
    for i in range(k):
        assert codec.parity_bytes(accs[i], longest) == expected[i]
