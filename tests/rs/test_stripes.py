"""Property tests: stacked 2D stripe kernels == the scalar oracle.

The batch kernels (``encode_stripes``/``decode_stripes``/
``RSCodec.encode_batch``/``RSCodec.recover_stripes``) must be
*bit-exact* with the record-at-a-time paths they replace, across random
field widths, group shapes, erasure patterns and ragged payload lengths.
The scalar implementations stay in the tree as the oracle; these tests
are the contract that keeps the two in lockstep.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF
from repro.gf.signatures import signature_matrix, signature_vector
from repro.rs import RSCodec, decode_stripes, encode_stripes, encode_symbols

WIDTHS = [4, 8, 16]


def group_strategy(max_m=5, max_payload=40):
    """(width, m, k, payload list) with ragged lengths and empty slots."""
    return st.tuples(
        st.sampled_from(WIDTHS),
        st.integers(min_value=1, max_value=max_m),
        st.integers(min_value=0, max_value=3),
        st.data(),
    )


def draw_payloads(data, m, max_payload=40):
    return data.draw(
        st.lists(
            st.one_of(st.none(), st.binary(max_size=max_payload)),
            min_size=1,
            max_size=m,
        )
    )


class TestEncodeStripes:
    @given(args=group_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_encode_symbols_per_group(self, args):
        width, m, k, data = args
        field = GF(width)
        codec = RSCodec(m, k, field)
        ngroups = data.draw(st.integers(min_value=1, max_value=4))
        groups = [draw_payloads(data, m) for _ in range(ngroups)]

        batched = codec.encode_batch(groups)
        for group, parity in zip(groups, batched):
            assert parity == codec.encode(group)

    @given(args=group_strategy())
    @settings(max_examples=40, deadline=None)
    def test_encode_stripes_tensor_matches_oracle(self, args):
        width, m, k, data = args
        field = GF(width)
        if k == 0:
            k = 1
        codec = RSCodec(m, k, field)
        ngroups = data.draw(st.integers(min_value=1, max_value=3))
        groups = [draw_payloads(data, m) for _ in range(ngroups)]
        length = max(
            (codec.stripe_symbol_length(g) for g in groups), default=0
        )

        stacked = codec.pack_stripes(groups, length)
        parity = encode_stripes(field, codec.parity, stacked)
        assert parity.shape == (k, ngroups, length)
        for r, group in enumerate(groups):
            oracle = encode_symbols(field, codec.parity, group, length)
            for i in range(k):
                assert (parity[i, r] == oracle[i]).all()


class TestDecodeStripes:
    @given(args=group_strategy(max_m=4, max_payload=24))
    @settings(max_examples=40, deadline=None)
    def test_recover_stripes_matches_scalar_recover(self, args):
        width, m, k, data = args
        if k == 0:
            k = 1
        field = GF(width)
        codec = RSCodec(m, k, field)
        ngroups = data.draw(st.integers(min_value=1, max_value=3))
        groups = [
            data.draw(
                st.lists(
                    st.binary(min_size=1, max_size=24),
                    min_size=m, max_size=m,
                )
            )
            for _ in range(ngroups)
        ]
        nlost = data.draw(st.integers(min_value=1, max_value=k))
        lost = sorted(
            data.draw(
                st.permutations(list(range(m + k)))
            )[:nlost]
        )

        # Build each group's full codeword, then erase `lost`.
        length = max(codec.stripe_symbol_length(g) for g in groups)
        full = []
        for group in groups:
            parity = codec.encode(group)
            full.append(list(group) + parity)
        survivors = [p for p in range(m + k) if p not in lost]

        stacked = {
            p: field.stack_payloads([cw[p] for cw in full], length)
            for p in survivors
        }
        batched = codec.recover_stripes(stacked, lost)

        for r, codeword in enumerate(full):
            shares = {p: codeword[p] for p in survivors}
            oracle = codec.recover(shares, lost)
            for p in lost:
                want = field.symbols_from_bytes(oracle[p], length)
                assert (batched[p][r] == want).all()

    def test_all_small_erasure_patterns_bit_exact(self):
        """Exhaustive ≤k erasure sweep at a few fixed shapes."""
        for width, (m, k) in itertools.product([8, 16], [(4, 2), (3, 3), (1, 1)]):
            field = GF(width)
            codec = RSCodec(m, k, field)
            groups = [
                [bytes([(i * 7 + j + g) % 256 for j in range(11 + i)])
                 for i in range(m)]
                for g in range(3)
            ]
            length = max(codec.stripe_symbol_length(g) for g in groups)
            full = [list(g) + codec.encode(g) for g in groups]
            for nlost in range(1, k + 1):
                for lost in itertools.combinations(range(m + k), nlost):
                    survivors = [p for p in range(m + k) if p not in lost]
                    stacked = {
                        p: field.stack_payloads([cw[p] for cw in full], length)
                        for p in survivors
                    }
                    batched = codec.recover_stripes(stacked, list(lost))
                    for r, codeword in enumerate(full):
                        oracle = codec.recover(
                            {p: codeword[p] for p in survivors}, list(lost)
                        )
                        for p in lost:
                            want = field.symbols_from_bytes(oracle[p], length)
                            assert (batched[p][r] == want).all()

    def test_xor_fast_path_single_data_loss(self):
        """Losing one data record with parity 0 alive rides plain XOR."""
        field = GF(8)
        codec = RSCodec(4, 1, field)
        groups = [[bytes([g * 16 + i] * 8) for i in range(4)] for g in range(5)]
        full = [list(g) + codec.encode(g) for g in groups]
        length = codec.stripe_symbol_length(groups[0])
        stacked = {
            p: field.stack_payloads([cw[p] for cw in full], length)
            for p in range(5) if p != 2
        }
        out = decode_stripes(field, 4, 1, stacked, [2])
        for r, cw in enumerate(full):
            assert field.bytes_from_symbols(out[2][r], 8) == cw[2]


class TestSignatureMatrix:
    @given(
        width=st.sampled_from([8, 16]),
        rows=st.lists(st.binary(max_size=24), min_size=1, max_size=5),
        count=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_signature_vector_per_row(self, width, rows, count):
        field = GF(width)
        length = max(
            (field.symbol_length_for_bytes(len(r)) for r in rows), default=0
        )
        matrix = field.stack_payloads(rows, length)
        batched = signature_matrix(field, matrix, count)
        for row, payload in zip(batched, rows):
            # Padding to the common width must not change the signature.
            assert row == signature_vector(field, payload, count, length=length)
            assert row == signature_vector(field, payload, count)


class TestWideFieldStripes:
    """GF(2^16)-specific batch≡scalar coverage.

    The wide field has no cached mul rows — every kernel rides the
    zero-safe single-gather layout — and its 2-byte symbols make odd
    byte lengths the ragged case (a trailing zero pad byte).  These
    tests pin both hazards through the full encode/recover pipeline.
    """

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_encode_ragged_odd_lengths_matches_oracle(self, data):
        field = GF(16)
        m = data.draw(st.integers(min_value=1, max_value=4))
        k = data.draw(st.integers(min_value=1, max_value=3))
        codec = RSCodec(m, k, field)
        # Odd byte lengths force the 2-byte-symbol pad path; mix them
        # with even and empty slots so stripes are genuinely ragged.
        def slot():
            odd = 2 * data.draw(st.integers(min_value=0, max_value=10)) + 1
            n = data.draw(st.sampled_from([0, odd, odd + 1]))
            return data.draw(st.binary(min_size=n, max_size=n))

        groups = [
            [slot() for _ in range(m)]
            for _ in range(data.draw(st.integers(min_value=1, max_value=3)))
        ]
        batched = codec.encode_batch(groups)
        for group, parity in zip(groups, batched):
            assert parity == codec.encode(group)

    def test_all_zero_column_contributes_nothing_gf16(self):
        """A group position holding only zero bytes (or nothing) leaves
        the parity equal to the encoding without it."""
        field = GF(16)
        codec = RSCodec(4, 2, field)
        payloads = [b"alpha-record!", b"\x00" * 13, None, b"delta-record."]
        sparse = [payloads[0], None, None, payloads[3]]
        assert codec.encode(payloads) == codec.encode(sparse)

        length = codec.stripe_symbol_length(payloads)
        stacked = codec.pack_stripes([payloads, sparse], length)
        parity = encode_stripes(field, codec.parity, stacked)
        assert (parity[:, 0, :] == parity[:, 1, :]).all()

    def test_recover_with_all_zero_surviving_column_gf16(self):
        """Decode must stay exact when a survivor's stripe is all zeros
        — the case the log-table sentinel exists for."""
        field = GF(16)
        codec = RSCodec(3, 2, field)
        groups = [
            [b"one-one-one", b"\x00" * 11, b"three3three"],
            [b"\x00" * 7, b"\x00" * 7, b"\x00" * 7],
        ]
        length = max(codec.stripe_symbol_length(g) for g in groups)
        full = [list(g) + codec.encode(g) for g in groups]
        for lost in ([0, 2], [1, 3], [2, 4]):
            survivors = [p for p in range(5) if p not in lost]
            stacked = {
                p: field.stack_payloads([cw[p] for cw in full], length)
                for p in survivors
            }
            batched = codec.recover_stripes(stacked, lost)
            for r, codeword in enumerate(full):
                oracle = codec.recover(
                    {p: codeword[p] for p in survivors}, lost
                )
                for p in lost:
                    want = field.symbols_from_bytes(oracle[p], length)
                    assert (batched[p][r] == want).all()
                    # And the oracle itself round-trips the data.
                    if p < 3:
                        assert oracle[p][: len(codeword[p])] == codeword[p]


class TestValidation:
    def test_encode_stripes_rejects_wrong_rank(self):
        field = GF(8)
        codec = RSCodec(2, 1, field)
        with pytest.raises(ValueError):
            encode_stripes(field, codec.parity, np.zeros((2, 3), dtype=np.uint8))

    def test_encode_stripes_rejects_too_many_positions(self):
        field = GF(8)
        codec = RSCodec(2, 1, field)
        with pytest.raises(ValueError):
            encode_stripes(
                field, codec.parity, np.zeros((3, 1, 4), dtype=np.uint8)
            )

    def test_decode_stripes_rejects_ragged_shares(self):
        field = GF(8)
        with pytest.raises(ValueError):
            decode_stripes(
                field, 2, 1,
                {
                    0: np.zeros((2, 4), dtype=np.uint8),
                    1: np.zeros((2, 5), dtype=np.uint8),
                },
                [2],
            )
