"""Focused tests of decoder internals and unusual configurations."""

import numpy as np
import pytest

from repro.gf import GF
from repro.rs import DecodeError, RSCodec, decode_symbols
from repro.rs.decoder import select_rows
from repro.rs.generator import parity_matrix


class TestSelectRows:
    def test_prefers_data_rows(self):
        assert select_rows({0, 1, 4, 5}, 4) == (0, 1, 4, 5)
        assert select_rows({0, 1, 2, 3, 4}, 4) == (0, 1, 2, 3)
        assert select_rows({1, 3, 4, 6}, 4) == (1, 3, 4, 6)

    def test_insufficient(self):
        with pytest.raises(DecodeError, match="survive"):
            select_rows({0, 4}, 4)


class TestDecodeSymbols:
    def setup_method(self):
        self.field = GF(8)
        self.m, self.k = 3, 2
        rng = np.random.default_rng(5)
        self.data = [rng.integers(0, 256, 16, dtype=np.uint8)
                     for _ in range(self.m)]
        p = parity_matrix(self.field, self.m, self.k)
        self.shares = {j: d.copy() for j, d in enumerate(self.data)}
        for i in range(self.k):
            acc = np.zeros(16, dtype=np.uint8)
            for j in range(self.m):
                acc ^= self.field.mul_symbols(self.data[j], p[i, j])
            self.shares[self.m + i] = acc

    def test_decode_from_parity_only_plus_one(self):
        survivors = {0: self.shares[0], 3: self.shares[3], 4: self.shares[4]}
        out = decode_symbols(self.field, self.m, self.k, survivors, [1, 2])
        assert (out[1] == self.data[1]).all()
        assert (out[2] == self.data[2]).all()

    def test_decode_nothing_lost(self):
        assert decode_symbols(self.field, self.m, self.k, self.shares, []) == {}

    def test_position_out_of_range(self):
        bad = dict(self.shares)
        bad[9] = self.shares[0]
        with pytest.raises(ValueError, match="out of range"):
            decode_symbols(self.field, self.m, self.k, bad)

    def test_overlapping_lost_and_available(self):
        with pytest.raises(ValueError, match="both lost and available"):
            decode_symbols(self.field, self.m, self.k, self.shares, [0])

    def test_mismatched_lengths_rejected(self):
        bad = {p: v.copy() for p, v in self.shares.items()}
        bad[0] = bad[0][:8]
        del bad[1]
        with pytest.raises(ValueError, match="same symbol length"):
            decode_symbols(self.field, self.m, self.k, bad, [1])

    def test_lost_parity_only_reencodes(self):
        survivors = {j: self.shares[j] for j in range(self.m)}
        out = decode_symbols(self.field, self.m, self.k, survivors, [3, 4])
        assert (out[3] == self.shares[3]).all()
        assert (out[4] == self.shares[4]).all()

    def test_lost_parity_with_missing_data(self):
        survivors = {0: self.shares[0], 1: self.shares[1], 4: self.shares[4]}
        out = decode_symbols(self.field, self.m, self.k, survivors, [3])
        assert (out[3] == self.shares[3]).all()


class TestUnusualConfigurations:
    def test_gf4_codec_roundtrip(self):
        """GF(2^4): two symbols per byte — exercises nibble packing."""
        codec = RSCodec(m=3, k=2, field=GF(4))
        payloads = [b"nibble-packed!", b"odd", b"payloads here"]
        parity = codec.encode(payloads)
        shares = {j: p for j, p in enumerate(payloads)}
        shares.update({3 + i: p for i, p in enumerate(parity)})
        survivors = {p: v for p, v in shares.items() if p not in (0, 2)}
        out = codec.recover(
            survivors, [0, 2],
            payload_lengths={0: len(payloads[0]), 2: len(payloads[2])},
        )
        assert out[0] == payloads[0]
        assert out[2] == payloads[2]

    def test_m1_groups(self):
        """m=1: every record alone in its group; parity is a copy."""
        codec = RSCodec(m=1, k=2)
        parity = codec.encode([b"solo"])
        assert parity == [b"solo", b"solo"]
        out = codec.recover({1: b"solo"}, [0])
        assert out[0] == b"solo"

    def test_wide_group_gf8(self):
        codec = RSCodec(m=12, k=4)
        payloads = [bytes([i]) * 8 for i in range(12)]
        shares = {j: p for j, p in enumerate(payloads)}
        shares.update({12 + i: p for i, p in enumerate(codec.encode(payloads))})
        lost = [0, 5, 11, 13]
        survivors = {p: v for p, v in shares.items() if p not in lost}
        out = codec.recover(survivors, lost)
        for pos in lost:
            assert out[pos] == shares[pos]

    def test_decode_matrix_cache_shared(self):
        from repro.rs import decoder

        decoder._decode_matrix.cache_clear()
        codec = RSCodec(m=4, k=2)
        payloads = [b"abcd"] * 4
        shares = {j: p for j, p in enumerate(payloads)}
        shares.update({4 + i: p for i, p in enumerate(codec.encode(payloads))})
        survivors = {p: v for p, v in shares.items() if p not in (1, 2)}
        codec.recover(survivors, [1, 2])
        misses_first = decoder._decode_matrix.cache_info().misses
        codec.recover(survivors, [1, 2])  # same failure pattern
        assert decoder._decode_matrix.cache_info().misses == misses_first
