"""Tests for FileState, ClientImage and Bucket."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lh import Bucket, ClientImage, FileState


class TestFileState:
    def test_initial(self):
        fs = FileState(n0=4)
        assert fs.bucket_count == 4
        assert fs.as_tuple() == (0, 0)

    def test_split_sequence_n0_1(self):
        """The deterministic LH split order: 0; 0,1; 0,1,2,3; ..."""
        fs = FileState(n0=1)
        order = [fs.advance_split()[0] for _ in range(7)]
        assert order == [0, 0, 1, 0, 1, 2, 3]

    def test_split_targets_and_levels(self):
        fs = FileState(n0=1)
        src, tgt, lvl = fs.advance_split()
        assert (src, tgt, lvl) == (0, 1, 1)
        src, tgt, lvl = fs.advance_split()
        assert (src, tgt, lvl) == (0, 2, 2)
        src, tgt, lvl = fs.advance_split()
        assert (src, tgt, lvl) == (1, 3, 2)

    @given(n0=st.integers(min_value=1, max_value=8),
           splits=st.integers(min_value=0, max_value=100))
    def test_bucket_count_grows_by_one_per_split(self, n0, splits):
        fs = FileState(n0=n0)
        for expected in range(n0, n0 + splits):
            assert fs.bucket_count == expected
            fs.advance_split()
        assert fs.bucket_count == n0 + splits

    def test_next_split_does_not_mutate(self):
        fs = FileState(n0=2)
        before = fs.as_tuple()
        fs.next_split()
        assert fs.as_tuple() == before

    def test_copy_is_independent(self):
        fs = FileState(n0=1)
        cp = fs.copy()
        fs.advance_split()
        assert cp.as_tuple() == (0, 0)

    def test_invalid_n0(self):
        with pytest.raises(ValueError):
            FileState(n0=0)

    def test_address_delegates_to_a1(self):
        fs = FileState(n0=1, n=1, i=1)
        assert fs.address(4) == 0
        assert fs.address(6) == 2


class TestClientImage:
    def test_fresh_image(self):
        img = ClientImage(n0=4)
        assert img.bucket_count_estimate == 4
        assert img.address(13) == 1

    def test_adjust_counts(self):
        img = ClientImage(n0=1)
        assert img.adjust(3, 5)
        assert img.adjustments == 1
        assert not img.adjust(1, 0)
        assert img.adjustments == 1

    def test_reset(self):
        img = ClientImage(n0=1, n=3, i=4, adjustments=7)
        img.reset()
        assert (img.n, img.i, img.adjustments) == (0, 0, 0)


class TestBucket:
    def test_put_get_delete(self):
        b = Bucket(number=0, level=0, capacity=4)
        assert b.put(1, "a")
        assert not b.put(1, "b")
        assert b.get(1) == "b"
        assert 1 in b
        assert b.delete(1) == "b"
        assert 1 not in b
        with pytest.raises(KeyError):
            b.get(1)
        with pytest.raises(KeyError):
            b.delete(1)

    def test_overflow_flag_is_soft(self):
        b = Bucket(number=0, level=0, capacity=2)
        b.put(1, "a")
        b.put(2, "b")
        assert not b.overflowing
        b.put(3, "c")
        assert b.overflowing
        assert len(b) == 3

    def test_load_factor(self):
        b = Bucket(number=0, level=0, capacity=4)
        b.put(1, "a")
        b.put(2, "b")
        assert b.load_factor == 0.5

    def test_iteration_order_is_insertion(self):
        b = Bucket(number=0, level=0, capacity=10)
        for key in (5, 3, 9):
            b.put(key, None)
        assert list(b) == [5, 3, 9]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Bucket(number=0, level=0, capacity=0)
