"""Tests for the LH* addressing algorithms A1/A2/A3.

The central published guarantees are pinned here as properties:
* A1+A2 deliver any key to its correct bucket in at most two forwarding
  hops, from *any* stale-but-valid client image;
* A3 makes the same addressing error impossible twice;
* a fresh client converges after O(log M) IAMs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lh import (
    ClientImage,
    FileState,
    adjust_image,
    bucket_level,
    h,
    lh_address,
    server_action,
    split_records,
)
from repro.lh.addressing import max_bucket


class TestHashFamily:
    def test_h_basic(self):
        assert h(0, 17) == 0
        assert h(3, 17) == 1
        assert h(3, 17, n0=3) == 17 % 24

    def test_h_nested_refinement(self):
        """h_{l+1} refines h_l: equal h_{l+1} implies equal h_l."""
        for key in range(200):
            for level in range(4):
                a = h(level + 1, key)
                assert a % ((1 << level)) == h(level, key)

    def test_h_validation(self):
        with pytest.raises(ValueError):
            h(-1, 5)
        with pytest.raises(ValueError):
            h(0, 5, n0=0)


def valid_states(max_level=8, n0s=(1, 2, 3, 4)):
    """Strategy producing valid (n0, n, i) file states."""
    return st.builds(
        lambda n0, i, frac: (n0, int(frac * ((1 << i) * n0 - 1)) if i or n0 > 1 else 0, i),
        st.sampled_from(n0s),
        st.integers(min_value=0, max_value=max_level),
        st.floats(min_value=0, max_value=1, exclude_max=True),
    )


class TestA1:
    @given(state=valid_states(), key=st.integers(min_value=0, max_value=10**9))
    def test_address_in_range(self, state, key):
        n0, n, i = state
        a = lh_address(key, n, i, n0)
        assert 0 <= a < n + (1 << i) * n0

    @given(state=valid_states(), key=st.integers(min_value=0, max_value=10**9))
    def test_address_matches_bucket_level_hash(self, state, key):
        """The correct address satisfies h_{j_a}(key) == a."""
        n0, n, i = state
        a = lh_address(key, n, i, n0)
        j = bucket_level(a, n, i, n0)
        assert h(j, key, n0) == a

    def test_worked_example(self):
        # File with N=1 at state n=1, i=1 (buckets 0,1,2): keys mod 2,
        # except bucket 0 has split so keys hashing to 0 use mod 4.
        assert lh_address(4, 1, 1) == 0
        assert lh_address(2, 1, 1) == 2
        assert lh_address(3, 1, 1) == 1
        assert lh_address(6, 1, 1) == 2


class TestA2TwoHopGuarantee:
    @staticmethod
    def route(key, start, state: FileState, max_hops=5):
        """Follow A2 forwarding from ``start`` until accepted."""
        hops = 0
        m = start
        while True:
            j = state.level_of(m)
            accept, forward = server_action(key, m, j, state.n0)
            if accept:
                return m, hops
            m = forward
            hops += 1
            if hops > max_hops:  # pragma: no cover
                raise AssertionError("forwarding did not terminate")

    @given(
        n0=st.sampled_from([1, 2, 4]),
        total_splits=st.integers(min_value=0, max_value=40),
        image_lag=st.integers(min_value=0, max_value=40),
        key=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=300)
    def test_at_most_two_hops_from_any_stale_image(
        self, n0, total_splits, image_lag, key
    ):
        state = FileState(n0=n0)
        image_splits = max(0, total_splits - image_lag)
        image = FileState(n0=n0)
        for _ in range(image_splits):
            image.advance_split()
        for _ in range(total_splits):
            state.advance_split()

        start = image.address(key)
        final, hops = self.route(key, start, state)
        assert final == state.address(key)
        assert hops <= 2

    def test_accept_at_correct_bucket_without_hops(self):
        state = FileState(n0=1)
        for _ in range(7):
            state.advance_split()
        for key in range(100):
            a = state.address(key)
            final, hops = self.route(key, a, state)
            assert (final, hops) == (a, 0)


class TestA3Convergence:
    @given(
        n0=st.sampled_from([1, 2, 4]),
        total_splits=st.integers(min_value=0, max_value=60),
        key=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=200)
    def test_same_error_cannot_repeat(self, n0, total_splits, key):
        state = FileState(n0=n0)
        for _ in range(total_splits):
            state.advance_split()
        image = ClientImage(n0=n0)
        a_guess = image.address(key)
        a_true = state.address(key)
        if a_guess != a_true:
            image.adjust(state.level_of(a_true), a_true)
            assert image.address(key) == a_true

    def test_image_never_regresses(self):
        """A3 from an already-converged image is a no-op."""
        image = ClientImage(n0=1, n=2, i=3)
        assert not image.adjust(2, 1)
        assert (image.n, image.i) == (2, 3)

    @pytest.mark.parametrize("total_splits", [15, 63, 255])
    def test_fresh_client_needs_o_log_m_iams(self, total_splits):
        """Expected O(log M) IAMs for a fresh client under a *random*
        key workload (minimal-state A3 jumps are geometric in
        expectation; adversarial sequential keys can force Θ(M))."""
        import math

        from repro.sim.rng import make_rng

        state = FileState(n0=1)
        for _ in range(total_splits):
            state.advance_split()
        image = ClientImage(n0=1)
        iams = 0
        rng = make_rng(42)
        for key in rng.integers(0, 10**9, size=5000):
            key = int(key)
            guess = image.address(key)
            true = state.address(key)
            if guess != true:
                image.adjust(state.level_of(true), true)
                iams += 1
        m = state.bucket_count
        assert iams <= 3 * math.ceil(math.log2(m)) + 3


class TestImageNeverAhead:
    @given(
        n0=st.sampled_from([1, 2, 4]),
        total_splits=st.integers(min_value=0, max_value=60),
        keys=st.lists(st.integers(min_value=0, max_value=10**9),
                      min_size=1, max_size=30),
    )
    @settings(max_examples=200)
    def test_image_never_points_past_the_file(self, n0, total_splits, keys):
        """With minimal-state A3 the image always describes ≤ the real
        file, so a client never addresses a nonexistent bucket."""
        state = FileState(n0=n0)
        for _ in range(total_splits):
            state.advance_split()
        image = ClientImage(n0=n0)
        for key in keys:
            guess = image.address(key)
            assert guess < state.bucket_count
            true = state.address(key)
            if guess != true:
                image.adjust(state.level_of(true), true)
            assert image.bucket_count_estimate <= state.bucket_count


class TestAdjustImageFunction:
    def test_wraps_round(self):
        # Server level 3 at address 7 = last bucket of the i'=2 round:
        # image wraps to n'=0, i'=3.
        i_new, n_new = adjust_image(0, 0, 3, 7)
        assert (i_new, n_new) == (3, 0)

    def test_no_change_when_level_not_greater(self):
        assert adjust_image(3, 2, 3, 5) == (3, 2)


class TestBucketLevel:
    def test_levels_at_state(self):
        # n0=1, n=1, i=2: buckets 0..4; 0 and 4 at level 3, 1..3 at 2.
        assert bucket_level(0, 1, 2) == 3
        assert bucket_level(1, 1, 2) == 2
        assert bucket_level(3, 1, 2) == 2
        assert bucket_level(4, 1, 2) == 3

    def test_nonexistent_bucket(self):
        with pytest.raises(ValueError):
            bucket_level(5, 1, 2)
        with pytest.raises(ValueError):
            bucket_level(-1, 0, 0)

    @given(state=valid_states(max_level=6))
    def test_level_consistent_with_state_machine(self, state):
        n0, n, i = state
        fs = FileState(n0=n0, n=n, i=i)
        for m in fs.buckets():
            j = fs.level_of(m)
            assert j in (i, i + 1)


class TestSplitRecords:
    def test_partition_against_hash(self):
        keys = [k for k in range(100) if h(1, k) == 1]  # bucket 1, level 1
        stay, move = split_records(keys, lambda k: k, m=1, j=1, n0=1)
        assert all(h(2, k) == 1 for k in stay)
        assert all(h(2, k) == 3 for k in move)
        assert sorted(stay + move) == keys

    def test_partition_only_sees_own_keys(self):
        # Key 0 cannot be in bucket 1 at level 1; the helper asserts.
        with pytest.raises(AssertionError):
            split_records([0], lambda k: k, m=1, j=1, n0=1)


class TestMaxBucket:
    @given(state=valid_states(max_level=8))
    def test_e1_identity(self, state):
        n0, n, i = state
        fs = FileState(n0=n0, n=n, i=i)
        assert max_bucket(n, i, n0) == fs.bucket_count - 1
