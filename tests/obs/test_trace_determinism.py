"""Trace-replay determinism: same seeds, byte-identical traces.

The tracer's contract is that events carry only deterministic inputs —
the simulated clock, a global sequence number, message metadata — never
wall-clock time or object ids.  Two chaos-smoke runs with identical
seeds must therefore serialize to byte-identical JSONL, which is what
makes a trace from a failed CI run *replayable*: re-running the seed
locally reproduces the exact same stream, event for event.
"""

from repro.obs import Tracer
from tests.integration.test_chaos import run_chaos


def trace_of(operations: int, seed: int) -> str:
    file = run_chaos(operations, seed, trace_capacity=None)
    return file.tracer.to_jsonl()


def test_chaos_smoke_traces_are_byte_identical():
    first = trace_of(700, 1234)
    second = trace_of(700, 1234)
    assert first == second
    # Sanity: the comparison covered a real stream, not a stub.
    assert first.count("\n") > 5_000
    assert '"type":"fault.injected"' in first
    assert '"type":"recovery.rank"' in first


def test_different_seeds_diverge():
    # The converse guard: if traces were seed-insensitive (constant or
    # empty), the identity test above would prove nothing.
    assert trace_of(700, 1234) != trace_of(700, 4321)


def test_jsonl_round_trips_through_parse():
    import json

    file = run_chaos(300, 99, trace_capacity=None)
    lines = file.tracer.to_jsonl().splitlines()
    seqs = [json.loads(line)["seq"] for line in lines]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_tracer_events_survive_unbounded_capacity():
    tracer = Tracer(capacity=None)
    for _ in range(100_000):
        tracer.emit("msg.send")
    assert len(tracer) == 100_000
