"""Tests for the streaming invariant auditor.

Synthetic streams pin each rule in isolation; the seeded-failure tests
then reproduce a real violation end-to-end on a live file — the
acceptance demand that a *deliberately corrupted* run fails loudly with
the offending event and the trace tail printed.
"""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import parity_node
from repro.obs import InvariantAuditor, InvariantViolation, Tracer


@pytest.fixture
def tracer():
    return Tracer()


def small_file():
    file = LHRSFile(LHRSConfig(group_size=4, availability=1,
                               bucket_capacity=16))
    tracer, metrics, auditor = file.enable_observability()
    return file, tracer, auditor


class TestNoDeliveryToFailed:
    def test_delivery_to_failed_node_violates(self, tracer):
        auditor = InvariantAuditor(tracer, strict=False)
        tracer.emit("node.fail", node="f.d1")
        tracer.emit("msg.deliver", **{"from": "c"}, to="f.d1", kind="insert")
        assert len(auditor.violations) == 1
        assert auditor.violations[0].rule == "no-delivery-to-failed"

    def test_restore_clears_failure_state(self, tracer):
        auditor = InvariantAuditor(tracer, strict=False)
        tracer.emit("node.fail", node="f.d1")
        tracer.emit("node.restore", node="f.d1")
        tracer.emit("msg.deliver", to="f.d1", kind="insert")
        assert auditor.violations == []

    def test_unregister_clears_failure_state(self, tracer):
        auditor = InvariantAuditor(tracer, strict=False)
        tracer.emit("node.fail", node="f.d1")
        tracer.emit("node.unregister", node="f.d1")
        tracer.emit("msg.deliver", to="f.d1", kind="insert")
        assert auditor.violations == []

    def test_strict_mode_raises_in_stack(self, tracer):
        InvariantAuditor(tracer, strict=True)
        tracer.emit("node.fail", node="f.d1")
        with pytest.raises(InvariantViolation):
            tracer.emit("msg.deliver", to="f.d1", kind="insert")


class TestGapImpliesFault:
    def test_gap_without_declared_fault_violates(self, tracer):
        auditor = InvariantAuditor(tracer, strict=False)
        tracer.emit("parity.delta", node="f.p0.0", pos=1, seq=9,
                    expected=3, verdict="stale", op="insert")
        assert [v.rule for v in auditor.violations] == ["gap-implies-fault"]

    @pytest.mark.parametrize("evidence_type,attrs", [
        ("fault.injected", {"outcome": "drop", "kind": "parity.update",
                            "to": "f.p0.0"}),
        ("msg.lost", {"to": "f.p0.0", "kind": "parity.update",
                      "reason": "drop"}),
        ("msg.hold", {"to": "f.p0.0", "kind": "op.ack", "release_at": 5.0}),
        ("node.fail", {"node": "f.d1"}),
    ])
    def test_gap_after_any_fault_evidence_is_expected(self, evidence_type, attrs):
        tracer = Tracer()
        auditor = InvariantAuditor(tracer, strict=True)
        tracer.emit(evidence_type, **attrs)
        tracer.emit("parity.delta", node="f.p0.0", pos=1, seq=9,
                    expected=3, verdict="stale", op="insert")
        assert auditor.violations == []

    def test_apply_and_duplicate_verdicts_are_clean(self, tracer):
        auditor = InvariantAuditor(tracer, strict=True)
        tracer.emit("parity.delta", node="f.p0.0", pos=0, seq=1,
                    expected=1, verdict="apply", op="insert")
        tracer.emit("parity.delta", node="f.p0.0", pos=0, seq=1,
                    expected=2, verdict="duplicate", op="insert")
        assert auditor.violations == []


class TestViolationRendering:
    def test_str_carries_event_and_tail(self, tracer):
        auditor = InvariantAuditor(tracer, tail=5, strict=False)
        for i in range(10):
            tracer.emit("msg.send", to="f.d0", i=i)
        tracer.emit("node.fail", node="f.d1")
        tracer.emit("msg.deliver", to="f.d1", kind="insert")
        text = str(auditor.violations[0])
        assert "no-delivery-to-failed" in text
        assert "offending event" in text
        assert "trace tail (5 events)" in text
        assert "msg.deliver" in text

    def test_assert_clean_raises_first(self, tracer):
        auditor = InvariantAuditor(tracer, strict=False)
        auditor.assert_clean()  # clean: no-op
        tracer.emit("node.fail", node="x")
        tracer.emit("msg.deliver", to="x", kind="insert")
        with pytest.raises(InvariantViolation):
            auditor.assert_clean()

    def test_close_detaches(self, tracer):
        auditor = InvariantAuditor(tracer, strict=True)
        auditor.close()
        tracer.emit("node.fail", node="x")
        tracer.emit("msg.deliver", to="x", kind="insert")
        assert auditor.violations == []


class TestSeededViolationOnLiveFile:
    """The acceptance reproduction: corrupt a live run, watch it fail."""

    def test_forged_future_seq_reproduces_gap_violation(self):
        file, tracer, auditor = small_file()
        for key in range(12):
            file.insert(key, b"v%d" % key)

        # Forge a Δ from the future: seq far beyond the channel. On a
        # trace with no declared faults the auditor must fail the run at
        # this exact message, with the trace tail attached.
        target = parity_node("f", 0, 0)
        with pytest.raises(InvariantViolation) as err:
            file.network.send(
                "f.d0", target, "parity.update",
                {"op": "insert", "key": 999, "rank": 0, "pos": 0,
                 "delta": b"\x01\x02", "length": 2, "seq": 999},
            )
        text = str(err.value)
        assert err.value.rule == "gap-implies-fault"
        assert "parity.delta" in text
        assert "trace tail" in text
        assert err.value.event.attrs["verdict"] == "stale"
        assert auditor.violations  # recorded as well as raised

    def test_clean_run_passes_check_file(self):
        file, tracer, auditor = small_file()
        for key in range(25):
            file.insert(key, b"v%d" % key)
        file.flush_all_parity()
        assert auditor.check_file(file) == []
        assert auditor.violations == []

    def test_check_file_detects_channel_ahead_and_behind(self):
        file, tracer, auditor = small_file()
        auditor.strict = False
        for key in range(12):
            file.insert(key, b"v%d" % key)
        file.flush_all_parity()

        server = file.network.nodes["f.d0"]
        parity = file.network.nodes[server.parity_targets[0]]
        true_seq = server._parity_seq

        parity._expected_seq[server.position] = true_seq + 5
        problems = auditor.check_file(file)
        assert any("AHEAD" in p for p in problems)
        assert [v.rule for v in auditor.violations] == ["parity-generation"]

        parity._expected_seq[server.position] = true_seq  # generation - 1
        assert any("behind" in p for p in auditor.check_file(file))

        parity._expected_seq[server.position] = true_seq + 1
        assert auditor.check_file(file) == []

    def test_check_file_flags_unflushed_deltas(self):
        file, tracer, auditor = small_file()
        auditor.strict = False
        for key in range(8):
            file.insert(key, b"x")
        file.flush_all_parity()
        server = file.network.nodes["f.d0"]
        server._parity_queue.append({"op": "insert", "key": 1})
        try:
            problems = auditor.check_file(file)
            assert any("not quiesced" in p for p in problems)
        finally:
            server._parity_queue.clear()
