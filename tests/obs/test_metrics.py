"""Unit tests for the metrics registry and its MessageStats bridge."""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_histograms,
)
from repro.obs.metrics import MESSAGE_BUCKETS, RETRY_BUCKETS
from repro.sim.stats import MessageStats


class TestCounter:
    def test_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        assert Counter("x").snapshot() == {"type": "counter", "value": 0}


class TestGauge:
    def test_up_and_down(self):
        g = Gauge("x")
        g.set(3.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 2.0
        assert g.snapshot()["type"] == "gauge"


class TestHistogram:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram("x", ())
        with pytest.raises(ValueError):
            Histogram("x", (3, 1, 2))

    def test_bucketing_and_exact_aggregates(self):
        h = Histogram("x", (1, 2, 5))
        for v in (0, 1, 2, 3, 100):
            h.observe(v)
        assert h.counts == [2, 1, 1, 1]  # <=1, <=2, <=5, +Inf
        assert h.count == 5
        assert h.sum == 106
        assert h.min == 0
        assert h.max == 100
        assert h.mean == pytest.approx(21.2)

    def test_bounded_memory(self):
        # O(len(bounds)) forever: a million observations allocate nothing.
        h = Histogram("x", MESSAGE_BUCKETS)
        for i in range(10_000):
            h.observe(i % 300)
        assert len(h.counts) == len(MESSAGE_BUCKETS) + 1
        assert h.count == 10_000

    def test_quantiles_are_bucket_resolution(self):
        h = Histogram("x", (1, 2, 5, 10))
        for v in (1, 1, 1, 2, 2, 5, 5, 5, 5, 10):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 10.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("x", (1,)).quantile(0.5) == 0.0

    def test_overflow_quantile_reports_observed_max(self):
        h = Histogram("x", (1,))
        h.observe(999)
        assert h.quantile(0.99) == 999.0

    def test_snapshot_shape(self):
        h = Histogram("x", (1, 2))
        h.observe(1)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["bounds"] == [1, 2]
        assert snap["counts"] == [1, 0, 0]
        assert {"count", "sum", "min", "max", "mean", "p50", "p99"} <= set(snap)


class TestRegistry:
    def test_lazy_creation_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", RETRY_BUCKETS) is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")
        reg.histogram("h")
        with pytest.raises(TypeError):
            reg.counter("h")

    def test_get_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        assert "a" in reg
        assert "b" not in reg
        assert reg.get("a").value == 1
        with pytest.raises(KeyError):
            reg.get("b")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.reset()
        assert reg.names() == []

    def test_default_histograms_pin_standard_names(self):
        reg = MetricsRegistry()
        default_histograms(reg)
        for name in ("net.messages", "retry.attempts", "probe.mttr"):
            assert name in reg


class TestStatsBridge:
    def test_labelled_windows_feed_per_op_histograms(self):
        stats = MessageStats()
        reg = MetricsRegistry()
        stats.metrics = reg
        for _ in range(3):
            with stats.measure("insert"):
                stats.record("insert", 100, 1)
                stats.record("parity.update", 50, 2)
        assert reg.get("op.insert.ops").value == 3
        messages = reg.get("op.insert.messages")
        assert messages.count == 3
        assert messages.mean == 2.0
        assert reg.get("op.insert.bytes").mean == 150.0
        assert reg.get("op.insert.serial_depth").max == 2

    def test_unlabelled_windows_are_not_observed(self):
        stats = MessageStats()
        reg = MetricsRegistry()
        stats.metrics = reg
        with stats.measure():
            stats.record("insert", 10, 1)
        assert reg.names() == []

    def test_no_registry_no_error(self):
        stats = MessageStats()
        with stats.measure("insert"):
            stats.record("insert", 10, 1)  # must not blow up


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("net.messages", "delivered").inc(7)
        reg.gauge("nodes.down").set(2.0)
        h = reg.histogram("op.insert.messages", MESSAGE_BUCKETS)
        h.observe(3)
        h.observe(5)
        return reg

    def test_to_dict_and_json_roundtrip(self):
        reg = self._populated()
        parsed = json.loads(reg.to_json())
        assert parsed == reg.to_dict()
        assert parsed["net.messages"]["value"] == 7
        assert parsed["op.insert.messages"]["count"] == 2

    def test_to_text_one_line_per_instrument(self):
        text = self._populated().to_text()
        lines = text.splitlines()
        assert len(lines) == 3
        assert "net.messages 7" in lines
        assert any(line.startswith("op.insert.messages count=2") for line in lines)
        assert MetricsRegistry().to_text() == ""
