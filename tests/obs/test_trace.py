"""Unit tests for the structured event tracer."""

import json

import pytest

from repro.obs import EVENT_TYPES, Tracer, UnknownEventType


@pytest.fixture
def tracer():
    clock = {"t": 0.0}
    t = Tracer(clock=lambda: clock["t"])
    t._clock_state = clock  # test hook: advance via tracer._clock_state
    return t


class TestEmit:
    def test_emit_records_event(self, tracer):
        event = tracer.emit("msg.send", to="f.d1", kind="insert", size=10)
        assert event.seq == 1
        assert event.type == "msg.send"
        assert event.span == 0
        assert event.attrs == {"to": "f.d1", "kind": "insert", "size": 10}
        assert len(tracer) == 1
        assert tracer.counts == {"msg.send": 1}

    def test_unknown_type_raises(self, tracer):
        with pytest.raises(UnknownEventType):
            tracer.emit("msg.snd", to="x")
        assert len(tracer) == 0

    def test_sequence_is_monotonic(self, tracer):
        seqs = [tracer.emit("msg.send").seq for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_timestamps_come_from_clock(self, tracer):
        tracer._clock_state["t"] = 7.5
        assert tracer.emit("msg.send").time == 7.5

    def test_clockless_tracer_stamps_zero(self):
        assert Tracer().emit("msg.send").time == 0.0

    def test_registry_covers_all_instrumented_layers(self):
        # A representative of every instrumented subsystem must exist in
        # the taxonomy — removing one silently breaks emission sites.
        for required in (
            "msg.deliver", "fault.injected", "split.start", "merge.end",
            "parity.delta", "recovery.rank", "probe.round", "op.retry",
            "client.unavailable", "availability.raise",
        ):
            assert required in EVENT_TYPES


class TestSpans:
    def test_span_ids_and_parent_links(self, tracer):
        with tracer.span("outer", group=1) as outer:
            assert tracer.current_span == outer.span_id
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                event = tracer.emit("recovery.rank", rank=3)
                assert event.span == inner.span_id
            assert tracer.current_span == outer.span_id
        assert tracer.current_span == 0

    def test_span_emits_start_and_end(self, tracer):
        with tracer.span("recovery", group=2):
            tracer._clock_state["t"] = 4.0
        types = [e.type for e in tracer.events]
        assert types == ["span.start", "span.end"]
        start, end = tracer.events
        assert start.attrs["name"] == "recovery"
        assert start.attrs["group"] == 2
        assert end.attrs["duration"] == 4.0
        assert end.attrs["error"] is False

    def test_span_end_flags_error(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.events[-1].type == "span.end"
        assert tracer.events[-1].attrs["error"] is True

    def test_non_lifo_close_rejected(self, tracer):
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(RuntimeError, match="LIFO"):
            tracer._close_span(outer)


class TestBufferAndTail:
    def test_capacity_bounds_memory(self):
        tracer = Tracer(capacity=10)
        for _ in range(100):
            tracer.emit("msg.send")
        assert len(tracer) == 10
        assert tracer.events[0].seq == 91  # oldest events evicted
        assert tracer.counts["msg.send"] == 100  # counts still exact

    def test_tail_returns_most_recent(self, tracer):
        for i in range(10):
            tracer.emit("msg.send", i=i)
        tail = tracer.tail(3)
        assert [e.attrs["i"] for e in tail] == [7, 8, 9]
        assert tracer.tail(0) == []

    def test_format_tail_renders_one_line_per_event(self, tracer):
        tracer.emit("msg.send", to="f.d1")
        tracer.emit("msg.deliver", to="f.d1")
        text = tracer.format_tail()
        assert len(text.splitlines()) == 2
        assert "msg.deliver" in text
        assert Tracer().format_tail() == "(trace empty)"

    def test_clear_keeps_sequence_counting(self, tracer):
        tracer.emit("msg.send")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emit("msg.send").seq == 2


class TestSerialization:
    def test_to_json_is_canonical(self, tracer):
        tracer._clock_state["t"] = 2.0
        event = tracer.emit("msg.deliver", to="f.d1", kind="insert", size=32)
        line = event.to_json()
        parsed = json.loads(line)
        assert parsed == {
            "seq": 1, "t": 2.0, "type": "msg.deliver", "span": 0,
            "a.kind": "insert", "a.size": 32, "a.to": "f.d1",
        }
        # Compact separators, sorted keys: the byte-stable contract.
        assert " " not in line
        keys = list(parsed)
        assert keys == sorted(keys)

    def test_to_jsonl_joins_with_trailing_newline(self, tracer):
        tracer.emit("msg.send")
        tracer.emit("msg.deliver")
        out = tracer.to_jsonl()
        assert out.endswith("\n")
        assert len(out.splitlines()) == 2

    def test_non_json_attrs_fall_back_to_str(self, tracer):
        event = tracer.emit("msg.send", payload_type=bytes)
        assert "bytes" in event.to_json()


class TestSubscribers:
    def test_subscribers_see_every_event(self, tracer):
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit("msg.send")
        with tracer.span("s"):
            pass
        assert [e.type for e in seen] == ["msg.send", "span.start", "span.end"]

    def test_unsubscribe_detaches(self, tracer):
        seen = []
        tracer.subscribe(seen.append)
        tracer.unsubscribe(seen.append)
        tracer.emit("msg.send")
        assert seen == []
