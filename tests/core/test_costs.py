"""The analytic cost model must match what the system actually does."""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.core.costs import CostModel, lhg_recovery_messages, mirroring_recovery_messages
from repro.sim.rng import make_rng


def build(m=4, k=2, capacity=16, count=400, seed=23, **kw):
    file = LHRSFile(
        LHRSConfig(group_size=m, availability=k, bucket_capacity=capacity, **kw)
    )
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, b"c" * 32)
    return file, keys


class TestModelAgainstSystem:
    def test_search_and_insert(self):
        model = CostModel(m=4, k=2)
        file, keys = build(k=2)
        for key in keys:
            file.search(key)
        with file.stats.measure("s") as window:
            file.search(keys[0])
        assert window.messages == model.search()
        state = file.coordinator.state
        key = next(
            key for key in range(10**6, 10**6 + 10**5)
            if file.client.image.address(key) == state.address(key)
            and len(file.data_servers()[state.address(key)].bucket) + 2
            < file.config.bucket_capacity
        )
        with file.stats.measure("i") as window:
            file.insert(key, b"c" * 32)
        assert window.messages == model.insert()

    @pytest.mark.parametrize("failed,parity_failed", [(1, 0), (2, 0), (1, 1)])
    def test_group_recovery(self, failed, parity_failed):
        model = CostModel(m=4, k=2)
        file, _ = build(k=2)
        nodes = [file.fail_data_bucket(b) for b in range(failed)]
        nodes += [file.fail_parity_bucket(0, i) for i in range(parity_failed)]
        with file.stats.measure("r") as window:
            file.recover(nodes)
        assert window.messages == model.group_recovery_messages(
            failed, parity_failed
        )

    def test_group_recovery_bound_check(self):
        with pytest.raises(ValueError):
            CostModel(m=4, k=1).group_recovery_messages(failed=2)

    def test_record_recovery_upper_bound(self):
        model = CostModel(m=4, k=2)
        file, keys = build(k=2, auto_recover=False)
        for key in keys[:100]:
            file.search(key)
        target = next(k for k in keys if file.find_bucket_of(k) == 0)
        file.fail_data_bucket(0)
        with file.stats.measure("d") as window:
            assert file.search(target).found
        assert window.messages <= model.record_recovery_messages()

    def test_certain_miss(self):
        model = CostModel(m=4, k=1)
        file, _ = build(k=1, auto_recover=False)
        absent = next(
            key for key in range(10**6, 10**6 + 10**5)
            if file.find_bucket_of(key) == 0
            and file.client.image.address(key) == 0
        )
        file.fail_data_bucket(0)
        with file.stats.measure("m") as window:
            assert not file.search(absent).found
        assert window.messages == model.certain_miss_messages()

    def test_merge_cost(self):
        model = CostModel(m=4, k=2)
        file, _ = build(k=2)
        with file.stats.measure("merge") as window:
            file.rs_coordinator.merge_once()
        # The absorber may emit an incidental overflow report; the model
        # covers the merge protocol itself.
        protocol = window.messages - window.by_kind.get("overflow", 0)
        assert protocol == model.merge()

    def test_storage_formulas(self):
        model = CostModel(m=4, k=2, load=0.7)
        assert model.bucket_overhead() == 0.5
        assert model.byte_overhead() == pytest.approx(0.5 / 0.7)
        file, _ = build(m=4, k=2, capacity=32, count=2000)
        assert file.storage_overhead() == pytest.approx(
            CostModel(m=4, k=2, load=file.load_factor()).byte_overhead(),
            rel=0.15,
        )

    def test_lazy_insert_model(self):
        model = CostModel(m=4, k=2)
        assert model.insert(batch=4) == pytest.approx(1.5)

    def test_baseline_formulas(self):
        assert mirroring_recovery_messages() == 3
        # LH*g cost grows with file size; LH*RS group recovery does not.
        small = lhg_recovery_messages(40, 4, lost_records=8)
        large = lhg_recovery_messages(400, 4, lost_records=8)
        assert large > small
        assert CostModel(m=4, k=1).group_recovery_messages(1) == 9
