"""The coordinator's write-ahead journal.

Replay is the takeover's source of truth, so its algebra is pinned by
property tests: deduplicated-by-LSN, sorted, absolute-valued records
make replay idempotent and insensitive to delivery order within an LSN
prefix.  The end-to-end test drives a live file through splits, merges
and availability raises and checks that replaying the journal cut at
*every* LSN reproduces exactly the ``(n, i)`` the coordinator had
journaled at that point — the crash-anywhere guarantee a standby
relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LHRSConfig, LHRSFile
from repro.core.journal import (
    RETIRED,
    CoordinatorJournal,
    JournalRecord,
    replay_records,
)


# ----------------------------------------------------------------------
# journal mechanics
# ----------------------------------------------------------------------
class TestJournalStore:
    def test_append_allocates_monotonic_lsns(self):
        journal = CoordinatorJournal()
        first = journal.append("file.state", n=0, i=0)
        second = journal.append("group.level", group=0, level=1)
        assert (first.lsn, second.lsn) == (1, 2)
        assert journal.last_lsn == 2
        assert journal.contiguous_lsn == 2
        assert journal.gaps() == []

    def test_append_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            CoordinatorJournal().append("banana", n=1)

    def test_ingest_is_idempotent_and_reports_fresh(self):
        journal = CoordinatorJournal()
        wire = [
            {"lsn": 1, "type": "file.state", "payload": {"n": 0, "i": 0}},
            {"lsn": 2, "type": "spares", "payload": {"remaining": 3}},
        ]
        assert len(journal.ingest(wire)) == 2
        assert journal.ingest(wire) == []  # replay of the same records
        assert len(journal) == 2

    def test_gaps_and_contiguous_lsn_expose_missing_prefix(self):
        journal = CoordinatorJournal()
        journal.ingest(
            [{"lsn": 3, "type": "file.state", "payload": {"n": 1, "i": 1}}]
        )
        assert journal.last_lsn == 3
        assert journal.contiguous_lsn == 0
        assert journal.gaps() == [1, 2]

    def test_since_returns_wire_suffix(self):
        journal = CoordinatorJournal()
        journal.append("file.state", n=0, i=0)
        journal.append("file.state", n=1, i=0)
        suffix = journal.since(1)
        assert [r["lsn"] for r in suffix] == [2]
        assert suffix[0]["payload"] == {"n": 1, "i": 0}

    def test_clone_is_independent(self):
        journal = CoordinatorJournal()
        journal.append("file.state", n=0, i=0)
        copy = journal.clone()
        journal.append("file.state", n=1, i=0)
        assert copy.last_lsn == 1
        assert journal.last_lsn == 2

    def test_subscribers_see_appends_and_ingests(self):
        journal = CoordinatorJournal()
        seen = []
        journal.subscribe(seen.append)
        journal.append("file.state", n=0, i=0)
        journal.ingest(
            [{"lsn": 2, "type": "spares", "payload": {"remaining": 1}}]
        )
        assert [r.lsn for r in seen] == [1, 2]


# ----------------------------------------------------------------------
# replay semantics
# ----------------------------------------------------------------------
class TestReplay:
    def test_group_level_retired_removes_group(self):
        records = [
            JournalRecord(1, "group.level", {"group": 4, "level": 2}),
            JournalRecord(2, "group.level", {"group": 4, "level": RETIRED}),
        ]
        assert replay_records(records).group_levels == {}

    def test_open_intents_are_begins_without_ends(self):
        records = [
            JournalRecord(1, "intent.begin", {"op": "split"}),
            JournalRecord(2, "intent.begin", {"op": "recover"}),
            JournalRecord(3, "intent.end", {"begin": 1}),
        ]
        state = replay_records(records)
        assert [r.lsn for r in state.open_intents] == [2]
        assert state.open_intents[0].payload["op"] == "recover"

    def test_upto_cuts_the_prefix(self):
        records = [
            JournalRecord(1, "file.state", {"n": 0, "i": 0}),
            JournalRecord(2, "file.state", {"n": 1, "i": 0}),
        ]
        assert replay_records(records, upto=1).n == 0
        assert replay_records(records, upto=1).applied_lsn == 1


# Strategy: a legal journal history — LSNs 1..N with state-bearing
# payloads.  Intent brackets are generated too (an end names an earlier
# begin) so open-intent computation is exercised by the properties.
@st.composite
def journal_histories(draw):
    length = draw(st.integers(min_value=1, max_value=24))
    records = []
    open_begins = []
    for lsn in range(1, length + 1):
        choices = ["file.state", "group.level", "spares", "intent.begin",
                   "takeover"]
        if open_begins:
            choices.append("intent.end")
        kind = draw(st.sampled_from(choices))
        if kind == "file.state":
            payload = {
                "n": draw(st.integers(0, 63)),
                "i": draw(st.integers(0, 6)),
            }
        elif kind == "group.level":
            payload = {
                "group": draw(st.integers(0, 7)),
                "level": draw(st.sampled_from([RETIRED, 1, 2, 3])),
            }
        elif kind == "spares":
            payload = {"remaining": draw(st.integers(0, 10))}
        elif kind == "takeover":
            payload = {"term": draw(st.integers(1, 5))}
        elif kind == "intent.begin":
            payload = {"op": draw(st.sampled_from(["split", "merge",
                                                   "raise", "recover"]))}
            open_begins.append(lsn)
        else:  # intent.end
            payload = {"begin": open_begins.pop(0)}
        records.append(JournalRecord(lsn, kind, payload))
    return records


def canonical(state):
    snap = state.snapshot()
    snap["open"] = [r.lsn for r in state.open_intents]
    return snap


class TestReplayProperties:
    @given(journal_histories(), st.data())
    def test_replay_is_duplication_insensitive(self, records, data):
        """Re-delivering any subset of records (the at-least-once wire)
        replays to the same state."""
        dupes = data.draw(
            st.lists(st.sampled_from(records), max_size=len(records))
        )
        assert canonical(replay_records(records + dupes)) == canonical(
            replay_records(records)
        )

    @given(journal_histories(), st.randoms(use_true_random=False))
    def test_replay_is_permutation_insensitive(self, records, rng):
        """Any delivery order of a complete LSN prefix replays to the
        same state."""
        shuffled = list(records)
        rng.shuffle(shuffled)
        assert canonical(replay_records(shuffled)) == canonical(
            replay_records(records)
        )

    @given(journal_histories())
    def test_replay_of_replayed_prefix_is_fixed_point(self, records):
        """Replaying upto=L then extending to the full set equals one
        full replay — cut points never corrupt the fold."""
        full = replay_records(records)
        for cut in range(len(records) + 1):
            prefix = replay_records(records, upto=cut)
            assert prefix.applied_lsn <= full.applied_lsn
        assert canonical(replay_records(records, upto=len(records))) == (
            canonical(full)
        )

    @given(journal_histories())
    def test_ingest_path_equals_append_path(self, records):
        """A replica that ingested the wire form replays identically to
        the primary that authored the records."""
        replica = CoordinatorJournal()
        replica.ingest([r.to_wire() for r in records])
        assert canonical(replica.replay()) == canonical(
            replay_records(records)
        )


# ----------------------------------------------------------------------
# crash-at-every-LSN against a live file
# ----------------------------------------------------------------------
@settings(deadline=None)
@given(st.integers(min_value=0, max_value=0))  # single deterministic run
def test_replay_at_every_lsn_matches_journaled_truth(_):
    """Drive a file through growth, an availability raise and a merge;
    then for every ``file.state`` record the journal holds, replay the
    prefix cut at that LSN and check it reproduces exactly the (n, i)
    journaled — i.e. a standby crashing at ANY point replays to a state
    the coordinator really had."""
    file = LHRSFile(LHRSConfig(group_size=2, availability=1,
                               bucket_capacity=8))
    coordinator = file.rs_coordinator
    for key in range(150):
        file.insert(key, bytes([key % 251]) * 8)
    coordinator.raise_group_level(0, 2)
    for key in range(0, 120):
        file.delete(key)
    coordinator.merge_once()
    coordinator.merge_once()

    journal = coordinator.journal
    records = journal.records()
    assert records, "the coordinator journaled nothing"
    for record in records:
        if record.type != "file.state":
            continue
        replayed = journal.replay(upto=record.lsn)
        assert (replayed.n, replayed.i) == (
            record.payload["n"], record.payload["i"]
        ), f"replay cut at lsn {record.lsn} diverged"
    final = journal.replay()
    assert (final.n, final.i) == coordinator.state.as_tuple()
    assert final.group_levels == coordinator.group_levels
    assert final.open_intents == []  # every intent committed
