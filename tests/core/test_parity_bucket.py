"""Unit tests of the parity bucket server in isolation."""

import pytest

from repro.core.parity_bucket import ParityServer
from repro.gf import GF
from repro.rs.generator import parity_matrix
from repro.sim import Network, Node


class Probe(Node):
    """A bare sender node for driving the parity server."""


@pytest.fixture
def setup():
    net = Network()
    field = GF(8)
    row0 = parity_matrix(field, 4, 1).row(0)  # all ones (XOR bucket)
    row1 = parity_matrix(field, 4, 2).row(1)
    p0 = ParityServer("f.p0.0", "f", group=0, index=0, row=row0, field=field)
    p1 = ParityServer("f.p0.1", "f", group=0, index=1, row=row1, field=field)
    probe = Probe("probe")
    for node in (p0, p1, probe):
        net.register(node)
    return net, p0, p1, probe


def op(action, key, rank, pos, delta, length=None):
    return {
        "op": action,
        "key": key,
        "rank": rank,
        "pos": pos,
        "delta": delta,
        "length": len(delta) if length is None else length,
    }


class TestApply:
    def test_insert_creates_record(self, setup):
        _, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"abcd"))
        record = p0.records[1]
        assert record.keys == {0: 9}
        assert record.lengths == {0: 4}
        assert record.parity_bytes(p0.field) == b"abcd"

    def test_xor_bucket_accumulates_xor(self, setup):
        _, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"ab"))
        probe.send("f.p0.0", "parity.update", op("insert", 8, 1, 1, b"cd"))
        expected = bytes(x ^ y for x, y in zip(b"ab", b"cd"))
        assert p0.records[1].parity_bytes(p0.field) == expected
        assert p0.xor_folds == 2 and p0.general_folds == 0

    def test_second_parity_uses_general_gf(self, setup):
        _, _, p1, probe = setup
        probe.send("f.p0.1", "parity.update", op("insert", 9, 1, 1, b"zz"))
        assert p1.general_folds == 1  # row 1, position 1: coefficient != 1

    def test_first_column_is_xor_on_any_parity(self, setup):
        """All-ones first column: position 0 folds by XOR everywhere."""
        _, _, p1, probe = setup
        probe.send("f.p0.1", "parity.update", op("insert", 9, 1, 0, b"zz"))
        assert p1.xor_folds == 1
        assert p1.records[1].parity_bytes(p1.field) == b"zz"

    def test_update_changes_parity_and_length(self, setup):
        _, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"aaaa"))
        delta = bytes(x ^ y for x, y in zip(b"aaaa", b"bb\0\0"))
        probe.send("f.p0.0", "parity.update", op("update", 9, 1, 0, delta, 2))
        record = p0.records[1]
        assert record.lengths == {0: 2}
        assert record.parity_bytes(p0.field)[:2] == b"bb"

    def test_delete_last_member_removes_record(self, setup):
        _, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"abcd"))
        probe.send("f.p0.0", "parity.update", op("delete", 9, 1, 0, b"abcd", 0))
        assert 1 not in p0.records

    def test_delete_keeps_record_with_other_members(self, setup):
        _, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"ab"))
        probe.send("f.p0.0", "parity.update", op("insert", 8, 1, 2, b"cd"))
        probe.send("f.p0.0", "parity.update", op("delete", 9, 1, 0, b"ab", 0))
        assert p0.records[1].keys == {2: 8}
        assert p0.records[1].parity_bytes(p0.field) == b"cd"

    def test_batch(self, setup):
        _, p0, _, probe = setup
        probe.send(
            "f.p0.0", "parity.batch",
            {"ops": [op("insert", 9, 1, 0, b"ab"), op("insert", 8, 2, 1, b"cd")]},
        )
        assert set(p0.records) == {1, 2}

    def test_bad_position_rejected(self, setup):
        _, _, _, probe = setup
        with pytest.raises(ValueError):
            probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 7, b"ab"))

    def test_bad_action_rejected(self, setup):
        _, _, _, probe = setup
        with pytest.raises(ValueError, match="unknown parity op"):
            probe.send("f.p0.0", "parity.update", op("frobnicate", 9, 1, 0, b"ab"))

    def test_symbol_ops_counted(self, setup):
        _, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"abcdef"))
        assert p0.symbol_ops == 6


class TestQueries:
    def test_locate_found_and_absent(self, setup):
        _, _, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 42, 3, 1, b"xy"))
        hit = probe.call("f.p0.0", "parity.locate", {"key": 42})
        assert hit["rank"] == 3 and hit["pos"] == 1
        assert probe.call("f.p0.0", "parity.locate", {"key": 99}) is None

    def test_rank_query(self, setup):
        _, _, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 42, 3, 1, b"xy"))
        snap = probe.call("f.p0.0", "parity.rank", {"rank": 3})
        assert snap["keys"] == {1: 42}
        assert probe.call("f.p0.0", "parity.rank", {"rank": 4}) is None

    def test_dump_and_load_roundtrip(self, setup):
        net, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 42, 3, 1, b"xy"))
        probe.send("f.p0.0", "parity.update", op("insert", 41, 2, 0, b"zw"))
        dump = probe.call("f.p0.0", "parity.dump")
        fresh = ParityServer("f.p0.9", "f", 0, 0, p0.row, p0.field)
        net.register(fresh)
        probe.send("f.p0.9", "parity.load", {"records": dump["records"]})
        assert set(fresh.records) == {2, 3}
        assert fresh.records[3].keys == {1: 42}

    def test_status(self, setup):
        _, _, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 42, 3, 1, b"xyz"))
        status = probe.call("f.p0.0", "status")
        assert status["records"] == 1
        assert status["parity_bytes"] == 3


class TestKeyIndex:
    """§4.1's in-bucket secondary index (key -> (rank, pos))."""

    def test_index_tracks_membership(self, setup):
        _, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"ab"))
        probe.send("f.p0.0", "parity.update", op("insert", 8, 2, 1, b"cd"))
        assert p0._key_index == {9: (1, 0), 8: (2, 1)}
        probe.send("f.p0.0", "parity.update", op("delete", 9, 1, 0, b"ab", 0))
        assert p0._key_index == {8: (2, 1)}

    def test_index_rebuilt_on_load(self, setup):
        net, p0, _, probe = setup
        probe.send("f.p0.0", "parity.update", op("insert", 42, 3, 1, b"xy"))
        dump = probe.call("f.p0.0", "parity.dump")
        fresh = ParityServer("f.p0.7", "f", 0, 0, p0.row, p0.field)
        net.register(fresh)
        probe.send("f.p0.7", "parity.load", {"records": dump["records"]})
        assert fresh._key_index == {42: (3, 1)}
        assert probe.call("f.p0.7", "parity.locate", {"key": 42})["rank"] == 3
        assert probe.call("f.p0.7", "parity.locate", {"key": 42})["pos"] == 1

    def test_locate_uses_index_consistently(self, setup):
        """Index answers must match a full scan of the records."""
        _, p0, _, probe = setup
        for i, key in enumerate((10, 11, 12, 13)):
            probe.send("f.p0.0", "parity.update",
                       op("insert", key, i + 1, i % 4, b"zz"))
        for key in (10, 11, 12, 13):
            hit = probe.call("f.p0.0", "parity.locate", {"key": key})
            scan_hit = next(
                (rank for rank, rec in p0.records.items()
                 if key in rec.keys.values()),
                None,
            )
            assert hit["rank"] == scan_hit


class TestCrashConsistency:
    """A Δ-fold that dies mid-apply must leave no half-born state.

    ``_apply`` allocates the record (and, with a stripe store, its
    matrix row) *before* folding, but inserts the key directory and
    ``_key_index`` entries only after.  A crash in between used to
    strand an allocated record that ``parity.locate`` and
    ``parity.dump`` could see with no keys — these tests pin the
    rollback on both storage layouts.
    """

    def make_server(self, stripe_store):
        net = Network()
        field = GF(8)
        row = parity_matrix(field, 4, 1).row(0)
        server = ParityServer("f.p0.0", "f", group=0, index=0, row=row,
                              field=field, stripe_store=stripe_store)
        probe = Probe("probe")
        net.register(server)
        net.register(probe)
        return server, probe

    @pytest.fixture(params=[False, True], ids=["classic", "stripe"])
    def layout(self, request, monkeypatch):
        server, probe = self.make_server(stripe_store=request.param)

        armed = {"on": False}

        def explode(*args, **kwargs):
            if armed["on"]:
                raise RuntimeError("simulated crash during fold")
            return real(*args, **kwargs)

        if request.param:
            real = GF.scale_accumulate
            monkeypatch.setattr(GF, "scale_accumulate", explode)
        else:
            import repro.core.parity_bucket as module

            real = module.fold_delta
            monkeypatch.setattr(module, "fold_delta", explode)
        return server, probe, armed

    def test_crash_on_fresh_rank_leaves_locate_consistent(self, layout):
        server, probe, armed = layout
        armed["on"] = True
        with pytest.raises(RuntimeError, match="simulated crash"):
            probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"ab"))
        # No half-born record anywhere recovery looks.
        assert 1 not in server.records
        assert 9 not in server._key_index
        assert probe.call("f.p0.0", "parity.locate", {"key": 9}) is None
        assert probe.call("f.p0.0", "parity.dump")["records"] == []
        if server._store is not None:
            assert 1 not in server._store
        # The bucket still works: a clean retry of the same op succeeds.
        armed["on"] = False
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"ab"))
        assert probe.call("f.p0.0", "parity.locate", {"key": 9})["rank"] == 1
        assert server.records[1].parity_bytes(server.field) == b"ab"

    def test_crash_on_existing_rank_keeps_old_record_intact(self, layout):
        server, probe, armed = layout
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"ab"))
        before = server.records[1].parity_bytes(server.field)
        armed["on"] = True
        with pytest.raises(RuntimeError):
            probe.send("f.p0.0", "parity.update", op("insert", 8, 1, 1, b"cd"))
        armed["on"] = False
        record = server.records[1]
        assert record.keys == {0: 9}
        assert 8 not in server._key_index
        assert record.parity_bytes(server.field) == before

    @pytest.mark.parametrize("stripe_store", [False, True],
                             ids=["classic", "stripe"])
    def test_unknown_action_rejected_before_any_fold(self, stripe_store):
        """Validation precedes mutation: a bad action folds nothing."""
        server, probe = self.make_server(stripe_store)
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"ab"))
        before = server.records[1].parity_bytes(server.field)
        ops_before = server.symbol_ops
        with pytest.raises(ValueError, match="unknown parity op"):
            probe.send("f.p0.0", "parity.update",
                       op("frobnicate", 8, 1, 1, b"cd"))
        assert server.records[1].parity_bytes(server.field) == before
        assert server.symbol_ops == ops_before
        assert 2 not in server.records
        with pytest.raises(ValueError):
            probe.send("f.p0.0", "parity.update",
                       op("frobnicate", 7, 2, 0, b"zz"))
        assert 2 not in server.records  # fresh rank not allocated either


class TestStoreViewLifecycle:
    """Stripe-store view staleness across record churn and reloads."""

    def make_server(self):
        net = Network()
        field = GF(8)
        row = parity_matrix(field, 4, 1).row(0)
        server = ParityServer("f.p0.0", "f", group=0, index=0, row=row,
                              field=field, stripe_store=True)
        probe = Probe("probe")
        net.register(server)
        net.register(probe)
        return server, probe

    def test_deleted_rank_view_raises(self):
        server, probe = self.make_server()
        probe.send("f.p0.0", "parity.update", op("insert", 9, 1, 0, b"ab"))
        probe.send("f.p0.0", "parity.update", op("delete", 9, 1, 0, b"ab", 0))
        assert 1 not in server._store
        with pytest.raises(KeyError):
            server._store.view(1)

    def test_load_refreshes_views_and_drops_old_ranks(self):
        server, probe = self.make_server()
        probe.send("f.p0.0", "parity.update", op("insert", 9, 5, 0, b"old!"))
        dump = probe.call("f.p0.0", "parity.dump")
        assert [r["rank"] for r in dump["records"]] == [5]

        # Replace the content wholesale (the merge/recovery reload path).
        probe.send("f.p0.0", "parity.load", {
            "records": [{"rank": 2, "keys": {1: 42}, "lengths": {1: 4},
                         "parity": b"newp"}],
        })
        assert set(server.records) == {2}
        with pytest.raises(KeyError):
            server._store.view(5)
        assert probe.call("f.p0.0", "parity.locate", {"key": 9}) is None
        # The surviving record's symbols are live views of the new store:
        # folding through them writes through to the matrix.
        record = server.records[2]
        assert record.parity_bytes(server.field) == b"newp"
        assert record.symbols.base is server._store.matrix.base or (
            record.symbols.base is server._store.matrix
        )


class TestNestedRows:
    def test_rows_nested_across_k(self):
        """Row i of the (m, k) Cauchy parity matrix is independent of k —
        raising availability never re-keys existing parity buckets."""
        field = GF(8)
        for m in (2, 4, 8):
            for i in range(3):
                rows = [
                    parity_matrix(field, m, k).row(i) for k in range(i + 1, 5)
                ]
                assert all(r == rows[0] for r in rows)
