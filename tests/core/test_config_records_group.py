"""Tests for LHRSConfig, record structures and group geometry."""

import numpy as np
import pytest

from repro.core.availability import AvailabilityPolicy
from repro.core.config import LHRSConfig
from repro.core.group import (
    data_node,
    group_buckets,
    group_count,
    group_of,
    parity_node,
    position_of,
)
from repro.core.records import DataRecord, ParityRecord
from repro.gf import GF


class TestConfig:
    def test_defaults(self):
        cfg = LHRSConfig()
        assert cfg.group_size == 4
        assert cfg.availability == 1
        assert cfg.effective_policy.level_for(100) == 1
        assert cfg.max_availability == 1
        assert cfg.make_field() == GF(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            LHRSConfig(group_size=0)
        with pytest.raises(ValueError):
            LHRSConfig(availability=-1)
        with pytest.raises(ValueError):
            LHRSConfig(bucket_capacity=0)
        with pytest.raises(ValueError):
            LHRSConfig(field_width=4)

    def test_field_capacity_guard(self):
        with pytest.raises(ValueError, match="wider field"):
            LHRSConfig(group_size=250, availability=10, field_width=8)
        LHRSConfig(group_size=250, availability=6, field_width=8)
        LHRSConfig(group_size=250, availability=10, field_width=16)

    def test_policy_drives_max_availability(self):
        cfg = LHRSConfig(policy=AvailabilityPolicy.scalable(max_level=3))
        assert cfg.max_availability == 3
        assert cfg.effective_policy.level_for(8) == 2


class TestRecords:
    def test_data_record_wire_size(self):
        rec = DataRecord(key=7, payload=b"abcd", rank=3)
        assert rec.wire_size() == 20

    def test_parity_record_snapshot_roundtrip(self):
        gf = GF(8)
        rec = ParityRecord(
            rank=5,
            keys={0: 11, 2: 13},
            lengths={0: 4, 2: 2},
            symbols=np.array([1, 2, 3, 4], dtype=np.uint8),
        )
        snap = rec.snapshot(gf)
        back = ParityRecord.from_snapshot(snap, gf)
        assert back.rank == 5
        assert back.keys == rec.keys
        assert back.lengths == rec.lengths
        assert (back.symbols == rec.symbols).all()

    def test_parity_record_properties(self):
        rec = ParityRecord(rank=1, keys={0: 5}, lengths={0: 9})
        assert rec.member_count == 1
        assert rec.max_length == 9
        assert ParityRecord(rank=2).max_length == 0

    def test_wire_size_counts_directory_and_parity(self):
        rec = ParityRecord(
            rank=1, keys={0: 5, 1: 6}, lengths={0: 4, 1: 4},
            symbols=np.zeros(10, dtype=np.uint8),
        )
        assert rec.wire_size() == 2 * 24 + 10


class TestGroupGeometry:
    def test_group_of_and_position(self):
        assert group_of(0, 4) == 0
        assert group_of(7, 4) == 1
        assert position_of(7, 4) == 3
        with pytest.raises(ValueError):
            group_of(-1, 4)
        with pytest.raises(ValueError):
            position_of(-1, 4)

    def test_group_buckets_clipping(self):
        assert group_buckets(1, 4) == [4, 5, 6, 7]
        assert group_buckets(1, 4, total_buckets=6) == [4, 5]
        assert group_buckets(2, 4, total_buckets=6) == []
        with pytest.raises(ValueError):
            group_buckets(-1, 4)

    def test_group_count(self):
        assert group_count(0, 4) == 0
        assert group_count(4, 4) == 1
        assert group_count(5, 4) == 2

    def test_node_names(self):
        assert data_node("f", 3) == "f.d3"
        assert parity_node("f", 2, 1) == "f.p2.1"
