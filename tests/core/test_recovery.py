"""Tests of the LH*RS recovery machinery.

DESIGN.md invariant 4: fail any ≤ k buckets per group — data, parity or
both — recover, and the file is byte-identical to before, including
ranks, counters and parity.  Beyond k, recovery fails loudly (never a
silent loss).  Degraded reads serve searches while buckets are down.
"""

import pytest

from repro.core import LHRSConfig, LHRSFile, RecoveryError
from repro.core.recovery import parse_node_id, reconstruct_state
from repro.lh import FileState
from repro.sim.network import NodeUnavailable
from repro.sim.rng import make_rng


def build_file(m=4, k=2, capacity=8, count=250, seed=2, **kw):
    cfg = LHRSConfig(group_size=m, availability=k, bucket_capacity=capacity, **kw)
    file = LHRSFile(cfg)
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * 3)
    return file, keys


def snapshot(file):
    """Recovery-fidelity snapshot: records, ranks and levels.

    Counters/free-lists are deliberately excluded: recovery reconstructs
    the *behaviourally equivalent* minimal form (counter = max used
    rank), not the historical one; rank bookkeeping validity is asserted
    separately via check_rank_bookkeeping.
    """
    return file.census_with_ranks(), file.levels_census()


def check_rank_bookkeeping(file):
    for server in file.data_servers():
        used = set(server.ranks.values())
        free = set(server._free_ranks)
        assert not used & free
        assert used | free == set(range(1, server._rank_counter + 1))


class TestSingleDataBucketRecovery:
    def test_explicit_recovery_restores_exact_state(self):
        file, _ = build_file()
        before = snapshot(file)
        node = file.fail_data_bucket(5)
        summary = file.recover([node])
        assert summary == {
            "groups": 1, "data_buckets": 1, "parity_buckets": 0,
            "records": summary["records"],
        }
        assert snapshot(file) == before
        check_rank_bookkeeping(file)
        assert file.verify_parity_consistency() == []

    def test_recovery_restores_free_rank_equivalence(self):
        """Recovered counter/free-list may differ in history but must be
        behaviourally equivalent: next insert gets a sane fresh rank."""
        file, keys = build_file()
        victims = [k for k in keys if file.find_bucket_of(k) == 3][:3]
        for key in victims:
            file.delete(key)
        node = file.fail_data_bucket(3)
        file.recover([node])
        assert file.verify_parity_consistency() == []
        file.insert(10**9 + 123, b"fresh-record")
        assert file.verify_parity_consistency() == []

    def test_operations_work_after_recovery(self):
        file, keys = build_file()
        node = file.fail_data_bucket(2)
        file.recover([node])
        sample = [k for k in keys if file.find_bucket_of(k) == 2][:5]
        for key in sample:
            assert file.search(key).found
        file.update(sample[0], b"post-recovery")
        assert file.search(sample[0]).value == b"post-recovery"
        assert file.verify_parity_consistency() == []

    def test_empty_bucket_recovery(self):
        file, _ = build_file(count=3)  # most buckets empty
        empty = next(
            s.number for s in file.data_servers() if len(s.bucket) == 0
        )
        node = file.fail_data_bucket(empty)
        file.recover([node])
        assert len(file.data_servers()[empty].bucket) == 0
        assert file.verify_parity_consistency() == []


class TestMultiFailureRecovery:
    @pytest.mark.parametrize("buckets", [(0, 1), (1, 3), (0, 2)])
    def test_two_data_buckets_same_group(self, buckets):
        file, _ = build_file(k=2)
        before = snapshot(file)
        nodes = [file.fail_data_bucket(b) for b in buckets]
        file.recover(nodes)
        assert snapshot(file) == before
        check_rank_bookkeeping(file)
        assert file.verify_parity_consistency() == []

    def test_data_plus_parity_same_group(self):
        file, _ = build_file(k=2)
        before = snapshot(file)
        nodes = [file.fail_data_bucket(1), file.fail_parity_bucket(0, 1)]
        file.recover(nodes)
        assert snapshot(file) == before
        check_rank_bookkeeping(file)
        assert file.verify_parity_consistency() == []

    def test_failures_across_groups_recover_independently(self):
        """k failures per group is fine even when many groups are hit."""
        file, _ = build_file(k=1)
        before = snapshot(file)
        nodes = [file.fail_data_bucket(b) for b in (0, 5, 9)]  # 3 groups
        summary = file.recover(nodes)
        assert summary["groups"] == 3
        assert snapshot(file) == before
        check_rank_bookkeeping(file)
        assert file.verify_parity_consistency() == []

    def test_parity_only_recovery_reencodes(self):
        file, _ = build_file(k=2)
        node = file.fail_parity_bucket(1, 0)
        file.recover([node])
        assert file.verify_parity_consistency() == []

    def test_all_parity_of_group_recoverable(self):
        """k parity buckets lost, all data alive: pure re-encode."""
        file, _ = build_file(k=2)
        nodes = [file.fail_parity_bucket(0, 0), file.fail_parity_bucket(0, 1)]
        file.recover(nodes)
        assert file.verify_parity_consistency() == []

    def test_three_availability_three_data_losses(self):
        file, _ = build_file(k=3, count=150)
        before = snapshot(file)
        nodes = [file.fail_data_bucket(b) for b in (0, 1, 2)]
        file.recover(nodes)
        assert snapshot(file) == before
        check_rank_bookkeeping(file)
        assert file.verify_parity_consistency() == []


class TestBeyondAvailability:
    def test_k_plus_one_failures_raise(self):
        file, _ = build_file(k=1)
        file.fail_data_bucket(0)
        file.fail_data_bucket(1)
        with pytest.raises(RecoveryError, match="exceeds availability"):
            file.recover(["f.d0", "f.d1"])

    def test_undeclared_extra_failure_detected(self):
        """Recovery widens to other failed group members it finds."""
        file, _ = build_file(k=1)
        file.fail_data_bucket(0)
        file.fail_data_bucket(2)  # same group, not declared
        with pytest.raises(RecoveryError, match="exceeds availability"):
            file.recover(["f.d0"])

    def test_k0_data_loss_unrecoverable(self):
        file, _ = build_file(k=0)
        file.fail_data_bucket(0)
        with pytest.raises(RecoveryError):
            file.recover(["f.d0"])

    def test_foreign_node_rejected(self):
        file, _ = build_file()
        with pytest.raises(RecoveryError, match="foreign"):
            file.recover(["other.d0"])

    def test_nonexistent_bucket_rejected(self):
        file, _ = build_file()
        with pytest.raises(RecoveryError, match="not an existing member"):
            file.rs_coordinator.recovery.recover_group(0, [999], [])

    def test_bad_parity_index_rejected(self):
        file, _ = build_file(k=1)
        with pytest.raises(RecoveryError, match="beyond"):
            file.rs_coordinator.recovery.recover_group(0, [], [5])


class TestTransparentRecoveryThroughOperations:
    def test_search_triggers_degraded_read_and_recovery(self):
        file, keys = build_file(k=1)
        target = [k for k in keys if file.find_bucket_of(k) == 1][0]
        node = file.fail_data_bucket(1)
        outcome = file.search(target)  # client reports; coordinator serves
        assert outcome.found
        assert outcome.value == target.to_bytes(8, "big") * 3
        assert file.network.is_available(node)  # recovered as a side effect
        assert file.verify_parity_consistency() == []

    def test_search_absent_key_in_failed_bucket_is_certain(self):
        """The parity directory proves absence: unsuccessful search
        terminates correctly during unavailability."""
        file, _ = build_file(k=1)
        absent = 10**9 + 17
        bucket = file.find_bucket_of(absent)
        file.fail_data_bucket(bucket)
        outcome = file.search(absent)
        assert not outcome.found

    def test_insert_into_failed_bucket_recovers_then_applies(self):
        file, keys = build_file(k=1)
        new_key = next(
            k for k in range(10**8, 10**8 + 10**4)
            if file.find_bucket_of(k) == 2 and k not in keys
        )
        file.fail_data_bucket(2)
        file.insert(new_key, b"inserted-while-down")
        assert file.search(new_key).value == b"inserted-while-down"
        assert file.verify_parity_consistency() == []

    def test_update_and_delete_during_unavailability(self):
        file, keys = build_file(k=1)
        target = [k for k in keys if file.find_bucket_of(k) == 3][0]
        file.fail_data_bucket(3)
        file.update(target, b"updated-while-down")
        assert file.search(target).value == b"updated-while-down"
        file.fail_data_bucket(3)
        file.delete(target)
        assert not file.search(target).found
        assert file.verify_parity_consistency() == []

    def test_parity_failure_healed_on_next_mutation(self):
        file, keys = build_file(k=1)
        node = file.fail_parity_bucket(0, 0)
        target = [k for k in keys if file.find_bucket_of(k) == 0][0]
        file.update(target, b"new-value-after-parity-loss")
        assert file.network.is_available(node)
        assert file.verify_parity_consistency() == []

    def test_auto_recover_disabled_blocks_mutations(self):
        file, keys = build_file(k=1, auto_recover=False)
        target = [k for k in keys if file.find_bucket_of(k) == 1][0]
        file.fail_data_bucket(1)
        # Degraded read still works...
        assert file.search(target).found
        # ...but a mutation raises instead of silently recovering.
        with pytest.raises(RecoveryError, match="auto_recover"):
            file.update(target, b"nope")

    def test_degraded_reads_disabled_falls_back_to_recovery(self):
        file, keys = build_file(k=1, degraded_reads=False)
        target = [k for k in keys if file.find_bucket_of(k) == 1][0]
        node = file.fail_data_bucket(1)
        outcome = file.search(target)
        assert outcome.found
        assert file.network.is_available(node)


class TestRecordRecovery:
    def test_direct_record_recovery(self):
        file, keys = build_file(k=2)
        target = [k for k in keys if file.find_bucket_of(k) == 0][0]
        file.config and file.fail_data_bucket(0)
        found, payload = file.recover_record(target)
        assert found and payload == target.to_bytes(8, "big") * 3

    def test_record_recovery_with_second_member_down(self):
        """k=2: the degraded read decodes around two missing members."""
        file, keys = build_file(k=2)
        target = [k for k in keys if file.find_bucket_of(k) == 0][0]
        file.fail_data_bucket(0)
        file.fail_data_bucket(1)
        found, payload = file.recover_record(target)
        assert found and payload == target.to_bytes(8, "big") * 3

    def test_record_recovery_without_parity_errors(self):
        file, keys = build_file(k=0)
        target = keys[0]
        file.fail_data_bucket(file.find_bucket_of(target))
        with pytest.raises(RecoveryError):
            file.recover_record(target)

    def test_record_recovery_beyond_k_errors(self):
        file, keys = build_file(k=1)
        target = [k for k in keys if file.find_bucket_of(k) == 0][0]
        # Ensure decoding is impossible: two data members down at k=1.
        file.fail_data_bucket(0)
        file.fail_data_bucket(1)
        parity_sees = file.parity_servers(0)[0]
        rank = next(
            r for r, rec in parity_sees.records.items()
            if rec.keys.get(0) == file.data_servers() and False
        ) if False else None
        # Only raise when the record group actually spans both buckets;
        # find such a key.
        groups = parity_sees.records
        spanning = next(
            (rec for rec in groups.values() if 0 in rec.keys and 1 in rec.keys),
            None,
        )
        if spanning is None:
            pytest.skip("no record group spans buckets 0 and 1 in this build")
        with pytest.raises(RecoveryError):
            file.recover_record(spanning.keys[0])


class TestFileStateRecovery:
    def test_reconstruct_matches_truth_through_growth(self):
        file, _ = build_file()
        assert file.check_reconstructed_state()
        assert file.reconstruct_file_state() == file.coordinator.state.as_tuple()

    def test_reconstruct_all_levels_equal(self):
        state = FileState(n0=4)
        levels = {m: 0 for m in range(4)}
        assert reconstruct_state(levels, 4) == (0, 0)

    def test_reconstruct_with_boundary(self):
        # n0=1, state (2, 2): buckets 0,1 at level 3; 2,3 at 2; 4,5 at 3.
        levels = {0: 3, 1: 3, 2: 2, 3: 2, 4: 3, 5: 3}
        assert reconstruct_state(levels, 1) == (2, 2)

    def test_reconstruct_with_lost_boundary_bucket(self):
        levels = {0: 3, 1: 3, 3: 2, 4: 3, 5: 3}  # bucket 2 (pointer) lost
        n, i = reconstruct_state(levels, 1)
        assert i == 2
        assert n in (2, 3)  # best effort without the boundary witness

    def test_reconstruct_empty_raises(self):
        with pytest.raises(RecoveryError):
            reconstruct_state({}, 1)


class TestSelfDetectedRecovery:
    def test_rejoin_current(self):
        file, _ = build_file()
        server = file.data_servers()[1]
        reply = server.call(f"{file.file_id}.coord", "rejoin",
                            {"node": server.node_id})
        assert reply["role"] == "current"

    def test_rejoin_after_replacement(self):
        file, _ = build_file()
        old_server = file.data_servers()[1]
        node = file.fail_data_bucket(1)
        file.recover([node])
        # The old server object was replaced; simulate its restart by
        # registering it under a probe id and asking about its old role.
        old_server.node_id = "f.old-d1"
        file.network.register(old_server)
        reply = old_server.call("f.coord", "rejoin", {"node": "f.d1"})
        assert reply["role"] == "spare"


class TestParseNodeId:
    def test_cases(self):
        assert parse_node_id("f", "f.d12") == ("data", 12)
        assert parse_node_id("f", "f.p3.1") == ("parity", 3, 1)
        assert parse_node_id("f", "f.coord") is None
        assert parse_node_id("f", "g.d1") is None
        assert parse_node_id("f", "f.client0") is None
        assert parse_node_id("f", "f.p3") is None


class TestRecoveryCosts:
    def test_single_bucket_recovery_message_shape(self):
        """Messages ≈ 2*(survivors dumped) + 1 load, content ∝ b."""
        file, _ = build_file(k=1, count=400, capacity=16)
        node = file.fail_data_bucket(0)
        with file.stats.measure("recovery") as window:
            file.recover([node])
        m, k = 4, 1
        # dumps: (m-1 data + k parity) calls = 2 msgs each; 1 bulk load.
        assert window.messages == 2 * (m - 1 + k) + 1

    def test_xor_fast_path_used_for_single_loss(self):
        """f=1 with parity 0 alive decodes by XOR (no matrix inversion)."""
        from repro.rs import decoder

        file, _ = build_file(k=1)
        decoder._decode_matrix.cache_clear()
        node = file.fail_data_bucket(0)
        file.recover([node])
        assert decoder._decode_matrix.cache_info().misses == 0
