"""Coordinator high availability: leases, takeover, resumable intents.

The coordinator is LH*RS's one singleton; these tests kill it — cleanly
between operations and mid-split / mid-merge / mid-raise / mid-recovery
via the armed crash points — and check a standby replays the journal,
assumes the ``<file>.coord`` identity, rolls open intents forward, and
that clients fail over without losing a single record.
"""

import pytest

from repro.core import (
    CoordinatorCrashed,
    LHRSConfig,
    LHRSFile,
    RecoveryError,
)
from repro.core.group import parity_node
from repro.sim.faults import DEFAULT_PROTECTED_KINDS, FaultPlane
from repro.sim.rng import make_rng


def ha_file(replicas=1, **overrides) -> LHRSFile:
    defaults = dict(
        group_size=2,
        availability=1,
        bucket_capacity=8,
        coordinator_replicas=replicas,
        heartbeat_interval=3.0,
        lease_timeout=9.0,
        journal_checkpoint_interval=4,
    )
    defaults.update(overrides)
    return LHRSFile(LHRSConfig(**defaults))


def load(file: LHRSFile, count: int, start: int = 0) -> None:
    for key in range(start, start + count):
        file.insert(key, bytes([key % 251]) * 8)


def assert_intact(file: LHRSFile, count: int) -> None:
    missing = [k for k in range(count) if not file.search(k).found]
    assert missing == []
    assert file.verify_parity_consistency() == []
    assert file.check_reconstructed_state()


# ----------------------------------------------------------------------
# replication and leases
# ----------------------------------------------------------------------
class TestReplication:
    def test_standbys_mirror_the_journal_synchronously(self):
        file = ha_file(replicas=2)
        load(file, 60)
        primary = file.rs_coordinator
        assert primary.journal.last_lsn > 0
        for standby in file.standbys:
            assert standby.journal.last_lsn == primary.journal.last_lsn
            assert standby.journal.gaps() == []

    def test_checkpoints_land_in_parity_headers(self):
        file = ha_file(replicas=1)
        load(file, 60)
        file.rs_coordinator.checkpoint_to_parity()
        server = file.network.nodes[parity_node("f", 0, 0)]
        checkpoint = server.coord_checkpoint
        assert checkpoint is not None
        assert (checkpoint["n"], checkpoint["i"]) == (
            file.rs_coordinator.state.as_tuple()
        )

    def test_no_replicas_means_no_ha_traffic(self):
        file = ha_file(replicas=0)
        load(file, 40)
        kinds = file.network.stats.total.by_kind
        assert not any(k.startswith("coord.") for k in kinds)


class TestLeaseTakeover:
    def test_lease_expiry_promotes_a_standby(self):
        file = ha_file(replicas=1)
        load(file, 60)
        old = file.rs_coordinator
        expected = old.state.as_tuple()
        levels = dict(old.group_levels)
        file.fail_coordinator()
        new = file.await_takeover()
        assert new is not old
        assert new.node_id == "f.coord"
        assert new.state.as_tuple() == expected
        assert new.group_levels == levels
        assert new.term == old.term + 1
        assert sum(s.takeovers for s in file.standbys) == 1
        assert_intact(file, 60)

    def test_file_keeps_growing_under_the_new_primary(self):
        file = ha_file(replicas=1)
        load(file, 60)
        file.fail_coordinator()
        file.await_takeover()
        load(file, 120, start=60)  # forces splits through the new primary
        assert_intact(file, 180)

    def test_repeated_coordinator_kills(self):
        file = ha_file(replicas=2)
        load(file, 60)
        for round_ in range(3):
            file.fail_coordinator()
            file.await_takeover()
            load(file, 20, start=60 + 20 * round_)
        assert sum(s.takeovers for s in file.standbys) == 3
        assert_intact(file, 120)

    def test_whois_pull_path_promotes_for_a_blocked_client(self):
        """A client that needs the (dark) coordinator before any lease
        monitor fires drives succession through coord.whois: the standby
        reports the remaining lease, the client sits it out, the monitor
        promotes, the report is replayed against the new primary."""
        file = ha_file(replicas=1, lease_timeout=9.0)
        load(file, 60)
        key = next(
            k for k in range(60) if file.find_bucket_of(k) == 0
        )
        file.fail_data_bucket(0)
        file.fail_coordinator()
        # The search hits the dead bucket; report.unavailable needs the
        # coordinator, which is dark — the whois pull path must carry
        # the op through the takeover (degraded read + bucket rebuild).
        outcome = file.search(key)
        assert outcome.found
        assert sum(s.takeovers for s in file.standbys) == 1
        assert file.network.is_available("f.d0")

    def test_takeover_without_journal_uses_survivor_probe(self):
        """A standby with an empty journal (checkpoints unreachable too)
        still reconstructs (n, i) A6-style from the data buckets."""
        from repro.core.journal import CoordinatorJournal

        file = ha_file(replicas=1)
        load(file, 60)
        expected = file.rs_coordinator.state.as_tuple()
        levels = dict(file.rs_coordinator.group_levels)
        standby = file.standbys[0]
        standby.journal = CoordinatorJournal()  # amnesiac replica
        for server in file.parity_servers():
            server.coord_checkpoint = None
        file.fail_coordinator()
        new = file.await_takeover()
        assert new.state.as_tuple() == expected
        assert new.group_levels == levels
        assert_intact(file, 60)


# ----------------------------------------------------------------------
# crash points: resumable restructuring
# ----------------------------------------------------------------------
class TestResumableIntents:
    def test_crash_mid_split_resumes_after_takeover(self):
        file = ha_file(replicas=1)
        load(file, 60)
        file.rs_coordinator.arm_crash("split.mid")
        key = 60
        while file.network.is_available("f.coord"):
            file.insert(key, b"x" * 8)
            key += 1
            assert key < 500, "split.mid never fired"
        new = file.await_takeover()
        assert [r["op"] for r in new.takeover_resumes] == ["split"]
        assert new.journal.replay().open_intents == []
        assert_intact(file, key)

    def test_crash_mid_merge_resumes_after_takeover(self):
        file = ha_file(replicas=1)
        load(file, 120)
        before = file.bucket_count
        file.rs_coordinator.arm_crash("merge.mid")
        with pytest.raises(CoordinatorCrashed):
            file.rs_coordinator.merge_once()
        new = file.await_takeover()
        assert [r["op"] for r in new.takeover_resumes] == ["merge"]
        assert file.bucket_count == before - 1
        assert_intact(file, 120)

    def test_crash_mid_raise_aborts_and_redoes(self):
        file = ha_file(replicas=1)
        load(file, 40)
        file.rs_coordinator.arm_crash("raise.mid")
        with pytest.raises(CoordinatorCrashed):
            file.rs_coordinator.raise_group_level(0, 2)
        new = file.await_takeover()
        assert [r["op"] for r in new.takeover_resumes] == ["raise"]
        assert new.group_level(0) == 2
        assert_intact(file, 40)

    def test_crash_mid_recovery_resumes_after_takeover(self):
        file = ha_file(replicas=1, availability=2, bucket_capacity=16)
        load(file, 40)
        before = file.census_with_ranks()
        file.rs_coordinator.arm_crash("recover.mid")
        file.failures.crash(["f.d0"])
        with pytest.raises(CoordinatorCrashed):
            file.recover(["f.d0"])
        new = file.await_takeover()
        assert [r["op"] for r in new.takeover_resumes] == ["recover"]
        assert file.network.is_available("f.d0")
        assert file.census_with_ranks() == before
        assert_intact(file, 40)

    def test_byte_equal_state_after_mid_split_takeover(self):
        """The acceptance-criteria check in miniature: the standby's
        reconstructed (n, i) and group-level map byte-equal the journal
        truth."""
        import json

        file = ha_file(replicas=1)
        load(file, 60)
        file.rs_coordinator.arm_crash("split.mid")
        key = 60
        while file.network.is_available("f.coord"):
            file.insert(key, b"x" * 8)
            key += 1
        new = file.await_takeover()
        replayed = new.journal.replay()
        live = json.dumps(
            {
                "n": new.state.n,
                "i": new.state.i,
                "group_levels": {
                    str(g): l for g, l in sorted(new.group_levels.items())
                },
            },
            sort_keys=True,
        ).encode()
        truth = json.dumps(
            {
                "n": replayed.n,
                "i": replayed.i,
                "group_levels": {
                    str(g): l
                    for g, l in sorted(replayed.group_levels.items())
                },
            },
            sort_keys=True,
        ).encode()
        assert live == truth


# ----------------------------------------------------------------------
# hardened file-state recovery (satellite)
# ----------------------------------------------------------------------
class TestHardenedFileStateRecovery:
    def test_unreachable_buckets_filled_from_parity_checkpoint(self):
        file = ha_file(replicas=1, availability=2, bucket_capacity=8)
        load(file, 80)
        expected = file.rs_coordinator.state.as_tuple()
        file.rs_coordinator.checkpoint_to_parity()
        # Kill a couple of data buckets WITHOUT recovering them: the
        # survivor probe alone may still pin the state, but the point is
        # the missing levels come from the checkpoint ghost.
        file.network.fail("f.d0")
        file.network.fail("f.d1")
        assert file.reconstruct_file_state() == expected

    def test_total_blackout_raises_typed_error_naming_evidence(self):
        file = ha_file(replicas=0, availability=1, bucket_capacity=32)
        load(file, 20)
        for server in file.data_servers():
            file.network.fail(server.node_id)
        for server in file.parity_servers():
            file.network.fail(server.node_id)
        with pytest.raises(RecoveryError) as excinfo:
            file.reconstruct_file_state()
        text = str(excinfo.value)
        assert "missing evidence" in text
        assert "data buckets" in text

    def test_survivors_alone_still_reconstruct(self):
        file = ha_file(replicas=0, availability=1, bucket_capacity=8)
        load(file, 80)
        expected = file.rs_coordinator.state.as_tuple()
        file.network.fail("f.d2")  # no checkpoint exists (replicas=0)
        assert file.reconstruct_file_state() == expected


# ----------------------------------------------------------------------
# probe MTTR accounting is metrics-independent (satellite)
# ----------------------------------------------------------------------
class TestProbeMetricsOff:
    def test_probe_mttr_bookkeeping_without_metrics(self):
        """The MTTR import is module-level: with NO metrics registry
        installed the probe's repair-time bookkeeping must still run
        (down-since tracked, then cleared on recovery) without error."""
        file = ha_file(replicas=0, availability=1, bucket_capacity=32)
        load(file, 20)
        assert file.network.metrics is None
        coordinator = file.rs_coordinator
        file.fail_data_bucket(0)
        coordinator.run_probe_cycle(rounds=2)
        assert file.network.is_available("f.d0")
        assert coordinator._down_since == {}

    def test_probe_mttr_histogram_when_metrics_on(self):
        file = ha_file(replicas=0, availability=1, bucket_capacity=32)
        load(file, 20)
        _, metrics, _ = file.enable_observability(audit=False)
        file.fail_data_bucket(0)
        file.rs_coordinator.run_probe_cycle(rounds=2)
        histogram = metrics.get("probe.mttr")
        assert histogram is not None
        assert histogram.count == 1


# ----------------------------------------------------------------------
# idempotence pins under the fault plane (satellite)
# ----------------------------------------------------------------------
class TestHandlerIdempotence:
    def _unprotect(self, file: LHRSFile, kinds: set[str]) -> FaultPlane:
        """Install a plane that duplicates exactly ``kinds`` (removing
        them from the protected set so the rule can bite)."""
        plane = FaultPlane(
            rng=make_rng(7),
            protected_kinds=DEFAULT_PROTECTED_KINDS - kinds,
        )
        plane.add_rule(kinds=kinds, duplicate=1.0)
        file.network.install_fault_plane(plane)
        return plane

    def test_duplicated_report_unavailable_is_idempotent(self):
        """Every delivery of report.unavailable re-runs recovery; the
        second finds the node healthy and must be a no-op."""
        file = ha_file(replicas=0, availability=1, bucket_capacity=32)
        load(file, 20)
        before = file.census_with_ranks()
        plane = self._unprotect(file, {"report.unavailable"})
        file.fail_data_bucket(0)
        file.network.send(
            "f.client0", "f.coord", "report.unavailable", {"node": "f.d0"}
        )
        assert plane.counters["duplicated"] >= 1
        assert file.network.is_available("f.d0")
        assert file.census_with_ranks() == before
        assert file.verify_parity_consistency() == []

    def test_duplicated_rejoin_is_idempotent(self):
        """rejoin is a pure read of the registry: duplicated delivery
        changes nothing and the reply stays stable."""
        file = ha_file(replicas=0, availability=1, bucket_capacity=32)
        load(file, 20)
        self._unprotect(file, {"rejoin"})
        census = file.census_with_ranks()
        server = file.data_servers()[0]
        first = file.network.call(
            server.node_id, "f.coord", "rejoin", {"node": server.node_id}
        )
        second = file.network.call(
            server.node_id, "f.coord", "rejoin", {"node": server.node_id}
        )
        assert first == second == {"role": "current"}
        assert file.census_with_ranks() == census

    def test_rejoin_of_replaced_server_reports_spare(self):
        file = ha_file(replicas=0, availability=1, bucket_capacity=32)
        load(file, 20)
        self._unprotect(file, {"rejoin"})
        old = file.data_servers()[0]
        file.fail_data_bucket(0)
        file.recover(["f.d0"])  # a spare now carries bucket 0
        reply = file.network.call(
            "f.client0", "f.coord", "rejoin", {"node": old.node_id}
        )
        assert reply["role"] == "spare"
