"""Idempotent Δ-parity: sequence numbers make retransmission safe.

The fold is its own inverse in GF(2^w), so re-applying a Δ silently
corrupts parity.  These tests pin the regression: a retransmitted Δ
changes parity exactly once, a gap triggers a self-reported rebuild,
and whole workloads under duplicating/dropping fault planes end
parity-consistent.
"""

import numpy as np
import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import parity_node
from repro.sim import FaultPlane


def make_file(**overrides) -> LHRSFile:
    defaults = dict(group_size=2, availability=1, bucket_capacity=32)
    defaults.update(overrides)
    return LHRSFile(LHRSConfig(**defaults))


def last_op_of(server, key: int, value: bytes) -> dict:
    """Reconstruct the exact Δ message the server just sent for ``key``."""
    return {
        "op": "insert",
        "key": key,
        "rank": server.ranks[key],
        "pos": server.position,
        "delta": value,
        "length": len(value),
        "seq": server._parity_seq,
    }


class TestDuplicateDelta:
    def test_retransmitted_delta_applies_exactly_once(self):
        file = make_file()
        file.insert(6, b"payload")
        server = file.network.nodes["f.d0"]
        parity = file.network.nodes[parity_node("f", 0, 0)]
        rank = server.ranks[6]
        before = parity.records[rank].parity_bytes(parity.field)

        op = last_op_of(server, 6, b"payload")
        for n in range(1, 4):
            reply = file.network.call(
                server.node_id, parity.node_id, "parity.update", op
            )
            assert reply["status"] == "duplicate"
            assert parity.duplicates_skipped == n
        after = parity.records[rank].parity_bytes(parity.field)
        assert after == before
        assert file.verify_parity_consistency() == []

    def test_gap_triggers_self_reported_rebuild(self):
        file = make_file()
        file.insert(6, b"payload")
        server = file.network.nodes["f.d0"]
        pnode = parity_node("f", 0, 0)

        # A Δ from the future proves earlier traffic was lost: the
        # parity bucket must not apply it, and must get itself rebuilt.
        op = last_op_of(server, 6, b"payload")
        op["seq"] = server._parity_seq + 5
        file.network.send(server.node_id, pnode, "parity.update", op)
        assert file.rs_coordinator.recovery.groups_recovered == 1
        assert file.verify_parity_consistency() == []
        # The rebuilt bucket resumes the channel where the data left it.
        rebuilt = file.network.nodes[pnode]
        assert rebuilt._expected_seq[server.position] == server._parity_seq + 1

    def test_duplicating_fault_plane_whole_workload(self):
        file = make_file(availability=2)
        plane = FaultPlane(rng=np.random.default_rng(5))
        plane.add_rule(kinds={"parity.update"}, duplicate=1.0)
        file.network.install_fault_plane(plane)

        for key in range(60):
            file.insert(key, bytes([key % 251]) * 9)
        for key in range(0, 60, 3):
            file.update(key, b"updated-" + bytes([key % 251]))
        for key in range(0, 60, 5):
            file.delete(key)

        skipped = sum(p.duplicates_skipped for p in file.parity_servers())
        assert skipped > 0  # the duplicates really arrived and were caught
        assert file.verify_parity_consistency() == []

    def test_dropping_fault_plane_heals_via_stale_reports(self):
        file = make_file(availability=1)
        plane = FaultPlane(rng=np.random.default_rng(11))
        plane.add_rule(kinds={"parity.update"}, drop=0.4)
        file.network.install_fault_plane(plane)

        for key in range(50):
            file.insert(key, bytes([key % 251]) * 7)
        # A silent drop only surfaces at the *next* Δ on that channel;
        # one clean pass over every key closes every channel.
        plane.clear_rules()
        for key in range(50):
            file.update(key, b"final-" + bytes([key % 251]))
        assert file.rs_coordinator.recovery.groups_recovered >= 1
        assert file.verify_parity_consistency() == []

    def test_ack_mode_retries_survive_transient_faults(self):
        file = make_file(availability=2, parity_ack=True,
                         retry_attempts=6, retry_backoff_base=0.25)
        plane = FaultPlane(rng=np.random.default_rng(23))
        # In ack mode the Δ is a call: drops and transient failures both
        # surface at the sender, which retries under backoff.
        plane.add_rule(kinds={"parity.update"}, drop=0.2, fail=0.2)
        file.network.install_fault_plane(plane)

        for key in range(60):
            file.insert(key, bytes([key % 251]) * 5)
        for key in range(0, 60, 2):
            file.update(key, b"v2-" + bytes([key % 251]))
        assert file.verify_parity_consistency() == []

    def test_merge_then_resplit_resets_the_channel(self):
        # A merge dissolves the last bucket; a later split re-creates it
        # as a fresh server whose sequence counter restarts.  The
        # coordinator's parity.reset must have closed the old channel,
        # or every Δ from the successor is skipped as a retransmission.
        file = make_file(group_size=4, availability=1, bucket_capacity=4)
        for key in range(24):
            file.insert(key, bytes([key % 251]) * 6)
        assert file.bucket_count > 5
        while file.bucket_count > 5:
            file.rs_coordinator.merge_once()
        dissolved = file.bucket_count  # the next split re-creates this
        assert file.verify_parity_consistency() == []

        for key in range(100, 140):
            file.insert(key, bytes([key % 251]) * 6)
        assert file.bucket_count > dissolved
        assert file.verify_parity_consistency() == []
        parity = file.network.nodes[parity_node("f", 1, 0)]
        assert parity.duplicates_skipped == 0

    def test_recovered_data_bucket_resumes_sequence(self):
        file = make_file(availability=1)
        for key in range(40):
            file.insert(key, bytes([key % 251]) * 6)
        server = file.network.nodes["f.d0"]
        seq_before = server._parity_seq
        assert seq_before > 0

        file.recover([file.fail_data_bucket(0)])
        rebuilt = file.network.nodes["f.d0"]
        assert rebuilt is not server
        assert rebuilt._parity_seq == seq_before
        # The resumed stream keeps flowing past the surviving parity's
        # expectations without tripping duplicate or gap detection.
        file.insert(1006, b"after-recovery")
        file.update(2, b"post")
        assert file.verify_parity_consistency() == []
        parity = file.network.nodes[parity_node("f", 0, 0)]
        assert parity.gaps_detected == 0
