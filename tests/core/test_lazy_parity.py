"""Tests of the batched (lazy) parity mode and its vulnerability window."""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng


def build(batch=4, k=1, capacity=8, count=200, seed=12):
    file = LHRSFile(
        LHRSConfig(
            group_size=4, availability=k, bucket_capacity=capacity,
            parity_batch_size=batch,
        )
    )
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big"))
    return file, keys


class TestLazyMode:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LHRSConfig(parity_batch_size=0)

    def test_flush_restores_consistency(self):
        file, _ = build(batch=8)
        # Mid-stream, some queues are non-empty -> oracle sees staleness.
        queued = sum(len(s._parity_queue) for s in file.data_servers())
        if queued == 0:
            file.insert(10**9 + 1, b"force-a-queue-entry")
        file.flush_all_parity()
        assert file.verify_parity_consistency() == []
        assert all(not s._parity_queue for s in file.data_servers())

    def test_amortized_mutation_cost(self):
        """B-batching takes the steady-state cost from 1+k toward 1+k/B."""
        costs = {}
        for batch in (1, 4):
            file, keys = build(batch=batch, k=2, capacity=16, count=400)
            for key in keys:
                file.search(key)  # converge
            state = file.coordinator.state
            safe = [
                key for key in keys
                if file.client.image.address(key) == state.address(key)
            ][:120]
            with file.stats.measure("w") as window:
                for key in safe:
                    file.update(key, b"u" * 8)
            costs[batch] = window.messages / len(safe)
        assert costs[1] == pytest.approx(3.0, abs=0.3)
        assert costs[4] < costs[1] - 0.8  # ~1 + 2/4 = 1.5 plus noise

    def test_crash_loses_at_most_queue(self):
        """The vulnerability window: unflushed mutations on the crashed
        bucket revert; everything flushed survives."""
        file, keys = build(batch=64, k=1, capacity=32, count=120)
        file.flush_all_parity()
        victim_bucket = 0
        victims = [k for k in keys if file.find_bucket_of(k) == victim_bucket]
        flushed_value = victims[0].to_bytes(8, "big")
        # Mutate after the flush: this update sits in the queue only.
        file.update(victims[0], b"unflushed-update!")
        server = file.data_servers()[victim_bucket]
        assert server._parity_queue  # still queued
        node = file.fail_data_bucket(victim_bucket)
        file.recover([node])
        # The record reverted to its last-flushed state...
        outcome = file.search(victims[0])
        assert outcome.found
        assert outcome.value == flushed_value
        # ...and the file is self-consistent again.
        assert file.verify_parity_consistency() == []

    def test_survivors_flushed_before_decode(self):
        """Queued Δs on *surviving* group members must not corrupt the
        decode of a lost sibling."""
        file, keys = build(batch=64, k=1, capacity=32, count=120)
        file.flush_all_parity()
        # Queue fresh mutations on the survivors (buckets 1..3).
        for bucket in (1, 2, 3):
            sample = [k for k in keys if file.find_bucket_of(k) == bucket][:3]
            for key in sample:
                file.update(key, b"queued-on-survivor")
        victims = {
            k: file.search(k).value
            for k in keys if file.find_bucket_of(k) == 0
        }
        node = file.fail_data_bucket(0)
        file.recover([node])
        for key, value in victims.items():
            assert file.search(key).value == value
        assert file.verify_parity_consistency() == []

    def test_degraded_read_sees_flushed_state(self):
        file, keys = build(batch=16, k=1, capacity=32, count=120)
        file.flush_all_parity()
        target = next(k for k in keys if file.find_bucket_of(k) == 2)
        file.fail_data_bucket(2)
        found, payload = file.recover_record(target)
        assert found and payload == target.to_bytes(8, "big")

    def test_structural_ops_flush_first(self):
        """Splits flush the queue so ordering stays FIFO at parity."""
        file, _ = build(batch=64, k=1, capacity=8, count=60)
        # Some queue entries exist; force a split.
        file.coordinator.split_once()
        file.flush_all_parity()
        assert file.verify_parity_consistency() == []

    def test_explicit_flush_handler(self):
        file, _ = build(batch=64, k=1, capacity=32, count=30)
        server = next(s for s in file.data_servers() if s._parity_queue)
        reply = file.client.call(server.node_id, "parity.flush")
        assert reply["flushed"] > 0
        assert not server._parity_queue
