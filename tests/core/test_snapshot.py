"""Tests for whole-file snapshot and restore."""

import pytest

from repro.core import AvailabilityPolicy, LHRSConfig, LHRSFile
from repro.core.snapshot import from_json, restore_file, snapshot_file, to_json
from repro.sim.rng import make_rng


def build(count=250, seed=31, **kw):
    defaults = dict(group_size=4, availability=2, bucket_capacity=8)
    defaults.update(kw)
    file = LHRSFile(LHRSConfig(**defaults))
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * 2)
    return file, keys


class TestRoundtrip:
    def test_restore_is_byte_identical(self):
        original, _ = build()
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.census_with_ranks() == original.census_with_ranks()
        assert restored.levels_census() == original.levels_census()
        assert restored.group_levels() == original.group_levels()
        assert restored.coordinator.state.as_tuple() == (
            original.coordinator.state.as_tuple()
        )
        assert restored.verify_parity_consistency() == []

    def test_restored_file_fully_operational(self):
        original, keys = build()
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.search(keys[0]).found
        restored.insert(10**9 + 5, b"post-restore")
        restored.update(keys[1], b"changed")
        restored.delete(keys[2])
        assert restored.verify_parity_consistency() == []
        # And it can still recover from failures.
        node = restored.fail_data_bucket(1)
        restored.recover([node])
        assert restored.verify_parity_consistency() == []

    def test_json_roundtrip(self):
        original, _ = build(count=120)
        text = to_json(snapshot_file(original))
        assert isinstance(text, str)
        restored = restore_file(from_json(text), file_id="j")
        assert restored.census_with_ranks() == original.census_with_ranks()
        assert restored.verify_parity_consistency() == []

    def test_snapshot_flushes_lazy_queues(self):
        original, keys = build(parity_batch_size=16)
        original.update(keys[0], b"queued-then-snapshotted")
        snap = snapshot_file(original)
        restored = restore_file(snap, file_id="r")
        assert restored.search(keys[0]).value == b"queued-then-snapshotted"
        assert restored.verify_parity_consistency() == []

    def test_scalable_levels_survive(self):
        policy = AvailabilityPolicy.scalable(
            base_level=1, first_threshold=4, growth=4, max_level=3
        )
        original, _ = build(count=400, availability=1, policy=policy)
        assert max(original.group_levels().values()) >= 2
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.group_levels() == original.group_levels()
        assert restored.verify_parity_consistency() == []

    def test_gf16_snapshot(self):
        original, _ = build(field_width=16, count=150)
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.census_with_ranks() == original.census_with_ranks()
        assert restored.verify_parity_consistency() == []


class TestValidation:
    def test_version_check(self):
        original, _ = build(count=30)
        snap = snapshot_file(original)
        snap["version"] = 99
        with pytest.raises(ValueError, match="version"):
            restore_file(snap)

    def test_state_consistency_check(self):
        original, _ = build(count=30)
        snap = snapshot_file(original)
        snap["state"]["n"] += 1
        with pytest.raises(ValueError, match="split count"):
            restore_file(snap)
