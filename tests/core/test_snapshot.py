"""Tests for whole-file snapshot and restore."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AvailabilityPolicy, LHRSConfig, LHRSFile
from repro.core.snapshot import from_json, restore_file, snapshot_file, to_json
from repro.sim.rng import make_rng


def build(count=250, seed=31, **kw):
    defaults = dict(group_size=4, availability=2, bucket_capacity=8)
    defaults.update(kw)
    file = LHRSFile(LHRSConfig(**defaults))
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * 2)
    return file, keys


class TestRoundtrip:
    def test_restore_is_byte_identical(self):
        original, _ = build()
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.census_with_ranks() == original.census_with_ranks()
        assert restored.levels_census() == original.levels_census()
        assert restored.group_levels() == original.group_levels()
        assert restored.coordinator.state.as_tuple() == (
            original.coordinator.state.as_tuple()
        )
        assert restored.verify_parity_consistency() == []

    def test_restored_file_fully_operational(self):
        original, keys = build()
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.search(keys[0]).found
        restored.insert(10**9 + 5, b"post-restore")
        restored.update(keys[1], b"changed")
        restored.delete(keys[2])
        assert restored.verify_parity_consistency() == []
        # And it can still recover from failures.
        node = restored.fail_data_bucket(1)
        restored.recover([node])
        assert restored.verify_parity_consistency() == []

    def test_json_roundtrip(self):
        original, _ = build(count=120)
        text = to_json(snapshot_file(original))
        assert isinstance(text, str)
        restored = restore_file(from_json(text), file_id="j")
        assert restored.census_with_ranks() == original.census_with_ranks()
        assert restored.verify_parity_consistency() == []

    def test_snapshot_flushes_lazy_queues(self):
        original, keys = build(parity_batch_size=16)
        original.update(keys[0], b"queued-then-snapshotted")
        snap = snapshot_file(original)
        restored = restore_file(snap, file_id="r")
        assert restored.search(keys[0]).value == b"queued-then-snapshotted"
        assert restored.verify_parity_consistency() == []

    def test_scalable_levels_survive(self):
        policy = AvailabilityPolicy.scalable(
            base_level=1, first_threshold=4, growth=4, max_level=3
        )
        original, _ = build(count=400, availability=1, policy=policy)
        assert max(original.group_levels().values()) >= 2
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.group_levels() == original.group_levels()
        assert restored.verify_parity_consistency() == []

    def test_gf16_snapshot(self):
        original, _ = build(field_width=16, count=150)
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.census_with_ranks() == original.census_with_ranks()
        assert restored.verify_parity_consistency() == []


class TestDurableRoundtrip:
    def test_snapshot_carries_durability_config_and_channel_state(self):
        original, _ = build(count=120, durability=True,
                            wal_fsync_interval=4)
        snap = snapshot_file(original)
        assert snap["config"]["durability"] is True
        assert snap["config"]["wal_fsync_interval"] == 4
        # Δ-channel high-water marks travel with the image.
        assert any(b["parity_seq"] > 0 for b in snap["data_buckets"])
        assert any(p["expected_seqs"] for p in snap["parity_buckets"])

    def test_restored_durable_file_survives_restart_with_catchup(self):
        """The restored servers' disks hold a restart-consistent image
        from the load: an immediate crash + heal must go through delta
        catch-up, not a full rebuild."""
        original, keys = build(count=150, durability=True,
                               wal_fsync_interval=4)
        restored = restore_file(snapshot_file(original), file_id="r")
        tracer, _, _ = restored.enable_observability()
        restored.failures.crash(["r.d1"])
        restored.failures.heal(["r.d1"])
        assert tracer.counts.get("catchup.fallback") is None
        assert tracer.counts.get("bucket.restart") == 1
        assert restored.search(keys[0]).found
        assert restored.verify_parity_consistency() == []

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(20, 160),
        durability=st.booleans(),
        stripe=st.booleans(),
        capacity=st.sampled_from([4, 8, 16]),
    )
    def test_roundtrip_property(self, seed, count, durability, stripe,
                                capacity):
        """Any (workload, config) point round-trips: census, ranks,
        levels and parity all byte-identical — StripeStore and the
        durable plane included."""
        original, keys = build(
            count=count, seed=seed, bucket_capacity=capacity,
            durability=durability, parity_stripe_store=stripe,
        )
        rng = make_rng(seed + 1)
        for key in rng.choice(keys, size=min(10, count), replace=False):
            original.update(int(key), b"mutated")
        for key in rng.choice(keys, size=min(5, count), replace=False):
            original.delete(int(key))
        restored = restore_file(snapshot_file(original), file_id="r")
        assert restored.census_with_ranks() == original.census_with_ranks()
        assert restored.levels_census() == original.levels_census()
        assert restored.verify_parity_consistency() == []
        # the restored image re-snapshots to the same logical content
        snap = snapshot_file(original)
        resnap = snapshot_file(restored)
        assert [b["records"] for b in resnap["data_buckets"]] == [
            b["records"] for b in snap["data_buckets"]
        ]
        assert [b["parity_seq"] for b in resnap["data_buckets"]] == [
            b["parity_seq"] for b in snap["data_buckets"]
        ]


class TestValidation:
    def test_version_check(self):
        original, _ = build(count=30)
        snap = snapshot_file(original)
        snap["version"] = 99
        with pytest.raises(ValueError, match="version"):
            restore_file(snap)

    def test_state_consistency_check(self):
        original, _ = build(count=30)
        snap = snapshot_file(original)
        snap["state"]["n"] += 1
        with pytest.raises(ValueError, match="split count"):
            restore_file(snap)
