"""Property-based whole-system tests (DESIGN.md invariants 2, 3, 4).

Hypothesis drives random operation sequences interleaved with random
≤ k-per-group failures and recoveries; after every burst the file must
be parity-consistent and equal to an oracle dict.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng

KEYS = st.integers(min_value=0, max_value=4000)
PAYLOADS = st.binary(min_size=0, max_size=40)


def operations():
    return st.lists(
        st.one_of(
            st.tuples(st.just("insert"), KEYS, PAYLOADS),
            st.tuples(st.just("update"), KEYS, PAYLOADS),
            st.tuples(st.just("delete"), KEYS, st.just(b"")),
        ),
        min_size=1,
        max_size=120,
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=operations(), m=st.sampled_from([2, 4]), k=st.sampled_from([1, 2]),
       compact=st.booleans())
def test_any_operation_sequence_keeps_parity_consistent(ops, m, k, compact):
    cfg = LHRSConfig(
        group_size=m, availability=k, bucket_capacity=4, compact_ranks=compact
    )
    file = LHRSFile(cfg)
    oracle: dict[int, bytes] = {}
    for action, key, payload in ops:
        if action == "insert":
            file.insert(key, payload)
            oracle[key] = payload
        elif action == "update":
            file.update(key, payload)
            oracle[key] = payload
        else:
            file.delete(key)
            oracle.pop(key, None)
    assert file.verify_parity_consistency() == []
    assert file.total_records() == len(oracle)
    for key, payload in list(oracle.items())[:20]:
        outcome = file.search(key)
        assert outcome.found and outcome.value == payload


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    ops=operations(),
    k=st.sampled_from([1, 2]),
    merges=st.integers(min_value=0, max_value=4),
)
def test_property_merges_interleaved_with_operations(ops, k, merges):
    """Invariants hold through arbitrary op sequences with merges mixed
    in (every Nth op triggers a shrink attempt when allowed)."""
    cfg = LHRSConfig(group_size=4, availability=k, bucket_capacity=4)
    file = LHRSFile(cfg)
    oracle: dict[int, bytes] = {}
    stride = max(len(ops) // (merges + 1), 1)
    for index, (action, key, payload) in enumerate(ops):
        if action == "insert":
            file.insert(key, payload)
            oracle[key] = payload
        elif action == "update":
            file.update(key, payload)
            oracle[key] = payload
        else:
            file.delete(key)
            oracle.pop(key, None)
        if merges and index % stride == stride - 1:
            if file.bucket_count > file.config.group_size:
                file.rs_coordinator.merge_once()
    assert file.verify_parity_consistency() == []
    assert file.total_records() == len(oracle)
    for key, payload in list(oracle.items())[:15]:
        outcome = file.search(key)
        assert outcome.found and outcome.value == payload


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=operations(), k=st.sampled_from([1, 2]))
def test_property_snapshot_restore_identity(ops, k):
    """Any reachable file state snapshots and restores byte-identically,
    and the restored file passes every consistency oracle."""
    from repro.core.snapshot import restore_file, snapshot_file

    cfg = LHRSConfig(group_size=4, availability=k, bucket_capacity=4)
    file = LHRSFile(cfg)
    for action, key, payload in ops:
        if action == "insert":
            file.insert(key, payload)
        elif action == "update":
            file.update(key, payload)
        else:
            file.delete(key)
    restored = restore_file(snapshot_file(file), file_id="r")
    assert restored.census_with_ranks() == file.census_with_ranks()
    assert restored.levels_census() == file.levels_census()
    assert restored.verify_parity_consistency() == []


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    ops=operations(),
    k=st.sampled_from([1, 2]),
    failure_seed=st.integers(min_value=0, max_value=2**31),
    data=st.data(),
)
def test_random_failures_within_k_always_recover_exactly(
    ops, k, failure_seed, data
):
    cfg = LHRSConfig(group_size=4, availability=k, bucket_capacity=4)
    file = LHRSFile(cfg)
    oracle: dict[int, bytes] = {}
    for action, key, payload in ops:
        if action == "insert":
            file.insert(key, payload)
            oracle[key] = payload
        elif action == "update":
            file.update(key, payload)
            oracle[key] = payload
        else:
            file.delete(key)
            oracle.pop(key, None)

    # Fail up to k members (data and/or parity) in up to 3 random groups.
    rng = make_rng(failure_seed)
    groups = sorted(file.group_levels())
    chosen = [g for g in groups if rng.random() < 0.5][:3] or groups[:1]
    failed: list[str] = []
    for g in chosen:
        members = [
            f"{file.file_id}.d{b}"
            for b in range(g * 4, min((g + 1) * 4, file.bucket_count))
        ] + [f"{file.file_id}.p{g}.{i}" for i in range(k)]
        count = int(rng.integers(1, k + 1))
        picks = rng.choice(len(members), size=min(count, len(members)), replace=False)
        for i in picks:
            file.network.fail(members[i])
            failed.append(members[i])

    before = file.census_with_ranks()
    file.recover(failed)
    assert file.census_with_ranks() == before
    assert file.verify_parity_consistency() == []
    for key, payload in list(oracle.items())[:10]:
        outcome = file.search(key)
        assert outcome.found and outcome.value == payload
