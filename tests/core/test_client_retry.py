"""Client-side retry/backoff and write acknowledgements.

The escalation ladder: retry under backoff → report to the coordinator
(degraded read / recover-then-deliver) → typed ``OperationFailed`` only
when the budget truly runs out.
"""

import numpy as np
import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.sdds.client import OperationFailed
from repro.sim import FaultPlane


def acked_file(**overrides) -> LHRSFile:
    defaults = dict(
        group_size=2, availability=1, bucket_capacity=32,
        client_acks=True, retry_attempts=5, retry_backoff_base=1.0,
    )
    defaults.update(overrides)
    return LHRSFile(LHRSConfig(**defaults))


def plane_for(file, **rule) -> FaultPlane:
    plane = FaultPlane(rng=np.random.default_rng(9))
    plane.add_rule(**rule)
    file.network.install_fault_plane(plane)
    return plane


class TestWriteAcks:
    def test_backoff_outlives_transient_drop_window(self):
        file = acked_file()
        # Every insert to d1 is dropped for the next 3 clock units; the
        # client's exponential backoff (1+2+4+...) waits the fault out.
        until = file.network.now + 3.0
        plane_for(file, kinds={"insert"}, recipient="f.d1", drop=1.0,
                  until=until)
        file.insert(5, b"survivor")  # 5 -> bucket 1
        assert file.search(5).value == b"survivor"
        assert file.verify_parity_consistency() == []

    def test_unacked_write_raises_typed_error(self):
        file = acked_file(retry_attempts=3)
        plane_for(file, kinds={"insert"}, drop=1.0)
        with pytest.raises(OperationFailed) as err:
            file.insert(5, b"doomed")
        assert err.value.kind == "insert"
        assert err.value.key == 5
        assert err.value.attempts == 3

    def test_silent_drop_invisible_without_acks(self):
        # Documents the contract: fire-and-forget mode cannot see drops.
        file = acked_file(client_acks=False)
        plane_for(file, kinds={"insert"}, drop=1.0)
        file.insert(5, b"ghost")  # no error -- and no record
        plane = file.network.fault_plane
        plane.clear_rules()
        assert not file.search(5).found

    def test_retry_is_value_idempotent(self):
        file = acked_file()
        # Acks are dropped for a while: the server applies every retry,
        # but re-applying the same value leaves data and parity intact.
        until = file.network.now + 2.0
        plane_for(file, kinds={"op.ack"}, drop=1.0, until=until)
        file.insert(5, b"once")
        file.update(5, b"twice")
        assert file.search(5).value == b"twice"
        assert file.verify_parity_consistency() == []

    def test_crashed_bucket_served_via_coordinator(self):
        # NodeUnavailable escalates past retries straight to the
        # coordinator, which recovers the bucket and delivers the op.
        file = acked_file()
        for key in range(20):
            file.insert(key, bytes([key]) * 4)
        file.fail_data_bucket(1)
        file.insert(101, b"through-recovery")  # 101 -> bucket 1
        assert file.network.is_available("f.d1")
        assert file.search(101).value == b"through-recovery"
        assert file.verify_parity_consistency() == []


class TestSearchRetry:
    def test_lost_reply_is_retried(self):
        file = acked_file()
        file.insert(5, b"needle")
        until = file.network.now + 2.0
        plane_for(file, kinds={"search.result"}, drop=1.0, until=until)
        outcome = file.search(5)
        assert outcome.found and outcome.value == b"needle"

    def test_delayed_reply_satisfies_the_waiting_search(self):
        file = acked_file()
        file.insert(5, b"needle")
        plane_for(file, kinds={"search.result"}, delay=1.0, delay_window=2.0)
        # The reply matures while the client backs off; the single
        # request id spans attempts, so the late reply still matches.
        outcome = file.search(5)
        assert outcome.found and outcome.value == b"needle"

    def test_search_budget_exhaustion_is_typed(self):
        file = acked_file(retry_attempts=2)
        file.insert(5, b"needle")
        plane_for(file, kinds={"search"}, drop=1.0)
        with pytest.raises(OperationFailed) as err:
            file.search(5)
        assert err.value.kind == "search"
        assert err.value.attempts == 2

    def test_degraded_read_when_bucket_down(self):
        file = acked_file()
        for key in range(20):
            file.insert(key, bytes([key]) * 4)
        served_before = file.rs_coordinator.recovery.degraded_reads_served
        file.fail_data_bucket(0)
        outcome = file.search(4)  # 4 -> bucket 0
        assert outcome.found and outcome.value == bytes([4]) * 4
        assert (
            file.rs_coordinator.recovery.degraded_reads_served
            == served_before + 1
        )
