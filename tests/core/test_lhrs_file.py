"""Integration tests of the LH*RS file in failure-free operation.

The paper's core failure-free claims: key search and scan cost exactly
what LH* charges (parity untouched); an insert costs 1 + k messages; an
update/delete costs 1 + k; parity stays consistent through any growth.
"""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.core.availability import AvailabilityPolicy
from repro.sim.rng import make_rng


def build_file(m=4, k=2, capacity=8, count=300, seed=1, value_bytes=24, **kw):
    cfg = LHRSConfig(
        group_size=m, availability=k, bucket_capacity=capacity, **kw
    )
    file = LHRSFile(cfg)
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * (value_bytes // 8))
    return file, keys


class TestGrowthConsistency:
    def test_parity_consistent_after_growth(self):
        file, _ = build_file()
        assert file.verify_parity_consistency() == []

    def test_every_group_has_its_parity_buckets(self):
        file, _ = build_file()
        levels = file.group_levels()
        from repro.core.group import group_count

        assert len(levels) == group_count(file.bucket_count, 4)
        assert all(level == 2 for level in levels.values())
        assert file.parity_bucket_count() == 2 * len(levels)

    def test_all_records_searchable(self):
        file, keys = build_file()
        for key in keys[::7]:
            assert file.search(key).found

    def test_record_group_members_in_distinct_buckets(self):
        """Proposition-1 analogue: within a group, each rank has at most
        one member per bucket and members sit in distinct buckets."""
        file, _ = build_file()
        for server in file.parity_servers():
            if server.index:
                continue
            for record in server.records.values():
                positions = list(record.keys)
                assert len(positions) == len(set(positions))
                assert all(0 <= p < 4 for p in positions)

    def test_rank_sets_dense_with_compaction(self):
        """§4.3 rank compaction keeps each bucket's ranks = {1..size}
        through splits and deletes."""
        file, keys = build_file(compact_ranks=True)
        for key in keys[::4]:
            file.delete(key)
        for server in file.data_servers():
            ranks = sorted(server.ranks.values())
            assert ranks == list(range(1, len(ranks) + 1))
        assert file.verify_parity_consistency() == []

    def test_rank_bookkeeping_without_compaction(self):
        """Without compaction: used ∪ free ranks = {1..counter}."""
        file, keys = build_file()
        for key in keys[::4]:
            file.delete(key)
        for server in file.data_servers():
            used = set(server.ranks.values())
            free = set(server._free_ranks)
            assert not used & free
            assert used | free == set(range(1, server._rank_counter + 1))

    def test_mutations_preserve_consistency(self):
        file, keys = build_file()
        for key in keys[::3]:
            file.update(key, b"updated" * 3)
        for key in keys[::5]:
            file.delete(key)
        assert file.verify_parity_consistency() == []

    def test_k0_degenerates_to_plain_lhstar(self):
        file, keys = build_file(k=0)
        assert file.parity_bucket_count() == 0
        assert file.verify_parity_consistency() == []
        assert all(file.search(k).found for k in keys[::11])


class TestFailureFreeCosts:
    def converge(self, file, keys):
        for key in keys:
            file.search(key)

    def test_search_cost_independent_of_k(self):
        """Failure-free search = LH* search: parity plays no part."""
        costs = {}
        for k in (0, 1, 2, 3):
            file, keys = build_file(k=k, count=200, seed=3)
            self.converge(file, keys)
            with file.stats.measure("s") as window:
                for key in keys[:50]:
                    file.search(key)
            costs[k] = window.messages / 50
        assert costs[0] == costs[1] == costs[2] == costs[3]
        assert costs[0] == pytest.approx(2.0)

    def test_insert_cost_is_one_plus_k(self):
        for k in (0, 1, 2, 3):
            file, keys = build_file(k=k, count=200, seed=3)
            self.converge(file, keys)
            state = file.coordinator.state
            fresh = [
                key for key in range(10**6, 10**6 + 2000)
                if file.client.image.address(key) == state.address(key)
                and len(file.data_servers()[state.address(key)].bucket)
                + 3 < file.config.bucket_capacity
            ][:20]
            assert fresh, "no safe keys found"
            with file.stats.measure("i") as window:
                for key in fresh:
                    file.insert(key, b"x" * 16)
            assert window.messages / len(fresh) == pytest.approx(1 + k)

    def test_update_and_delete_cost_one_plus_k(self):
        k = 2
        file, keys = build_file(k=k, count=200, seed=3)
        self.converge(file, keys)
        state = file.coordinator.state
        # One key per well-filled bucket: deleting it neither overflows
        # nor underflows, so the cost is the bare 1 + k protocol.
        seen_buckets: set[int] = set()
        safe = []
        for key in keys:
            bucket = state.address(key)
            if (
                file.client.image.address(key) == bucket
                and bucket not in seen_buckets
                and len(file.data_servers()[bucket].bucket)
                > file.config.bucket_capacity * 0.25 + 1
            ):
                seen_buckets.add(bucket)
                safe.append(key)
        safe = safe[:20]
        with file.stats.measure("u") as window:
            for key in safe:
                file.update(key, b"y" * 16)
        assert window.messages / len(safe) == pytest.approx(1 + k)
        with file.stats.measure("d") as window:
            for key in safe:
                file.delete(key)
        assert window.messages / len(safe) == pytest.approx(1 + k)

    def test_scan_cost_unaffected_by_parity(self):
        file_k0, _ = build_file(k=0, count=200, seed=3)
        file_k2, _ = build_file(k=2, count=200, seed=3)
        with file_k0.stats.measure("scan") as w0:
            r0 = file_k0.scan()
        with file_k2.stats.measure("scan") as w2:
            r2 = file_k2.scan()
        assert r0.complete and r2.complete
        assert len(r0.records) == len(r2.records) == 200
        # Same bucket count (same inserts/capacity) => same scan cost.
        assert file_k0.bucket_count == file_k2.bucket_count
        assert w0.messages == w2.messages


class TestStorageOverhead:
    def test_parity_buckets_are_k_over_m_of_data(self):
        for m, k in [(4, 1), (4, 2), (8, 1)]:
            file, _ = build_file(m=m, k=k, capacity=16, count=600)
            groups = len(file.group_levels())
            assert file.parity_bucket_count() == k * groups
            ratio = file.parity_bucket_count() / file.bucket_count
            # Allocated overhead ~ k/m (last partial group adds a bit).
            assert ratio == pytest.approx(k / m, rel=0.35)

    def test_byte_overhead_tracks_k_over_m_over_load(self):
        file, _ = build_file(m=4, k=1, capacity=32, count=3000)
        load = file.load_factor()
        expected = (1 / 4) / load
        assert file.storage_overhead() == pytest.approx(expected, rel=0.15)


class TestGroupLevelsAndPolicy:
    def test_fixed_policy_uniform_levels(self):
        file, _ = build_file(k=3, count=200)
        assert set(file.group_levels().values()) == {3}

    def test_scalable_policy_new_groups_higher(self):
        cfg = LHRSConfig(
            group_size=4,
            availability=1,
            bucket_capacity=8,
            policy=AvailabilityPolicy.scalable(
                base_level=1, first_threshold=4, growth=4, max_level=3
            ),
            upgrade_existing_groups=False,
        )
        file = LHRSFile(cfg)
        rng = make_rng(5)
        for key in rng.choice(10**9, size=600, replace=False):
            file.insert(int(key), b"v" * 16)
        levels = file.group_levels()
        assert min(levels.values()) == 1  # early groups stay at birth level
        assert max(levels.values()) >= 2  # later groups born higher
        assert file.verify_parity_consistency() == []

    def test_scalable_policy_eager_upgrade(self):
        cfg = LHRSConfig(
            group_size=4,
            availability=1,
            bucket_capacity=8,
            policy=AvailabilityPolicy.scalable(
                base_level=1, first_threshold=4, growth=4, max_level=3
            ),
            upgrade_existing_groups=True,
        )
        file = LHRSFile(cfg)
        rng = make_rng(5)
        for key in rng.choice(10**9, size=600, replace=False):
            file.insert(int(key), b"v" * 16)
        levels = file.group_levels()
        target = cfg.effective_policy.level_for(len(levels))
        assert set(levels.values()) == {target}
        assert file.verify_parity_consistency() == []

    def test_analytic_availability_reflects_levels(self):
        file, _ = build_file(k=2, count=200)
        p_k2 = file.analytic_availability(0.99)
        file0, _ = build_file(k=0, count=200)
        p_k0 = file0.analytic_availability(0.99)
        assert p_k2 > p_k0
        assert p_k2 > 0.999
