"""Tests for the availability calculus and the scalable policy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.availability import (
    AvailabilityPolicy,
    file_availability,
    group_availability,
    groups_of_file,
    monte_carlo_file_availability,
)


class TestGroupAvailability:
    def test_k0_is_all_up(self):
        assert group_availability(4, 0, 0.9) == pytest.approx(0.9**4)

    def test_k_equals_n_is_certainty_complement(self):
        # k = m means even losing every data bucket is fine only if at
        # most k of m+k fail; with m=1, k=1: survive unless both fail.
        p = 0.9
        assert group_availability(1, 1, p) == pytest.approx(1 - (1 - p) ** 2)

    def test_monotone_in_k(self):
        values = [group_availability(4, k, 0.95) for k in range(4)]
        assert values == sorted(values)

    def test_monotone_in_p(self):
        assert group_availability(4, 1, 0.99) > group_availability(4, 1, 0.9)

    def test_p_bounds(self):
        with pytest.raises(ValueError):
            group_availability(4, 1, 1.5)

    def test_perfect_nodes(self):
        assert group_availability(8, 2, 1.0) == pytest.approx(1.0)


class TestFileAvailability:
    def test_paper_headline_numbers(self):
        """The motivating arithmetic: P = p^M ≈ 37% at M=100, p=0.99."""
        p_file = file_availability(100, group_size=100, p=0.99, k=0)
        assert p_file == pytest.approx(0.99**100)
        assert 0.36 < p_file < 0.37

    def test_k1_groups_rescue_the_file(self):
        without = file_availability(100, 4, 0.99, k=0)
        with_k1 = file_availability(100, 4, 0.99, k=1)
        assert with_k1 > 0.97
        assert without < 0.4

    def test_partial_last_group(self):
        assert groups_of_file(10, 4) == [4, 4, 2]
        full = file_availability(12, 4, 0.99, k=1)
        partial = file_availability(10, 4, 0.99, k=1)
        assert partial > full  # fewer nodes at risk

    def test_per_group_levels(self):
        uniform = file_availability(8, 4, 0.95, k=2)
        mixed = file_availability(8, 4, 0.95, k_per_group=[2, 2])
        assert uniform == pytest.approx(mixed)
        with pytest.raises(ValueError):
            file_availability(8, 4, 0.95, k_per_group=[1])
        with pytest.raises(ValueError):
            file_availability(8, 4, 0.95)

    def test_fixed_k_still_decays_scalable_does_not(self):
        """The scalable-availability motivation (experiment E6)."""
        policy = AvailabilityPolicy.scalable(
            base_level=1, first_threshold=4, growth=4, max_level=5
        )
        fixed, scaled = [], []
        for exp in range(2, 9):
            m_buckets = 4 * (2**exp)
            groups = m_buckets // 4
            fixed.append(file_availability(m_buckets, 4, 0.99, k=1))
            level = policy.level_for(groups)
            scaled.append(
                file_availability(m_buckets, 4, 0.99, k_per_group=[level] * groups)
            )
        assert fixed == sorted(fixed, reverse=True)
        assert fixed[-1] < 0.8
        assert min(scaled) > 0.97


class TestMonteCarlo:
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_matches_closed_form(self, k):
        total, m, p = 32, 4, 0.95
        analytic = file_availability(total, m, p, k=k)
        estimate = monte_carlo_file_availability(
            total, m, p, k, trials=4000, seed=11
        )
        sigma = math.sqrt(analytic * (1 - analytic) / 4000)
        assert abs(estimate - analytic) < max(5 * sigma, 0.01)


class TestPolicy:
    def test_fixed(self):
        policy = AvailabilityPolicy.fixed(2)
        assert [policy.level_for(g) for g in (0, 1, 10, 10**6)] == [2, 2, 2, 2]

    def test_scalable_thresholds(self):
        policy = AvailabilityPolicy.scalable(
            base_level=1, first_threshold=8, growth=8, max_level=4
        )
        assert policy.level_for(7) == 1
        assert policy.level_for(8) == 2
        assert policy.level_for(63) == 2
        assert policy.level_for(64) == 3
        assert policy.level_for(512) == 4
        assert policy.level_for(10**9) == 4  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityPolicy(base_level=-1)
        with pytest.raises(ValueError):
            AvailabilityPolicy(first_threshold=0)
        with pytest.raises(ValueError):
            AvailabilityPolicy(growth=1)
        with pytest.raises(ValueError):
            AvailabilityPolicy(base_level=3, max_level=2)
        with pytest.raises(ValueError):
            AvailabilityPolicy.fixed(1).level_for(-1)

    @given(
        g1=st.integers(min_value=0, max_value=10**6),
        g2=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=50)
    def test_level_monotone_in_group_count(self, g1, g2):
        policy = AvailabilityPolicy.scalable()
        if g1 <= g2:
            assert policy.level_for(g1) <= policy.level_for(g2)
        else:
            assert policy.level_for(g2) <= policy.level_for(g1)


class TestGroupsOfFile:
    def test_cases(self):
        assert groups_of_file(0, 4) == []
        assert groups_of_file(4, 4) == [4]
        assert groups_of_file(5, 4) == [4, 1]
        with pytest.raises(ValueError):
            groups_of_file(-1, 4)
        with pytest.raises(ValueError):
            groups_of_file(4, 0)
