"""Edge-case tests for the RS coordinator and its knobs."""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import parity_node
from repro.gf import GF
from repro.rs.generator import parity_matrix
from repro.sim.rng import make_rng


def build(count=150, **kw):
    defaults = dict(group_size=4, availability=1, bucket_capacity=8)
    defaults.update(kw)
    file = LHRSFile(LHRSConfig(**defaults))
    rng = make_rng(19)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big"))
    return file, keys


class TestParityRows:
    def test_row_zero_is_all_ones(self):
        file, _ = build()
        assert file.rs_coordinator.parity_row(0) == [1, 1, 1, 1]

    def test_rows_match_matrix(self):
        file, _ = build(availability=3)
        matrix = parity_matrix(GF(8), 4, 3)
        for index in range(3):
            assert file.rs_coordinator.parity_row(index) == matrix.row(index)

    @pytest.mark.parametrize("width", [8, 16])
    def test_nested_rows_wide_field(self, width):
        field = GF(width)
        for i in range(4):
            rows = [parity_matrix(field, 8, k).row(i) for k in range(i + 1, 6)]
            assert all(r == rows[0] for r in rows)


class TestGroupLevelManagement:
    def test_group_level_unknown_group(self):
        file, _ = build()
        with pytest.raises(KeyError):
            file.rs_coordinator.group_level(999)

    def test_raise_group_level_noop_when_not_higher(self):
        file, _ = build(availability=2)
        before = dict(file.network.nodes)
        file.rs_coordinator.raise_group_level(0, 2)
        file.rs_coordinator.raise_group_level(0, 1)
        assert dict(file.network.nodes) == before

    def test_manual_raise_updates_targets_and_parity(self):
        file, _ = build(availability=1)
        file.rs_coordinator.raise_group_level(0, 3)
        assert file.rs_coordinator.group_level(0) == 3
        for bucket in range(4):
            server = file.data_servers()[bucket]
            assert server.parity_targets == [
                parity_node("f", 0, i) for i in range(3)
            ]
        assert file.verify_parity_consistency() == []

    def test_new_parity_buckets_recoverable_after_raise(self):
        file, _ = build(availability=1)
        file.rs_coordinator.raise_group_level(0, 2)
        node = file.fail_parity_bucket(0, 1)
        file.recover([node])
        assert file.verify_parity_consistency() == []

    def test_raised_level_gives_real_two_availability(self):
        file, _ = build(availability=1)
        file.rs_coordinator.raise_group_level(0, 2)
        before = file.census_with_ranks()
        nodes = [file.fail_data_bucket(0), file.fail_data_bucket(1)]
        file.recover(nodes)
        assert file.census_with_ranks() == before


class TestReportEdgeCases:
    def test_double_report_second_is_noop(self):
        file, keys = build()
        target1, target2 = [k for k in keys if file.find_bucket_of(k) == 1][:2]
        file.fail_data_bucket(1)
        assert file.search(target1).found  # reports + recovers
        assert file.search(target2).found  # normal path again
        assert file.verify_parity_consistency() == []

    def test_report_for_already_recovered_node(self):
        file, keys = build()
        file.fail_data_bucket(1)
        file.recover(["f.d1"])
        # A stale report about the already-recovered node must not harm.
        file.client.send(
            "f.coord", "report.unavailable",
            {"kind": None, "op": None, "node": "f.d1"},
        )
        assert file.verify_parity_consistency() == []

    def test_degraded_reads_off_and_auto_recover_off(self):
        from repro.core import RecoveryError

        file, keys = build(degraded_reads=False, auto_recover=False)
        target = [k for k in keys if file.find_bucket_of(k) == 1][0]
        file.fail_data_bucket(1)
        with pytest.raises(RecoveryError):
            file.search(target)


class TestStorageAccessors:
    def test_byte_accounting(self):
        file, keys = build(count=100)
        assert file.data_storage_bytes() == 8 * 100
        assert file.parity_storage_bytes() > 0
        assert file.storage_overhead() == pytest.approx(
            file.parity_storage_bytes() / file.data_storage_bytes()
        )

    def test_empty_file_overhead_zero(self):
        file = LHRSFile(LHRSConfig(bucket_capacity=8))
        assert file.storage_overhead() == 0.0
