"""Property tests for A6-style file-state reconstruction.

``reconstruct_state`` must recover (n, i) from any survivor census a
legal LH* file can produce: the boundary pair pins the split pointer
exactly; losses degrade gracefully to the extent identity M = n + 2^i N.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.recovery import RecoveryError, reconstruct_state


@st.composite
def file_states(draw):
    """A legal (n0, n, i) reachable by splitting from n0 buckets."""
    n0 = draw(st.sampled_from([1, 2, 4]))
    i = draw(st.integers(min_value=0, max_value=5))
    n = draw(st.integers(min_value=0, max_value=(1 << i) * n0 - 1))
    return n0, n, i


def full_census(n0: int, n: int, i: int) -> dict[int, int]:
    """Every bucket's level for state (n, i): [0, n) and the split
    targets [2^i n0, 2^i n0 + n) are at i+1, the rest at i."""
    boundary = (1 << i) * n0
    levels = {m: (i + 1 if m < n else i) for m in range(boundary)}
    levels.update({boundary + m: i + 1 for m in range(n)})
    return levels


@given(file_states())
def test_full_census_reconstructs_exactly(state):
    n0, n, i = state
    assert reconstruct_state(full_census(n0, n, i), n0) == (n, i)


@given(file_states())
def test_hidden_boundary_bucket_still_reconstructs(state):
    """Losing the bucket just below the split pointer hides the level
    boundary pair; the pointer is still pinned by the first bucket left
    at level i (or by the extent identity when levels are all equal)."""
    n0, n, i = state
    levels = full_census(n0, n, i)
    if n >= 1:
        del levels[n - 1]
    if not levels:
        return  # n0=1, i=0, n=0 with the only bucket lost: no survivors
    assert reconstruct_state(levels, n0) == (n, i)


@given(file_states(), st.data())
def test_loss_of_any_already_split_bucket_reconstructs(state, data):
    """Losing any bucket strictly below the boundary pair leaves the
    pair (n-1, n) visible, so reconstruction stays exact."""
    n0, n, i = state
    levels = full_census(n0, n, i)
    if n < 2:
        return  # no bucket strictly below the pair to lose
    lost = data.draw(st.integers(min_value=0, max_value=n - 2))
    del levels[lost]
    assert reconstruct_state(levels, n0) == (n, i)


@given(file_states())
def test_all_equal_levels_uses_extent_identity(state):
    """With n = 0 every bucket sits at one level; the extent identity
    M = 2^i n0 alone must pin the state."""
    n0, _, i = state
    levels = {m: i for m in range((1 << i) * n0)}
    assert reconstruct_state(levels, n0) == (0, i)


@given(st.sampled_from([1, 2, 4]), st.integers(min_value=0, max_value=200),
       st.integers(min_value=0, max_value=6))
def test_single_survivor_falls_back_to_extent_identity(n0, m, j):
    """One survivor at level j: reconstruction uses M = n + 2^j n0 over
    the largest observed bucket — the best possible estimate."""
    n, i = reconstruct_state({m: j}, n0)
    assert i == j
    assert n == max(m + 1 - (1 << j) * n0, 0)


def test_empty_census_raises():
    with pytest.raises(RecoveryError):
        reconstruct_state({}, 4)
