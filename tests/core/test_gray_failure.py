"""Tests for the gray-failure read stack: deadline/hedged reads, the
per-bucket circuit breaker, degraded reads against live-but-slow
buckets, the bounded health log, and the recovery pacer."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LHRSConfig, LHRSFile
from repro.core.client import _Breaker
from repro.core.config import DeadlinePolicy
from repro.core.coordinator import BoundedHealthLog
from repro.core.group import data_node
from repro.core.recovery import RecoveryPacer
from repro.sim import FaultPlane, Network, ServiceModel
from repro.sim.rng import make_rng


def make_file(n=60, *, deadline=24.0, straggle=None, **overrides):
    config = LHRSConfig(
        group_size=4,
        availability=1,
        bucket_capacity=8,
        client_acks=True,
        read_deadline=deadline,
        **overrides,
    )
    file = LHRSFile(config)
    file.enable_observability()
    file.enable_service_model(link_latency=0.25, service_time=1.0)
    plane = FaultPlane(rng=make_rng(5))
    file.network.install_fault_plane(plane)
    oracle = {}
    for key in range(n):
        value = b"g%d" % key
        file.insert(key, value)
        oracle[key] = value
    if straggle is not None:
        victim = max(
            range(file.bucket_count),
            key=lambda b: sum(
                1 for k in oracle if file.find_bucket_of(k) == b
            ),
        )
        plane.add_slow_rule(
            node=data_node(file.file_id, victim), factor=straggle
        )
    return file, plane, oracle


class TestBreakerUnit:
    def test_opens_after_threshold_consecutive_slow(self):
        breaker = _Breaker(threshold=3, cooldown=10.0)
        assert breaker.record(True, now=0.0) is None
        assert breaker.record(True, now=1.0) is None
        assert breaker.record(True, now=2.0) == "opened"
        assert breaker.is_open(now=3.0)
        assert not breaker.is_open(now=12.5)  # cooldown elapsed

    def test_fast_read_resets_the_streak(self):
        breaker = _Breaker(threshold=2, cooldown=10.0)
        breaker.record(True, now=0.0)
        breaker.record(False, now=1.0)
        assert breaker.record(True, now=2.0) is None  # streak restarted

    def test_half_open_probe_closes_or_reopens(self):
        breaker = _Breaker(threshold=2, cooldown=5.0)
        breaker.record(True, now=0.0)
        assert breaker.record(True, now=1.0) == "opened"
        # after cooldown the next slow read re-opens immediately...
        assert breaker.record(True, now=7.0) == "opened"
        assert breaker.is_open(now=8.0)
        # ...and a fast probe closes it
        assert breaker.record(False, now=13.0) == "closed"
        assert not breaker.is_open(now=13.0)


class TestHedgedReads:
    def test_straggler_reads_stay_correct_and_hedge(self):
        file, plane, oracle = make_file(straggle=50.0)
        for _ in range(3):
            for key, value in oracle.items():
                outcome = file.search(key)
                assert outcome.found and outcome.value == value
        client = file.client
        assert client.hedged_reads > 0
        assert client.degraded_fallbacks > 0
        assert client.deadline_misses == 0
        assert file.metrics.counter("read.breaker.opened").value >= 1
        assert file.tracer.counts.get("op.hedged", 0) > 0
        assert file.tracer.counts.get("breaker.open", 0) >= 1
        assert file.auditor.violations == []

    def test_effective_latency_stays_inside_the_deadline(self):
        file, plane, oracle = make_file(straggle=50.0)
        client = file.client
        for _ in range(3):
            for key in oracle:
                file.search(key)
        assert client.deadline_misses == 0
        assert max(client._latency_samples) <= 24.0

    def test_breaker_closes_after_the_gray_failure_clears(self):
        file, plane, oracle = make_file(straggle=200.0)
        for _ in range(3):
            for key in oracle:
                file.search(key)
        assert file.tracer.counts.get("breaker.open", 0) >= 1
        plane.clear_rules()
        file.network.advance(file.config.breaker_cooldown + 1.0)
        for _ in range(3):
            for key in oracle:
                file.search(key)
        assert file.tracer.counts.get("breaker.close", 0) >= 1

    def test_no_deadline_means_plain_reads(self):
        file, plane, oracle = make_file(deadline=None, straggle=50.0)
        for key, value in oracle.items():
            outcome = file.search(key)
            assert outcome.found and outcome.value == value
        assert file.client.hedged_reads == 0
        assert file.client.last_read_latency is None

    def test_degraded_read_handler_serves_live_but_slow_bucket(self):
        file, plane, oracle = make_file()
        reply = file.network.call(
            file.client.node_id, "f.coord", "read.degraded", {"key": 0}
        )
        assert reply == {"served": True, "found": True, "value": oracle[0]}
        missing = file.network.call(
            file.client.node_id, "f.coord", "read.degraded", {"key": 10**8}
        )
        assert missing["served"] and not missing["found"]

    def test_degraded_read_handler_respects_config(self):
        file, plane, oracle = make_file(degraded_reads=False)
        reply = file.network.call(
            file.client.node_id, "f.coord", "read.degraded", {"key": 0}
        )
        assert reply["served"] is False


SLOW_RULES = st.lists(
    st.tuples(
        st.sampled_from(["*", "f.d*", "f.d1", "f.d3", "f.p*"]),
        st.floats(min_value=1.0, max_value=120.0),
        st.floats(min_value=0.0, max_value=1.0),   # ramp
        st.floats(min_value=0.0, max_value=0.5),   # jitter
    ),
    min_size=0,
    max_size=3,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rules=SLOW_RULES, read_deadline=st.sampled_from([8.0, 24.0, 64.0]))
def test_hedged_and_degraded_reads_equal_primary_reads(rules, read_deadline):
    """The gray-failure stack may change *which path* answers, never
    *what* it answers: under arbitrary slow rules every read returns
    exactly what a healthy primary read would."""
    file, plane, oracle = make_file(n=40, deadline=read_deadline)
    for node, factor, ramp, jitter in rules:
        plane.add_slow_rule(
            node=node, factor=factor, ramp=ramp, jitter=jitter
        )
    for key, value in oracle.items():
        outcome = file.search(key)
        assert outcome.found and outcome.value == value
    missing = file.search(10**7)
    assert not missing.found
    assert file.auditor.violations == []


class TestBoundedHealthLog:
    def test_behaves_like_a_list_until_full(self):
        log = BoundedHealthLog(4)
        for i in range(3):
            log.append({"round": i})
        assert len(log) == 3
        assert log[0] == {"round": 0}
        assert [e["round"] for e in log] == [0, 1, 2]
        assert log.dropped == 0

    def test_drops_oldest_and_counts(self):
        log = BoundedHealthLog(3)
        for i in range(10):
            log.append({"round": i})
        assert len(log) == 3
        assert [e["round"] for e in log] == [7, 8, 9]
        assert log.dropped == 7
        assert log[-1]["round"] == 9
        assert [e["round"] for e in log[1:]] == [8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BoundedHealthLog(0)

    def test_probe_loop_is_bounded_and_gauged(self):
        file, plane, oracle = make_file(n=20, health_log_capacity=5)
        for _ in range(4):
            file.rs_coordinator.run_probe_cycle(rounds=3)
        log = file.rs_coordinator.health_log
        assert len(log) == 5
        assert log.dropped == 7
        gauge = file.metrics.get("coord.health_log.dropped")
        assert gauge.value == 7


class TestRecoveryPacer:
    def test_burst_passes_without_waiting(self):
        net = Network()
        pacer = RecoveryPacer(net, rate=1.0, burst=3.0)
        pacer.pace()
        pacer.pace()
        pacer.pace()
        assert pacer.waits == 0
        assert net.now == 0.0

    def test_deficit_waits_out_the_clock(self):
        net = Network()
        pacer = RecoveryPacer(net, rate=0.5, burst=1.0)
        pacer.pace()          # takes the burst token
        pacer.pace()          # deficit of 1 token -> waits 2 clock units
        assert pacer.waits == 1
        assert net.now == pytest.approx(2.0)
        assert pacer.waited == pytest.approx(2.0)

    def test_weighted_costs(self):
        net = Network()
        pacer = RecoveryPacer(net, rate=2.0, burst=2.0)
        pacer.pace(cost=8.0)  # 6 short at 2/unit -> waits 3
        assert net.now == pytest.approx(3.0)

    def test_validation(self):
        net = Network()
        with pytest.raises(ValueError):
            RecoveryPacer(net, rate=0.0, burst=2.0)
        with pytest.raises(ValueError):
            RecoveryPacer(net, rate=1.0, burst=0.5)

    def test_paced_rebuild_recovers_and_reports(self):
        file, plane, oracle = make_file(
            recovery_pace_rate=0.5, recovery_pace_burst=2.0
        )
        victim = file.fail_data_bucket(1)
        file.recover([victim])
        assert file.metrics.counter("recovery.pace.waits").value >= 1
        assert file.tracer.counts.get("recovery.paced", 0) >= 1
        for key, value in oracle.items():
            outcome = file.search(key)
            assert outcome.found and outcome.value == value
        assert file.verify_parity_consistency() == []


class TestConfigValidation:
    def test_deadline_policy_is_derived_from_config(self):
        config = LHRSConfig(read_deadline=16.0, hedge_quantile=0.95)
        policy = config.deadline_policy
        assert isinstance(policy, DeadlinePolicy)
        assert policy.deadline == 16.0
        assert policy.hedge_quantile == 0.95
        assert LHRSConfig().deadline_policy is None

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            LHRSConfig(read_deadline=0.0)
        with pytest.raises(ValueError):
            LHRSConfig(bucket_queue_limit=0)
        with pytest.raises(ValueError):
            LHRSConfig(recovery_pace_rate=0.0)
        with pytest.raises(ValueError):
            LHRSConfig(health_log_capacity=0)
        with pytest.raises(ValueError):
            DeadlinePolicy(deadline=10.0, hedge_quantile=1.5)
