"""Unit tests for the contiguous parity stripe store."""

import numpy as np
import pytest

from repro.core.stripe_store import StripeStore
from repro.gf import GF


@pytest.fixture(params=[8, 16], ids=["gf8", "gf16"])
def field(request):
    return GF(request.param)


class TestLifecycle:
    def test_rejects_sub_byte_fields(self):
        with pytest.raises(ValueError):
            StripeStore(GF(4))

    def test_ensure_view_roundtrip(self, field):
        store = StripeStore(field)
        store.ensure(3, 4)
        view = store.view(3)
        assert view.shape == (4,)
        view[:] = [1, 2, 3, 4]
        assert (store.view(3) == [1, 2, 3, 4]).all()
        assert 3 in store and len(store) == 1
        assert store.length_of(3) == 4

    def test_views_write_through_to_matrix(self, field):
        store = StripeStore(field)
        store.ensure(0, 2)
        store.view(0)[:] = 7
        ranks, matrix = store.stacked()
        assert ranks == [0]
        assert (matrix[0, :2] == 7).all()

    def test_release_zeroes_and_recycles(self, field):
        store = StripeStore(field)
        store.ensure(1, 3)
        store.view(1)[:] = 9
        row = store._row_of[1]
        store.release(1)
        assert 1 not in store
        assert (store.matrix[row] == 0).all()
        store.ensure(2, 3)
        assert store._row_of[2] == row  # recycled

    def test_length_grows_monotonically(self, field):
        store = StripeStore(field)
        store.ensure(0, 4)
        store.view(0)[:] = 5
        store.ensure(0, 2)  # shorter request never shrinks
        assert store.length_of(0) == 4
        store.ensure(0, 6)
        assert store.length_of(0) == 6
        assert (store.view(0)[:4] == 5).all()
        assert (store.view(0)[4:] == 0).all()


class TestGrowth:
    def test_width_growth_invalidates_views(self, field):
        store = StripeStore(field)
        assert store.ensure(0, 4) is True  # first allocation
        view = store.view(0)
        view[:] = 3
        assert store.ensure(0, 100) is True
        fresh = store.view(0)
        assert (fresh[:4] == 3).all()  # content preserved
        assert fresh.base is not view.base  # old view is stale

    def test_row_growth_preserves_content(self, field):
        store = StripeStore(field)
        generations = 0
        for rank in range(40):
            if store.ensure(rank, 8):
                generations += 1
            store.view(rank)[:] = rank % 250 + 1
        assert generations >= 2  # grew geometrically, not per insert
        for rank in range(40):
            assert (store.view(rank) == rank % 250 + 1).all()

    def test_no_growth_returns_false(self, field):
        store = StripeStore(field)
        store.ensure(0, 4)
        assert store.ensure(0, 4) is False
        assert store.ensure(0, 2) is False


class TestGenerationRegressions:
    """Stale handles must fail loudly, never read recycled memory.

    The store's contract is that ``generation`` bumps on every matrix
    reallocation and that dropped ranks disappear from the map — so a
    caller holding a stale rank (after a release, a merge's
    ``parity.load`` replacement, or a reset) gets a ``KeyError``, and a
    caller holding a stale *view* can be detected via ``generation``.
    """

    def test_view_of_unknown_rank_raises(self, field):
        store = StripeStore(field)
        with pytest.raises(KeyError):
            store.view(3)
        with pytest.raises(KeyError):
            store.length_of(3)

    def test_view_after_release_raises(self, field):
        store = StripeStore(field)
        store.ensure(3, 4)
        store.release(3)
        with pytest.raises(KeyError):
            store.view(3)
        with pytest.raises(KeyError):
            store.release(3)  # double release is a bug, not a no-op

    def test_view_of_rank_dropped_by_bulk_load_raises(self, field):
        """bulk_load models merge/recovery replacement: every rank not in
        the new content must be gone, and the generation must bump so
        cached views are recognisably stale."""
        store = StripeStore(field)
        store.ensure(9, 4)
        stale = store.view(9)
        stale[:] = 7
        generation = store.generation
        store.bulk_load([(1, b"\x01\x02\x03\x04"), (2, b"\x05\x06")])
        assert store.generation > generation
        with pytest.raises(KeyError):
            store.view(9)
        # Writes through the stale view never reach the new matrix.
        stale[:] = 123
        assert (store.matrix != 123).all()

    def test_generation_bumps_on_every_reallocation(self, field):
        store = StripeStore(field)
        seen = [store.generation]

        def note():
            assert store.generation >= seen[-1]
            if store.generation > seen[-1]:
                seen.append(store.generation)

        store.ensure(0, 4)      # first allocation (rows grow)
        note()
        store.ensure(0, 1000)   # width growth
        note()
        for rank in range(1, 50):
            store.ensure(rank, 4)  # row growth, eventually
            note()
        store.bulk_load([(0, b"ab")])
        note()
        assert len(seen) >= 4

    def test_ensure_true_means_cached_views_went_stale(self, field):
        """The bool contract callers (the parity server) rely on: a True
        return is exactly a generation bump."""
        store = StripeStore(field)
        for rank, length in [(0, 4), (0, 4), (0, 900), (1, 8), (2, 8),
                             (3, 8), (50, 8), (50, 2000)]:
            generation = store.generation
            grew = store.ensure(rank, length)
            assert grew == (store.generation > generation)


class TestBulkViews:
    def test_stacked_orders_by_rank(self, field):
        store = StripeStore(field)
        for rank in (5, 1, 3):
            store.ensure(rank, 2)
            store.view(rank)[:] = rank
        ranks, matrix = store.stacked()
        assert ranks == [1, 3, 5]
        for i, rank in enumerate(ranks):
            assert (matrix[i, :2] == rank).all()

    def test_row_bytes_matches_per_record_rendering(self, field):
        store = StripeStore(field)
        payloads = {
            2: bytes(range(10)),
            7: bytes(range(100, 116)),
            4: b"\x00\xff" * 3,
        }
        for rank, payload in payloads.items():
            length = field.symbol_length_for_bytes(len(payload))
            store.ensure(rank, length)
            store.view(rank)[:] = field.symbols_from_bytes(payload, length)
        rendered = store.row_bytes()
        for rank, payload in payloads.items():
            expected = field.bytes_from_symbols(store.view(rank))
            assert rendered[rank] == expected
            assert rendered[rank][: len(payload)] == payload

    def test_bulk_load_replaces_content(self, field):
        store = StripeStore(field)
        store.ensure(9, 4)
        store.bulk_load([(1, b"abcd"), (2, b"xy")])
        assert sorted(store.ranks()) == [1, 2]
        assert field.bytes_from_symbols(store.view(1)) == b"abcd"
        assert store.length_of(2) == field.symbol_length_for_bytes(2)

    def test_nbytes_counts_logical_payload_only(self, field):
        store = StripeStore(field)
        store.ensure(0, 3)
        store.ensure(1, 5)
        itemsize = np.dtype(field.symbol_dtype).itemsize
        assert store.nbytes() == 8 * itemsize
        assert "StripeStore" in repr(store)
