"""The autonomous probe→recover self-healing loop.

``run_probe_cycle`` advances the clock (firing scheduled crash windows),
sweeps every server, recovers best-effort, and logs per-round health
entries that the lifetime benchmark consumes.
"""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.core.group import parity_node


def populated_file(**overrides) -> LHRSFile:
    defaults = dict(group_size=2, availability=2, bucket_capacity=32)
    defaults.update(overrides)
    file = LHRSFile(LHRSConfig(**defaults))
    for key in range(40):
        file.insert(key, bytes([key % 251]) * 8)
    return file


HEALTH_KEYS = {
    "time", "probed", "unavailable", "stale", "recovered_groups",
    "recovered_data_buckets", "recovered_parity_buckets",
    "records_rebuilt", "errors", "spares_remaining",
}


class TestProbeCycle:
    def test_detects_and_rebuilds_crashed_buckets(self):
        file = populated_file()
        before = file.census_with_ranks()
        file.failures.crash(["f.d0", parity_node("f", 0, 1)])

        entries = file.rs_coordinator.run_probe_cycle(rounds=2)
        assert len(entries) == 2
        assert set(entries[0]) == HEALTH_KEYS
        assert sorted(entries[0]["unavailable"]) == [
            "f.d0", parity_node("f", 0, 1)
        ]
        assert entries[0]["recovered_groups"] == 1
        assert entries[0]["recovered_data_buckets"] == 1
        assert entries[0]["recovered_parity_buckets"] == 1
        # Second round: nothing left to heal.
        assert entries[1]["unavailable"] == []
        assert entries[1]["recovered_groups"] == 0
        assert file.census_with_ranks() == before
        assert file.verify_parity_consistency() == []

    def test_health_log_accumulates(self):
        file = populated_file()
        file.rs_coordinator.run_probe_cycle(rounds=3)
        file.rs_coordinator.run_probe_cycle(rounds=2)
        assert len(file.rs_coordinator.health_log) == 5
        times = [e["time"] for e in file.rs_coordinator.health_log]
        assert times == sorted(times)  # the clock advanced monotonically

    def test_rounds_validation(self):
        file = populated_file()
        with pytest.raises(ValueError):
            file.rs_coordinator.run_probe_cycle(rounds=0)

    def test_scheduled_window_fires_during_cycle(self):
        file = populated_file()
        now = file.network.now
        file.failures.schedule_crash("f.d1", at=now + 2.0)
        entries = file.rs_coordinator.run_probe_cycle(
            rounds=4, advance_per_round=1.0
        )
        # The crash fired mid-cycle and the very same round healed it.
        hit = [e for e in entries if "f.d1" in e["unavailable"]]
        assert len(hit) == 1
        assert hit[0]["recovered_data_buckets"] == 1
        assert file.network.is_available("f.d1")
        assert file.verify_parity_consistency() == []

    def test_spare_exhaustion_is_recorded_not_fatal(self):
        file = populated_file(spare_servers=0)
        file.failures.crash(["f.d0"])
        entries = file.rs_coordinator.run_probe_cycle(rounds=1)
        assert entries[0]["errors"]
        assert "spare" in entries[0]["errors"][0]["error"]
        assert entries[0]["recovered_groups"] == 0
        assert entries[0]["spares_remaining"] == 0
        # The bucket stays down; the loop itself keeps running.
        assert not file.network.is_available("f.d0")
        file.rs_coordinator.run_probe_cycle(rounds=1)

    def test_doomed_group_does_not_block_others(self):
        # Group 0 loses more than k members (beyond help); group 1's
        # single loss must still be repaired in the same sweep.
        file = populated_file(group_size=2, availability=1,
                              bucket_capacity=8)
        for key in range(40, 80):
            file.insert(key, bytes([key % 251]) * 8)
        assert file.bucket_count >= 4  # at least two groups exist
        file.failures.crash(["f.d0", "f.d1", "f.d2"])
        entries = file.rs_coordinator.run_probe_cycle(rounds=1)
        assert any("exceeds availability" in e["error"]
                   for e in entries[0]["errors"])
        assert file.network.is_available("f.d2")
        assert not file.network.is_available("f.d0")
