"""Bulk scatter-gather data plane: batched ops ≡ scalar ops.

The batch plane's contract is *not* "same result as looping in
submission order" — re-binning refused sub-batches changes the order
in which ops reach their buckets, which legitimately shifts split
timing.  The contract is stronger where it matters and precise where
it must be:

* **Replay equivalence** — applying the ops of every batch in the
  batch's actual confirmation order (``BatchOutcome.applied_order``)
  through a scalar-only file produces a byte-identical file: same
  bucket layout, same records, same ranks, same parity symbols.  The
  vectorized bulk-apply runs, the coalesced ``parity.batch`` folds and
  the O(moves) ``_compact`` are all invisible.
* **Knobs off ⇒ scalar** — with ``batch_ops=False`` the ``*_many``
  entry points emit byte-identical message traces to a hand-written
  scalar loop.
* **Exactly-once under faults** — dropped/duplicated ``ops.batch`` and
  ``parity.batch`` messages leave the file logically correct and
  parity-consistent (per-(data, position) sequence numbers).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LHRSConfig, LHRSFile
from repro.sdds.client import OperationFailed
from repro.sim import FaultPlane

KEYS = st.integers(min_value=0, max_value=300)
PAYLOADS = st.binary(min_size=0, max_size=24)


def _cfg(batch: bool, m=2, k=2, capacity=8, compact=True, **kw) -> LHRSConfig:
    return LHRSConfig(
        group_size=m,
        availability=k,
        bucket_capacity=capacity,
        compact_ranks=compact,
        batch_ops=batch,
        **kw,
    )


def _parity_snapshot(file: LHRSFile) -> dict:
    """{parity node -> {rank -> (keys, lengths, normalized symbols)}}.

    Parity byte strings are right-stripped of zero padding: a record
    that grew through a longer intermediate value keeps trailing zero
    symbols a never-grown twin lacks, and zero symbols carry no data.
    """
    snap = {}
    for node_id in sorted(file.network.nodes):
        if ".p" not in node_id:
            continue
        node = file.network.nodes[node_id]
        if not hasattr(node, "records"):
            continue
        snap[node_id] = {
            rank: (
                dict(record.keys),
                dict(record.lengths),
                record.parity_bytes(node.field).rstrip(b"\0"),
            )
            for rank, record in node.records.items()
        }
    return snap


def _apply_batches(file: LHRSFile, batches) -> list[list[int]]:
    """Run each batch through the ``*_many`` plane; return apply orders."""
    orders = []
    for kind, items in batches:
        if kind == "insert":
            out = file.insert_many(items)
        elif kind == "update":
            out = file.update_many(items)
        elif kind == "delete":
            out = file.delete_many(items)
        else:
            out = file.search_many(items)
        assert out.ok, f"{kind} batch failed for keys {out.failed_keys}"
        assert sorted(out.applied_order) == list(range(len(items)))
        orders.append(out.applied_order)
    return orders


def _replay_scalar(file: LHRSFile, batches, orders) -> None:
    """Apply the same ops scalar-style, in the batches' apply order."""
    for (kind, items), order in zip(batches, orders):
        for idx in order:
            item = items[idx]
            try:
                if kind == "insert":
                    file.insert(*item)
                elif kind == "update":
                    file.update(*item)
                elif kind == "delete":
                    file.delete(item)
                else:
                    file.search(item)
            except OperationFailed:
                pass  # upsert-of-absent surfaces as an error; op applied


def _batches_strategy():
    pairs = st.lists(st.tuples(KEYS, PAYLOADS), min_size=1, max_size=40)
    keys = st.lists(KEYS, min_size=1, max_size=40)
    return st.lists(
        st.one_of(
            st.tuples(st.just("insert"), pairs),
            st.tuples(st.just("update"), pairs),
            st.tuples(st.just("delete"), keys),
            st.tuples(st.just("search"), keys),
        ),
        min_size=1,
        max_size=5,
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    batches=_batches_strategy(),
    m=st.sampled_from([2, 4]),
    k=st.sampled_from([1, 2]),
    compact=st.booleans(),
)
def test_batched_ops_equal_scalar_replay(batches, m, k, compact):
    """Byte-equality oracle, including mid-batch splits (capacity 8
    with up to 200 inserts forces splits *inside* ``insert_many``)."""
    batched = LHRSFile(_cfg(True, m=m, k=k, compact=compact))
    orders = _apply_batches(batched, batches)
    batched.flush_all_parity()

    scalar = LHRSFile(_cfg(False, m=m, k=k, compact=compact))
    _replay_scalar(scalar, batches, orders)
    scalar.flush_all_parity()

    assert batched.census_with_ranks() == scalar.census_with_ranks()
    assert _parity_snapshot(batched) == _parity_snapshot(scalar)
    assert batched.verify_parity_consistency() == []
    assert scalar.verify_parity_consistency() == []


def test_batched_growth_scenario_equals_scalar_replay():
    """A deterministic end-to-end pass (the hypothesis test shrunk):
    bulk load → bulk upsert → bulk delete across many splits."""
    items = [(k, bytes([k % 251]) * (4 + k % 7)) for k in range(150)]
    batches = [
        ("insert", items),
        ("update", [(k, b"u" * (3 + k % 5)) for k, _ in items[::3]]),
        ("search", [k for k, _ in items[::4]]),
        ("delete", [k for k, _ in items[::5]]),
    ]
    batched = LHRSFile(_cfg(True, m=4, k=2, capacity=8))
    orders = _apply_batches(batched, batches)
    batched.flush_all_parity()

    scalar = LHRSFile(_cfg(False, m=4, k=2, capacity=8))
    _replay_scalar(scalar, batches, orders)
    scalar.flush_all_parity()

    assert batched.bucket_count > 4  # splits actually happened mid-batch
    assert batched.census_with_ranks() == scalar.census_with_ranks()
    assert _parity_snapshot(batched) == _parity_snapshot(scalar)


def test_batch_knobs_off_traces_are_byte_identical():
    """``batch_ops=False`` makes ``*_many`` the scalar loop, down to
    the exact message trace — the flag defaults to today's behaviour."""

    def run(use_many: bool) -> str:
        file = LHRSFile(_cfg(False, m=2, k=1, capacity=4))
        file.enable_observability(trace_capacity=None)
        items = [(k, b"v%d" % k) for k in range(40)]
        updates = [(k, b"u%d" % k) for k, _ in items[::2]]
        deletes = [k for k, _ in items[::3]]
        searches = [k for k, _ in items[::4]]
        if use_many:
            file.insert_many(items)
            file.update_many(updates)
            file.search_many(searches)
            file.delete_many(deletes)
        else:
            for k, v in items:
                file.insert(k, v)
            for k, v in updates:
                file.update(k, v)
            for k in searches:
                file.search(k)
            for k in deletes:
                file.delete(k)
        return file.tracer.to_jsonl()

    scalar_trace = run(False)
    many_trace = run(True)
    assert many_trace == scalar_trace
    assert '"type":"batch.scatter"' not in many_trace


def test_batch_plane_uses_fewer_messages():
    """The point of the PR: one ``ops.batch`` per bucket replaces one
    round trip per record."""
    items = [(k, b"payload-%d" % k) for k in range(128)]

    batched = LHRSFile(_cfg(True, m=4, k=2, capacity=512))
    out = batched.insert_many(items)
    assert out.ok and out.batched_ops == len(items) and out.scalar_ops == 0
    batched_msgs = batched.stats.total.by_kind.get("ops.batch", 0)

    scalar = LHRSFile(_cfg(False, m=4, k=2, capacity=512))
    for k, v in items:
        scalar.insert(k, v)

    assert batched_msgs <= 4  # one call per addressed bucket
    assert out.messages <= 2 * batched_msgs
    assert scalar.stats.total.by_kind.get("insert", 0) == len(items)


def test_dropped_and_duplicated_batches_apply_exactly_once():
    """Per-(data, position) sequence numbers + retry ladder: the batch
    plane survives the chaos rules mutations get in the soak tests."""
    config = _cfg(
        True, m=4, k=2, capacity=8,
        parity_ack=True, retry_attempts=8, retry_backoff_base=0.25,
    )
    file = LHRSFile(config)
    plane = FaultPlane(rng=np.random.default_rng(11))
    plane.add_rule(
        kinds={"ops.batch", "parity.batch"},
        drop=0.05, fail=0.05, duplicate=0.15,
    )
    file.network.install_fault_plane(plane)

    oracle: dict[int, bytes] = {}
    items = [(k, b"v-%d" % k) for k in range(120)]
    out = file.insert_many(items)
    assert out.ok
    oracle.update(items)
    updates = [(k, b"u-%d" % k) for k, _ in items[::2]]
    out = file.update_many(updates)
    assert out.ok
    oracle.update(updates)
    deletes = [k for k, _ in items[::3]]
    out = file.delete_many(deletes)
    assert out.ok
    for key in deletes:
        oracle.pop(key, None)

    file.flush_all_parity()
    assert plane.counters["duplicated"] > 0
    assert plane.counters["dropped"] + plane.counters["failed"] > 0

    logical = {
        key: value
        for bucket in file.census_with_ranks().values()
        for key, (_, value) in bucket.items()
    }
    assert logical == oracle
    assert file.verify_parity_consistency() == []


class TestRankIndex:
    """The rank→key reverse index behind the O(moves) ``_compact``."""

    @staticmethod
    def _servers(file):
        return [
            file.network.nodes[f"f.d{m}"]
            for m in range(file.bucket_count)
        ]

    def _assert_index_consistent(self, file):
        for server in self._servers(file):
            assert server._rank_to_key == {
                rank: key for key, rank in server.ranks.items()
            }

    def test_index_mirrors_ranks_through_restructuring(self):
        file = LHRSFile(_cfg(True, m=4, k=2, capacity=8))
        file.insert_many([(k, b"x%d" % k) for k in range(200)])
        self._assert_index_consistent(file)
        file.delete_many(list(range(0, 200, 2)))
        self._assert_index_consistent(file)
        while file.bucket_count > 8:
            file.rs_coordinator.merge_once()
        self._assert_index_consistent(file)
        file.insert_many([(k, b"y%d" % k) for k in range(200, 320)])
        self._assert_index_consistent(file)
        assert file.verify_parity_consistency() == []

    def test_compact_keeps_ranks_dense(self):
        file = LHRSFile(_cfg(False, m=2, k=1, capacity=32))
        for key in range(24):
            file.insert(key, b"r%d" % key)
        for key in range(0, 24, 3):
            file.delete(key)
        for server in self._servers(file):
            ranks = sorted(server.ranks.values())
            # dense {1..size} again after every delete's compaction
            assert ranks == list(range(1, len(ranks) + 1))
        self._assert_index_consistent(file)


class TestArithmeticSizes:
    """The batch plane pre-computes message sizes arithmetically
    (``size=`` on send/call) instead of letting the envelope walk the
    payload.  Every pre-computed size must equal what
    :func:`~repro.sim.messages.estimate_size` would have produced —
    otherwise the latency/stats model silently drifts between the batch
    and scalar arms."""

    def test_precomputed_sizes_match_estimator(self, monkeypatch):
        from repro.sim import messages as msgs

        checked = {"count": 0, "kinds": set()}
        orig = msgs.Message.__post_init__

        def checking(self):
            if self.size:
                expected = msgs.HEADER_BYTES + msgs.estimate_size(
                    self.payload
                )
                assert self.size == expected, (
                    f"{self.kind}: precomputed {self.size} != "
                    f"estimated {expected}"
                )
                checked["count"] += 1
                checked["kinds"].add(self.kind)
            orig(self)

        monkeypatch.setattr(msgs.Message, "__post_init__", checking)

        # Small capacity: splits land mid-batch, so structural parity
        # batches (per-op dicts) and compaction ride alongside the
        # columnar insert/update blocks and per-op delete Δs.
        file = LHRSFile(_cfg(True, m=4, k=2, capacity=8))
        items = [(k, bytes([k % 251]) * (k % 17)) for k in range(120)]
        assert file.insert_many(items).ok
        assert file.update_many(
            [(k, b"x" * (k % 11)) for k, _ in items[:60]]
        ).ok
        assert file.delete_many([k for k, _ in items[::3]]).ok
        assert file.search_many([k for k, _ in items[:40]]).ok

        assert checked["count"] > 0
        assert "ops.batch" in checked["kinds"]
        assert "parity.batch" in checked["kinds"]
