"""Restart-with-catch-up: durable buckets rejoin from their own disk.

The tentpole's service-level contract, pinned end to end:

* a crashed bucket replays checkpoint + WAL to its durable prefix,
  reports per-channel sequence high-water to the coordinator, and
  fetches only the missed tail (delta catch-up) — no acked op is lost
  even when the WAL's unsynced tail died with the crash;
* a WAL that is torn, bit-rotted, or behind what the survivors demand
  falls back to the full RS rebuild, loudly (`catchup.fallback`);
* epoch fencing: a restarted bucket whose incarnation does not match
  the coordinator's fence can never serve reads or accept Δs — clients
  route around it through the degraded path until catch-up completes;
* `heal()` routes restored nodes through the rejoin handshake;
  `force=True` keeps the legacy silent-restore semantics;
* in-flight payload corruption (the `corrupt` fault mode) is caught by
  the algebraic-signature audit and healed by `repair_corruption`;
* with every durability knob off, traces stay byte-identical run to
  run and contain no durable-plane event types at all.
"""

import numpy as np
import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.sdds.client import OperationFailed
from repro.sim import FaultPlane


def build(durability=True, count=40, k=2, capacity=16, observe=True, **kw):
    config = LHRSConfig(
        group_size=4,
        availability=k,
        bucket_capacity=capacity,
        parity_ack=True,
        client_acks=True,
        durability=durability,
        **kw,
    )
    file = LHRSFile(config)
    tracer = None
    if observe:
        tracer, _, _ = file.enable_observability()
    for key in range(count):
        file.insert(key, b"v%d" % key)
    return file, tracer


def assert_all_readable(file, count=40):
    for key in range(count):
        outcome = file.search(key)
        assert outcome.found and outcome.value == b"v%d" % key, key


class TestDataRestartCatchUp:
    def test_clean_restart_catches_up_without_rebuild(self):
        file, tracer = build()
        file.failures.crash(["f.d1"])
        file.failures.heal(["f.d1"])
        server = file.network.nodes["f.d1"]
        assert not server.fenced
        assert tracer.counts.get("bucket.restart") == 1
        assert tracer.counts.get("catchup.data") == 1
        assert tracer.counts.get("catchup.fallback") is None
        assert_all_readable(file)
        assert file.verify_parity_consistency() == []

    def test_unsynced_wal_tail_refetched_from_parity(self):
        """fsync_interval > 1: the crash eats acked appends beyond the
        last barrier; the restarted bucket must pull exactly that missed
        tail back from the parity Δ-history — zero acked ops lost."""
        file, tracer = build(wal_fsync_interval=8)
        file.failures.crash(["f.d2"])
        file.failures.heal(["f.d2"])
        assert tracer.counts.get("catchup.data") == 1
        assert tracer.counts.get("catchup.fallback") is None
        assert_all_readable(file)
        assert file.verify_parity_consistency() == []

    def test_delta_channel_numbering_survives_restart(self):
        """After catch-up the bucket resumes its Δ-sequence past the
        high-water the parities saw — fresh mutations must not reuse or
        skip sequence numbers (either would wedge the channel)."""
        file, tracer = build(wal_fsync_interval=8)
        file.failures.crash(["f.d1"])
        file.failures.heal(["f.d1"])
        for key in range(100, 115):
            file.insert(key, b"w%d" % key)
        for key in range(100, 115):
            outcome = file.search(key)
            assert outcome.found and outcome.value == b"w%d" % key
        assert file.verify_parity_consistency() == []
        # the fresh traffic went through the Δ channel, not a rebuild
        assert tracer.counts.get("catchup.fallback") is None

    def test_repeated_restarts_of_same_bucket(self):
        file, tracer = build(wal_fsync_interval=4)
        for round_ in range(3):
            file.failures.crash(["f.d0"])
            file.failures.heal(["f.d0"])
            file.insert(1000 + round_, b"r%d" % round_)
        assert tracer.counts.get("bucket.restart") == 3
        assert tracer.counts.get("catchup.fallback") is None
        assert_all_readable(file)
        assert file.verify_parity_consistency() == []


class TestParityRestartCatchUp:
    def test_parity_refetches_lost_wal_tail_from_data(self):
        """A parity that loses its unsynced Δ-fold tail pulls the
        original Δ ops back from the data buckets' histories."""
        file, tracer = build(wal_fsync_interval=16)
        before = dict(file.network.nodes["f.p0.0"]._expected_seq)
        file.failures.crash(["f.p0.0"])
        file.failures.heal(["f.p0.0"])
        server = file.network.nodes["f.p0.0"]
        assert not server.fenced and not server.stale
        assert dict(server._expected_seq) == before
        assert tracer.counts.get("catchup.parity") == 1
        assert tracer.counts.get("catchup.fallback") is None
        assert_all_readable(file)
        assert file.verify_parity_consistency() == []

    def test_parity_crashed_under_traffic_is_rebuilt_before_heal(self):
        """Mutations while a parity is down trip unavailability reports:
        the coordinator rebuilds it onto a spare long before the heal
        window closes, and the scheduled restore is then a no-op (the
        replacement must never be clobbered by a zombie rejoin)."""
        file, tracer = build()
        file.failures.crash(["f.p0.0"])
        for key in range(100, 120):
            file.insert(key, b"w%d" % key)
        file.failures.heal(["f.p0.0"])
        assert not file.network.nodes["f.p0.0"].stale
        assert file.verify_parity_consistency() == []
        assert_all_readable(file)


class TestFallbackToFullRebuild:
    def test_garbage_wal_tail_falls_back(self):
        """A WAL whose replay stops unclean (torn frame) cannot prove
        its durable prefix — the rejoin must take the full rebuild."""
        file, tracer = build()
        server = file.network.nodes["f.d1"]
        server._disk.append(server._wal.LOG, b"\x99\x07torn-frame-junk")
        server._disk.fsync(server._wal.LOG)
        file.failures.crash(["f.d1"])
        file.failures.heal(["f.d1"])
        assert tracer.counts.get("catchup.fallback") == 1
        assert_all_readable(file)
        assert file.verify_parity_consistency() == []

    def test_bitrot_falls_back(self):
        file, tracer = build(k=1, count=30)
        plane = FaultPlane(rng=np.random.default_rng(7))
        plane.add_disk_rule(node="f.d1", bitrot=1.0, bitrot_flips=4)
        file.network.install_fault_plane(plane)
        file.failures.crash(["f.d1"])
        file.failures.heal(["f.d1"])
        assert tracer.counts.get("catchup.fallback") == 1
        assert tracer.counts.get("bucket.restart") == 1
        for key in range(30):
            outcome = file.search(key)
            assert outcome.found and outcome.value == b"v%d" % key
        assert file.verify_parity_consistency() == []

    def test_epoch_mismatch_forces_rebuild(self):
        """The incarnation fence: when the coordinator's epoch moved past
        what the restarted bucket persisted, its disk state is from a
        dead incarnation and must not be trusted — full rebuild."""
        file, tracer = build()
        file.rs_coordinator._bucket_epochs["f.d1"] = 7
        file.failures.crash(["f.d1"])
        file.failures.heal(["f.d1"])
        assert tracer.counts.get("catchup.fallback") == 1
        assert tracer.counts.get("catchup.data") is None
        assert_all_readable(file)
        assert file.verify_parity_consistency() == []


class TestFencing:
    def test_fenced_bucket_refuses_reads_and_client_degrades(self):
        """An epoch-fenced bucket must never serve a read; the client
        forwards the fenced refusal and the coordinator answers through
        parity reconstruction — without rebuilding the live node."""
        file, tracer = build()
        server = file.network.nodes["f.d1"]
        victim = next(
            key for key in range(40)
            if file.find_bucket_of(key) == server.number
        )
        server.fenced = True
        try:
            outcome = file.search(victim)
        finally:
            server.fenced = False
        assert outcome.found and outcome.value == b"v%d" % victim
        # the node was fenced, not dead: no rebuild happened
        assert file.network.nodes["f.d1"] is server
        assert tracer.counts.get("client.unavailable") == 1

    def test_fenced_parity_refuses_deltas(self):
        from repro.sim.network import NodeUnavailable

        file, _ = build()
        server = file.network.nodes["f.p0.1"]
        server.fenced = True
        with pytest.raises(NodeUnavailable) as exc:
            file.network.call(
                "f.coord", "f.p0.1", "parity.dump", {}
            )
        assert getattr(exc.value, "fenced", False)
        # the status probe must keep working on a fenced node
        reply = file.network.call("f.coord", "f.p0.1", "status")
        assert reply["fenced"] and reply["group"] == 0
        server.fenced = False


class TestHealRestoreRouting:
    def test_heal_refuses_nodes_it_did_not_fail(self):
        file, _ = build()
        node = file.fail_data_bucket(1)
        with pytest.raises(ValueError):
            file.failures.heal([node])
        file.failures.heal([node], force=True)
        assert_all_readable(file)

    def test_force_heal_is_silent_legacy_restore(self):
        """force=True must bypass the rejoin handshake entirely: the
        node resurrects with its RAM state intact, exactly the
        pre-durability restore semantics."""
        file, tracer = build()
        file.failures.crash(["f.d1"])
        file.failures.heal(["f.d1"], force=True)
        assert tracer.counts.get("bucket.restart") is None
        assert tracer.counts.get("catchup.data") is None
        assert_all_readable(file)
        assert file.verify_parity_consistency() == []

    def test_nondurable_heal_keeps_legacy_silence(self):
        """With durability off there is no disk to replay: a normal
        heal behaves exactly like the legacy silent restore."""
        file, tracer = build(durability=False)
        file.failures.crash(["f.d1"])
        file.failures.heal(["f.d1"])
        assert tracer.counts.get("bucket.restart") is None
        assert_all_readable(file)
        assert file.verify_parity_consistency() == []


class TestCorruptDeliveryAuditRepair:
    def test_inflight_corruption_detected_localized_repaired(self):
        """`corrupt` fault mode end to end: a Δ arrives with flipped
        bytes, the signature audit localizes the poisoned parity
        column, and repair_corruption rebuilds it from the clean
        remainder."""
        file, _ = build(durability=False, count=30, observe=False)
        plane = FaultPlane(rng=np.random.default_rng(13))
        plane.add_rule(
            kinds={"parity.update"}, recipient="f.p0.0", corrupt=1.0
        )
        file.network.install_fault_plane(plane)
        victim = next(
            key for key in range(30) if file.find_bucket_of(key) < 4
        )
        file.update(victim, b"poisoned-delta-payload")
        plane.clear_rules()
        assert plane.counters["corrupted"] >= 1

        report = file.audit_group(0)
        assert not report["clean"]
        m = file.config.group_size
        positions = {
            pos for pos in report["suspects"].values() if pos is not None
        }
        assert positions == {m + 0}  # parity column 0, localized
        file.repair_corruption(0, m + 0)
        assert file.audit_group(0)["clean"]
        assert file.verify_parity_consistency() == []
        outcome = file.search(victim)
        assert outcome.found and outcome.value == b"poisoned-delta-payload"


class TestKnobsOffTraces:
    @staticmethod
    def _run_workload(durability):
        config = LHRSConfig(
            group_size=4, availability=2, bucket_capacity=8,
            parity_ack=True, client_acks=True, durability=durability,
        )
        file = LHRSFile(config)
        tracer, _, _ = file.enable_observability()
        rng = np.random.default_rng(3)
        for i in range(300):
            key = int(rng.integers(0, 120))
            roll = rng.random()
            if roll < 0.5:
                file.insert(key, b"x%d" % i)
            elif roll < 0.7:
                file.delete(key)
            else:
                file.search(key)
        return tracer.to_jsonl()

    def test_durability_off_is_byte_identical_run_to_run(self):
        first = self._run_workload(False)
        assert first == self._run_workload(False)
        for event in ("disk.checkpoint", "bucket.restart", "catchup."):
            assert event not in first

    def test_durability_on_stays_deterministic(self):
        assert self._run_workload(True) == self._run_workload(True)


class TestRestartSoak:
    def test_soak_with_crash_restart_windows(self):
        """Crash windows close through the rejoin handshake while the
        workload runs: every acked write must survive the restarts."""
        file, tracer = build(count=0, wal_fsync_interval=4)
        injector = file.failures
        victims = ["f.d0", "f.d1", "f.d2", "f.p0.0", "f.p0.1"]
        for w, at in enumerate(range(80, 500, 60)):
            injector.schedule_crash(
                victims[w % len(victims)], at=float(at), duration=40.0
            )

        rng = np.random.default_rng(17)
        oracle: dict[int, bytes] = {}
        ambiguous: set[int] = set()
        for t in range(400):
            key = int(rng.integers(0, 150))
            roll = float(rng.random())
            try:
                if roll < 0.55:
                    value = b"s%d-%d" % (t, key)
                    file.insert(key, value)
                    oracle[key] = value
                    ambiguous.discard(key)
                elif roll < 0.75:
                    file.delete(key)
                    oracle.pop(key, None)
                    ambiguous.discard(key)
                else:
                    file.search(key)
            except OperationFailed:
                if roll < 0.75:
                    ambiguous.add(key)

        net = file.network
        while injector.pending_events:
            net.advance(60.0)
        net.advance(60.0)
        entries = file.rs_coordinator.run_probe_cycle(rounds=3)
        assert entries[-1]["unavailable"] == []

        assert file.verify_parity_consistency() == []
        for key, value in oracle.items():
            if key in ambiguous:
                continue
            outcome = file.search(key)
            assert outcome.found and outcome.value == value, key
        # restarts really happened (windows closed through the
        # handshake, not through report-driven rebuilds alone)
        assert tracer.counts.get("bucket.restart", 0) >= 1
