"""Tests of the finite hot-spare pool."""

import pytest

from repro.core import LHRSConfig, LHRSFile, RecoveryError
from repro.sim.rng import make_rng


def build(spares, k=1, count=150):
    file = LHRSFile(
        LHRSConfig(group_size=4, availability=k, bucket_capacity=8,
                   spare_servers=spares)
    )
    rng = make_rng(17)
    for key in rng.choice(10**9, size=count, replace=False):
        file.insert(int(key), b"spare-me")
    return file


class TestSparePool:
    def test_unbounded_by_default(self):
        file = build(spares=None)
        for bucket in (0, 1, 2, 3, 4):
            node = file.fail_data_bucket(bucket)
            file.recover([node])
        assert file.rs_coordinator.spares_remaining is None

    def test_recoveries_consume_spares(self):
        file = build(spares=3)
        for bucket in (0, 5):
            node = file.fail_data_bucket(bucket)
            file.recover([node])
        assert file.rs_coordinator.spares_remaining == 1

    def test_exhaustion_raises(self):
        file = build(spares=1)
        node = file.fail_data_bucket(0)
        file.recover([node])
        node = file.fail_data_bucket(1)
        with pytest.raises(RecoveryError, match="spare pool exhausted"):
            file.recover([node])

    def test_parity_recovery_also_consumes(self):
        file = build(spares=2, k=2)
        nodes = [file.fail_parity_bucket(0, 0), file.fail_parity_bucket(0, 1)]
        file.recover(nodes)
        assert file.rs_coordinator.spares_remaining == 0

    def test_zero_spares_blocks_all_recovery(self):
        file = build(spares=0)
        node = file.fail_data_bucket(0)
        with pytest.raises(RecoveryError, match="spare pool exhausted"):
            file.recover([node])
        # Degraded reads still work: they need no spare.  Read a record
        # of the dead bucket itself via record recovery.
        parity = file.parity_servers(0)[0]
        key = next(
            record.keys[0] for record in parity.records.values()
            if 0 in record.keys
        )
        found, payload = file.recover_record(key)
        assert found and payload == b"spare-me"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LHRSConfig(spare_servers=-1)
