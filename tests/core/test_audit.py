"""Tests for signature-based scrubbing: detect, localize, repair."""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.sim.rng import make_rng


def build(k=2, count=200, capacity=8, seed=27, **kw):
    file = LHRSFile(
        LHRSConfig(group_size=4, availability=k, bucket_capacity=capacity, **kw)
    )
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * 3)
    return file, keys


def corrupt_data_record(file, bucket):
    """Silently flip bytes in one stored record (bit rot)."""
    server = file.data_servers()[bucket]
    key = next(iter(server.bucket.records))
    payload = bytearray(server.bucket.records[key])
    payload[0] ^= 0xFF
    payload[-1] ^= 0x0F
    server.bucket.records[key] = bytes(payload)
    return key, server.ranks[key]


def corrupt_parity_record(file, group, index):
    server = file.parity_servers(group)[index]
    rank, record = next(iter(server.records.items()))
    # Flip bits in the *stored* symbols: with the contiguous stripe
    # store, record.symbols is a view into the bucket's matrix, so the
    # rot must land in place to reach what dumps and scans read.
    record.symbols[0] ^= 0x3C
    return rank


class TestAuditDetection:
    def test_clean_file_audits_clean(self):
        file, _ = build()
        report = file.audit()
        assert report["clean"] and report["reports"] == []

    def test_detects_data_corruption(self):
        file, _ = build()
        key, rank = corrupt_data_record(file, bucket=1)
        report = file.audit_group(0)
        assert not report["clean"]
        assert rank in report["mismatched_ranks"]

    def test_localizes_data_corruption_with_k2(self):
        file, _ = build(k=2)
        key, rank = corrupt_data_record(file, bucket=2)
        report = file.audit_group(0)
        assert report["suspects"][rank] == 2  # position of bucket 2

    def test_localizes_parity_corruption(self):
        file, _ = build(k=2)
        rank = corrupt_parity_record(file, group=0, index=1)
        report = file.audit_group(0)
        assert rank in report["mismatched_ranks"]
        assert report["suspects"][rank] == 4 + 1  # m + parity index

    def test_k1_detects_but_cannot_localize(self):
        file, _ = build(k=1)
        _, rank = corrupt_data_record(file, bucket=0)
        report = file.audit_group(0)
        assert rank in report["mismatched_ranks"]
        assert report["suspects"][rank] is None

    def test_audit_file_scans_every_group(self):
        file, _ = build()
        groups = sorted(file.group_levels())
        corrupt_data_record(file, bucket=groups[-1] * 4)
        report = file.audit()
        assert not report["clean"]
        assert report["reports"][0]["group"] == groups[-1]

    def test_audit_moves_constant_bytes_per_record(self):
        """The scrub's selling point: wire bytes ≪ a full dump (the gap
        is the payload size; signatures are constant-size)."""
        file = LHRSFile(LHRSConfig(group_size=4, availability=2,
                                   bucket_capacity=32))
        rng = make_rng(28)
        for key in rng.choice(10**9, size=400, replace=False):
            file.insert(int(key), int(key).to_bytes(8, "big") * 40)  # 320 B
        with file.stats.measure("audit") as audit_w:
            file.audit_group(0)
        coordinator = file.rs_coordinator
        with file.stats.measure("dump") as dump_w:
            for bucket in range(4):
                coordinator.call(f"f.d{bucket}", "bucket.dump")
        assert audit_w.bytes < dump_w.bytes / 3


class TestRepair:
    def test_repair_data_corruption(self):
        file, _ = build(k=2)
        key, rank = corrupt_data_record(file, bucket=1)
        report = file.audit_group(0)
        position = report["suspects"][rank]
        file.repair_corruption(0, position)
        assert file.audit_group(0)["clean"]
        assert file.search(key).value == key.to_bytes(8, "big") * 3
        assert file.verify_parity_consistency() == []

    def test_repair_parity_corruption(self):
        file, _ = build(k=2)
        rank = corrupt_parity_record(file, group=1, index=0)
        report = file.audit_group(1)
        file.repair_corruption(1, report["suspects"][rank])
        assert file.audit_group(1)["clean"]
        assert file.verify_parity_consistency() == []

    def test_scrub_loop_heals_scattered_corruption(self):
        """The operational loop: audit -> repair every finding -> clean."""
        file, _ = build(k=2, count=300)
        groups = sorted(file.group_levels())
        corrupt_data_record(file, bucket=0)
        corrupt_data_record(file, bucket=groups[1] * 4 + 1)
        corrupt_parity_record(file, group=groups[2], index=1)
        report = file.audit()
        assert not report["clean"]
        for group_report in report["reports"]:
            positions = {
                p for p in group_report["suspects"].values() if p is not None
            }
            for position in positions:
                file.repair_corruption(group_report["group"], position)
        assert file.audit()["clean"]
        assert file.verify_parity_consistency() == []

    def test_lazy_mode_audit_flushes_first(self):
        file, keys = build(k=2, parity_batch_size=16)
        # Queued Δs must not read as corruption.
        file.update(keys[0], b"freshly-queued-update!!")
        assert file.audit()["clean"]
