"""Tests for LH*RS bucket merges: parity maintained through shrink."""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.sdds.coordinator import SplitPolicy
from repro.sim.rng import make_rng


def build(count=250, m=4, k=2, capacity=8, seed=9, split_policy=None, **kw):
    file = LHRSFile(
        LHRSConfig(group_size=m, availability=k, bucket_capacity=capacity, **kw),
        split_policy=split_policy,
    )
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * 2)
    return file, keys


class TestRSMerge:
    def test_single_merge_keeps_parity_consistent(self):
        file, keys = build()
        before = file.bucket_count
        file.rs_coordinator.merge_once()
        assert file.bucket_count == before - 1
        assert file.total_records() == len(keys)
        assert file.verify_parity_consistency() == []

    def test_merge_retires_singleton_group(self):
        file, _ = build()
        # Merge until the last bucket is a group's first (number % m == 0).
        while (file.bucket_count - 1) % 4 != 0:
            file.rs_coordinator.merge_once()
        groups_before = len(file.group_levels())
        dying = (file.bucket_count - 1) // 4
        file.rs_coordinator.merge_once()
        assert len(file.group_levels()) == groups_before - 1
        assert f"f.p{dying}.0" not in file.network.nodes
        assert file.verify_parity_consistency() == []

    def test_deep_shrink_and_regrow(self):
        file, keys = build(count=150)
        # Empty the file first; merging an over-full file would be
        # fought (correctly) by the coordinator's load control.
        for key in keys[:140]:
            file.delete(key)
        survivors = keys[140:]
        while file.bucket_count > 4:
            file.rs_coordinator.merge_once()
        assert file.total_records() == 10
        assert file.verify_parity_consistency() == []
        assert list(file.group_levels()) == [0]
        for key in survivors:
            assert file.search(key).found
        # Regrow: groups and their parity come back.
        rng = make_rng(10)
        for key in rng.choice(10**8, size=200, replace=False):
            file.insert(int(key), b"z" * 16)
        assert len(file.group_levels()) > 1
        assert file.verify_parity_consistency() == []

    def test_recovery_still_works_after_merges(self):
        file, keys = build()
        for _ in range(3):
            file.rs_coordinator.merge_once()
        node = file.fail_data_bucket(1)
        file.recover([node])
        assert file.verify_parity_consistency() == []
        sample = [k for k in keys if file.find_bucket_of(k) == 1][:5]
        for key in sample:
            assert file.search(key).found

    def test_merge_cost_includes_regrouping(self):
        """LH*RS merges pay parity re-grouping (contrast: LH*g's merges
        of never-moved records would not); one delete-batch per source
        parity bucket and one insert-batch per absorber parity bucket."""
        file, _ = build(k=2)
        with file.stats.measure("merge") as window:
            file.rs_coordinator.merge_once()
        assert window.by_kind.get("parity.batch", 0) >= 2

    def test_underflow_policy_shrinks_rs_file(self):
        file, keys = build(
            count=600,
            capacity=16,
            split_policy=SplitPolicy(threshold=0.58, merge_threshold=0.25),
        )

        grown = file.bucket_count
        for key in keys[: int(len(keys) * 0.92)]:
            file.delete(key)
        assert file.bucket_count < grown
        assert file.verify_parity_consistency() == []
        survivors = keys[int(len(keys) * 0.92):]
        for key in survivors[::7]:
            assert file.search(key).found
