"""Unit tests for the Wing–Gong linearizability checker."""

import pytest

from repro.check.history import HistoryRecorder
from repro.check.linearize import check_history, linearize
from repro.check.model import DictModel
from tests.check.conftest import op


class TestLinearize:
    def test_empty_history_is_linearizable(self):
        verdict = linearize([])
        assert verdict.ok and verdict.witness == []

    def test_sequential_history_accepted_with_witness(self):
        ops = [
            op(1, "insert", 0, 1, 2, value="a"),
            op(2, "search", 0, 3, 4, status="found", result="a"),
            op(3, "delete", 0, 5, 6),
            op(4, "search", 0, 7, 8, status="not_found"),
        ]
        verdict = linearize(ops)
        assert verdict.ok
        assert verdict.witness == [1, 2, 3, 4]

    def test_stale_read_after_completed_update_rejected(self):
        # update completed strictly before the search was invoked, so
        # real-time order forbids the search from seeing the old value.
        ops = [
            op(1, "insert", 0, 1, 2, value="a"),
            op(2, "update", 0, 3, 4, value="b"),
            op(3, "search", 0, 5, 6, status="found", result="a"),
        ]
        verdict = linearize(ops)
        assert not verdict.ok
        assert verdict.decided
        assert verdict.stuck  # the unplaceable ops are named

    def test_overlapping_reads_may_straddle_a_write(self):
        # Two searches concurrent with one update may see old and new —
        # in either order relative to each other.
        ops = [
            op(1, "insert", 0, 1, 2, value="a"),
            op(2, "update", 0, 3, 8, value="b"),
            op(3, "search", 0, 4, 5, status="found", result="b"),
            op(4, "search", 0, 6, 7, status="found", result="a"),
        ]
        assert not linearize(ops).ok  # b then a needs the write undone
        ops[2], ops[3] = (
            op(3, "search", 0, 4, 5, status="found", result="a"),
            op(4, "search", 0, 6, 7, status="found", result="b"),
        )
        assert linearize(ops).ok  # a then b: update linearizes between

    def test_memoization_collapses_equivalent_interleavings(self):
        # Many concurrent idempotent deletes: factorial interleavings,
        # but the (remaining, state) memo keeps the search polynomial.
        ops = [op(i + 1, "delete", 0, 1, 20 + i) for i in range(10)]
        verdict = linearize(ops)
        assert verdict.ok
        assert verdict.states_explored < 2**10

    def test_budget_exhaustion_is_undecided_not_ok(self):
        ops = [
            op(i + 1, "insert", 0, 1, 20 + i, value=f"v{i}")
            for i in range(8)
        ]
        verdict = linearize(ops, max_states=3)
        assert not verdict.ok
        assert not verdict.decided
        assert "gave up" in verdict.reason


class TestCheckHistory:
    def test_per_key_partition_and_failed_keys(self):
        ops = [
            op(1, "insert", 0, 1, 2, value="a"),
            op(2, "insert", 1, 3, 4, value="x"),
            op(3, "search", 0, 5, 6, status="found", result="a"),
            op(4, "search", 1, 7, 8, status="found", result="WRONG"),
        ]
        verdict = check_history(ops)
        assert not verdict.ok
        assert verdict.failed_keys == [1]
        assert verdict.keys_checked == 2
        assert verdict.checked_ops == 4
        assert "NOT linearizable" in verdict.describe()

    def test_whole_history_mode_agrees(self):
        ops = [
            op(1, "insert", 0, 1, 2, value="a"),
            op(2, "insert", 1, 3, 4, value="x"),
            op(3, "search", 0, 5, 6, status="found", result="a"),
        ]
        assert check_history(ops, per_key=False).ok
        ops.append(op(4, "search", 1, 7, 8, status="not_found"))
        assert not check_history(ops, per_key=False).ok

    def test_describe_mentions_every_failed_key(self):
        ops = [
            op(1, "search", 0, 1, 2, status="found", result="ghost"),
            op(2, "search", 3, 3, 4, status="found", result="ghost"),
        ]
        verdict = check_history(ops)
        text = verdict.describe()
        assert "key 0" in text and "key 3" in text

    def test_recorder_feeds_the_checker(self):
        recorder = HistoryRecorder()
        entry = recorder.invoke("c", "insert", 7, value="a")
        recorder.complete(entry, "ok")
        probe = recorder.invoke("c", "search", 7)
        recorder.complete(probe, "found", result="a")
        lost = recorder.invoke("c", "delete", 7)
        recorder.ambiguous(lost)
        assert recorder.completed_ops == 2
        assert recorder.ambiguous_ops == 1
        assert check_history(recorder.records).ok
        assert set(recorder.by_key()) == {7}

    def test_recorder_rejects_bogus_completion_status(self):
        recorder = HistoryRecorder()
        entry = recorder.invoke("c", "insert", 1, value="a")
        with pytest.raises(ValueError):
            recorder.complete(entry, "pending")

    def test_oprecord_bytes_roundtrip(self):
        from repro.check.history import OpRecord

        rec = op(1, "search", 0, 1, 2, status="found", result=b"\x00\xff")
        back = OpRecord.from_dict(rec.to_dict())
        assert back.result == b"\x00\xff"
        assert back == rec


def test_dict_model_search_budget_applies():
    ops = [
        op(i + 1, "insert", i, 1, 20 + i, value="v") for i in range(8)
    ]
    verdict = linearize(ops, DictModel, max_states=3)
    assert not verdict.ok and not verdict.decided
