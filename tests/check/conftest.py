"""Shared helpers for the model-checking harness tests."""

import pytest

from repro.check import mutants
from repro.check.history import OpRecord


@pytest.fixture(autouse=True)
def no_leaked_mutants():
    """Every test must leave the mutant registry empty — a leaked
    mutant would silently poison every later product test."""
    assert not mutants.ACTIVE
    yield
    assert not mutants.ACTIVE, f"leaked mutants: {mutants.ACTIVE}"


def op(
    op_id: int,
    kind: str,
    key: int,
    invoke: int,
    response: int | None = None,
    value=None,
    status: str | None = None,
    result=None,
) -> OpRecord:
    """Terse OpRecord builder: ``response=None`` makes a pending op,
    otherwise mutations default to ``"ok"`` and searches must pass
    ``status`` explicitly."""
    if response is None:
        status = "pending"
    elif status is None:
        status = "ok"
    return OpRecord(
        op_id=op_id, client="c", kind=kind, key=key, value=value,
        invoke=invoke, response=response, status=status, result=result,
    )
