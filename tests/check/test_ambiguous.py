"""Ambiguous-outcome semantics: timed-out operations may have applied
or not, hedged degraded reads record what the application saw, and
batches complete partially — the checker must accept every legal fate
and still reject genuine violations around them."""

from repro.check.harness import Scenario, run_scenario
from repro.check.history import HistoryRecorder
from repro.check.linearize import check_history, linearize
from repro.core import LHRSConfig, LHRSFile
from repro.core.group import data_node
from repro.sim import FaultPlane
from repro.sim.rng import make_rng
from tests.check.conftest import op


class TestAmbiguityInTheChecker:
    def test_lost_ack_read_either_way(self):
        # A pending insert (the op.ack may have been lost) permits both
        # futures: a later search may find the value or miss it.
        applied = [
            op(1, "insert", 0, 1, value="a"),  # pending
            op(2, "search", 0, 2, 3, status="found", result="a"),
        ]
        dropped = [
            op(1, "insert", 0, 1, value="a"),  # pending
            op(2, "search", 0, 2, 3, status="not_found"),
        ]
        assert linearize(applied).ok
        assert linearize(dropped).ok

    def test_pending_op_may_apply_late(self):
        # The pending delete's interval is [3, inf): it may linearize
        # between the two searches, explaining miss-then... and a
        # found-after-miss needs a *writer*, which only the pending
        # insert-before can no longer supply — rejected.
        legal = [
            op(1, "insert", 0, 1, 2, value="a"),
            op(2, "delete", 0, 3),  # pending
            op(3, "search", 0, 4, 5, status="found", result="a"),
            op(4, "search", 0, 6, 7, status="not_found"),
        ]
        assert linearize(legal).ok
        illegal = [
            op(1, "insert", 0, 1, 2, value="a"),
            op(2, "delete", 0, 3),  # pending
            op(3, "search", 0, 4, 5, status="not_found"),
            op(4, "search", 0, 6, 7, status="found", result="a"),
        ]
        assert not linearize(illegal).ok

    def test_pending_ops_cannot_excuse_a_stale_read(self):
        # Ambiguity is not a free pass: a search that saw a value no
        # (possibly-applied) op could have written is still a bug.
        ops = [
            op(1, "insert", 0, 1, 2, value="a"),
            op(2, "update", 0, 3, value="b"),  # pending
            op(3, "search", 0, 4, 5, status="found", result="c"),
        ]
        assert not linearize(ops).ok


class TestAmbiguityEndToEnd:
    def test_blackholed_scalar_ops_are_recorded_pending(self):
        scenario = Scenario(
            seed=1,
            fault_rules=[{"kinds": ["insert"], "drop": 1.0}],
            ops=[["insert", 5, "v5"], ["search", 5]],
        )
        result = run_scenario(scenario)
        assert result.ok
        statuses = [(r.kind, r.status) for r in result.history]
        assert statuses == [("insert", "pending"), ("search", "not_found")]

    def test_batch_partial_outcomes(self):
        # Black-hole one data bucket: batch members bound for it fall
        # back to the scalar path, exhaust retries and stay ambiguous;
        # members on healthy buckets complete normally — one batch,
        # mixed fates, still linearizable.
        scenario = Scenario(
            seed=5,
            config={"retry_attempts": 2},
            fault_rules=[{"recipient": "f.d1", "drop": 1.0}],
            ops=[
                ["batch", "insert", [[k, f"x{k}"] for k in range(8)]],
                ["search", 2],
                ["search", 1],
            ],
        )
        result = run_scenario(scenario)
        assert result.ok, result.verdict.describe()
        inserts = [r for r in result.history if r.kind == "insert"]
        assert len(inserts) == 8  # every member invoked up front
        pending = {r.key for r in inserts if r.status == "pending"}
        completed = {r.key for r in inserts if r.status == "ok"}
        assert pending and completed  # genuinely partial
        assert pending == {1, 5}  # keys addressed to the dark bucket
        searches = {r.key: r for r in result.history if r.kind == "search"}
        assert searches[2].status == "found"
        assert searches[1].status == "pending"

    def test_overloaded_batch_is_fully_ambiguous_not_wrong(self):
        scenario = Scenario(
            seed=3,
            fault_rules=[
                {"kinds": ["ops.batch"], "drop": 1.0},
                {"kinds": ["insert"], "drop": 1.0},
            ],
            ops=[
                ["batch", "insert", [[10, "a"], [11, "b"], [12, "c"]]],
                ["search", 10],
            ],
        )
        result = run_scenario(scenario)
        assert result.ok
        inserts = [r for r in result.history if r.kind == "insert"]
        assert all(r.status == "pending" for r in inserts)


class TestHedgedDegradedReads:
    def make_straggler_file(self, records=40, straggle=50.0):
        config = LHRSConfig(
            group_size=4, availability=1, bucket_capacity=8,
            client_acks=True, read_deadline=24.0,
        )
        file = LHRSFile(config)
        file.enable_service_model(link_latency=0.25, service_time=1.0)
        plane = FaultPlane(rng=make_rng(5))
        file.network.install_fault_plane(plane)
        recorder = HistoryRecorder()
        file.client.recorder = recorder  # before any op: full history
        oracle = {}
        for key in range(records):
            value = b"g%d" % key
            file.insert(key, value)
            oracle[key] = value
        victim = max(
            range(file.bucket_count),
            key=lambda b: sum(
                1 for k in oracle if file.find_bucket_of(k) == b
            ),
        )
        plane.add_slow_rule(node=data_node(file.file_id, victim),
                            factor=straggle)
        return file, recorder, oracle

    def test_hedged_reads_record_the_served_outcome(self):
        file, recorder, oracle = self.make_straggler_file()
        for _ in range(3):
            for key in oracle:
                outcome = file.search(key)
                assert outcome.found and outcome.value == oracle[key]
        client = file.client
        assert client.hedged_reads > 0        # the hedge path fired
        assert client.degraded_fallbacks > 0  # served via read.degraded
        searches = [r for r in recorder.records if r.kind == "search"]
        assert len(searches) == 3 * len(oracle)
        # every search completed (hedging is not ambiguity: the client
        # got a definite answer) and recorded the value the app saw
        assert all(r.status == "found" for r in searches)
        assert all(r.result == oracle[r.key] for r in searches)

    def test_hedged_history_is_linearizable(self):
        file, recorder, oracle = self.make_straggler_file(records=24)
        for key in list(oracle)[:8]:
            file.update(key, b"u%d" % key)
            oracle[key] = b"u%d" % key
        for _ in range(2):
            for key in oracle:
                file.search(key)
        verdict = check_history(recorder.records)
        assert verdict.ok, verdict.describe()
        assert file.client.hedged_reads + file.client.degraded_fallbacks > 0
