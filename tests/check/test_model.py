"""Unit tests for the sequential reference models."""

from repro.check.model import ABSENT, INCOMPATIBLE, DictModel, KeyModel
from tests.check.conftest import op


class TestKeyModel:
    def test_insert_and_update_are_upserts(self):
        state = KeyModel.initial
        assert state is ABSENT
        state = KeyModel.apply(state, op(1, "update", 0, 1, 2, value="a"))
        assert state == "a"  # update on absent key still writes
        state = KeyModel.apply(state, op(2, "insert", 0, 3, 4, value="b"))
        assert state == "b"  # insert on present key overwrites

    def test_delete_is_idempotent(self):
        state = KeyModel.apply(KeyModel.initial, op(1, "delete", 0, 1, 2))
        assert state is ABSENT
        assert KeyModel.apply(state, op(2, "delete", 0, 3, 4)) is ABSENT

    def test_search_found_requires_exact_value(self):
        good = op(1, "search", 0, 1, 2, status="found", result="a")
        bad = op(2, "search", 0, 3, 4, status="found", result="b")
        assert KeyModel.apply("a", good) == "a"
        assert KeyModel.apply("a", bad) is INCOMPATIBLE
        assert KeyModel.apply(ABSENT, good) is INCOMPATIBLE

    def test_search_not_found_requires_absence(self):
        miss = op(1, "search", 0, 1, 2, status="not_found")
        assert KeyModel.apply(ABSENT, miss) is ABSENT
        assert KeyModel.apply("a", miss) is INCOMPATIBLE

    def test_pending_search_never_constrains(self):
        ghost = op(1, "search", 0, 1)  # pending: no observed outcome
        assert KeyModel.apply("a", ghost) == "a"
        assert KeyModel.apply(ABSENT, ghost) is ABSENT

    def test_found_none_value_is_distinct_from_absent(self):
        # A record can legitimately hold value None; the model must not
        # confuse it with key absence.
        state = KeyModel.apply(ABSENT, op(1, "insert", 0, 1, 2, value=None))
        assert state is None
        seen = op(2, "search", 0, 3, 4, status="found", result=None)
        assert KeyModel.apply(state, seen) is None
        assert KeyModel.apply(ABSENT, seen) is INCOMPATIBLE


class TestDictModel:
    def test_state_is_sorted_and_hashable(self):
        state = DictModel.initial
        state = DictModel.apply(state, op(1, "insert", 2, 1, 2, value="b"))
        state = DictModel.apply(state, op(2, "insert", 1, 3, 4, value="a"))
        assert state == ((1, "a"), (2, "b"))
        hash(state)  # memoization requires hashability

    def test_upsert_replaces_in_place(self):
        state = ((1, "a"), (2, "b"))
        state = DictModel.apply(state, op(1, "update", 1, 1, 2, value="z"))
        assert state == ((1, "z"), (2, "b"))

    def test_delete_removes_only_its_key(self):
        state = ((1, "a"), (2, "b"))
        assert DictModel.apply(state, op(1, "delete", 1, 1, 2)) == ((2, "b"),)
        assert DictModel.apply((), op(2, "delete", 5, 3, 4)) == ()

    def test_search_constrains_per_key(self):
        state = ((1, "a"),)
        hit = op(1, "search", 1, 1, 2, status="found", result="a")
        stale = op(2, "search", 1, 3, 4, status="found", result="x")
        miss = op(3, "search", 2, 5, 6, status="not_found")
        assert DictModel.apply(state, hit) == state
        assert DictModel.apply(state, stale) is INCOMPATIBLE
        assert DictModel.apply(state, miss) == state
        present = op(4, "search", 1, 7, 8, status="not_found")
        assert DictModel.apply(state, present) is INCOMPATIBLE
