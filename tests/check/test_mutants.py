"""The checker's self-test: three seeded consistency bugs, each of
which the harness must catch within a bounded seed budget and shrink to
a replayable counterexample of at most ten operations.

A model checker that has never caught a bug proves nothing; these
mutants are the evidence the linearizability verdicts carry weight.
"""

import pytest

from repro.check import mutants
from repro.check.harness import make_workload, run_scenario
from repro.check.shrink import shrink_scenario

#: The bounded budget the ISSUE pins: every mutant must fall to one of
#: these seeds (the workload shape matches the CI mutant sweep).
SEED_BUDGET = 25
WORKLOAD = dict(ops=70, keys=8, prefill=12, crash_rate=0.10)


def first_failing_seed(mutant: str) -> int | None:
    for seed in range(SEED_BUDGET):
        scenario = make_workload(seed=seed, **WORKLOAD)
        if not run_scenario(scenario, mutant=mutant).ok:
            return seed
    return None


class TestRegistry:
    def test_enabled_scopes_and_restores(self):
        assert not mutants.is_active("drop_parity_seq")
        with mutants.enabled("drop_parity_seq"):
            assert mutants.is_active("drop_parity_seq")
        assert not mutants.is_active("drop_parity_seq")

    def test_enabled_none_is_a_no_op(self):
        with mutants.enabled(None):
            assert not mutants.ACTIVE

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError):
            mutants.enable("off_by_one_everywhere")
        assert not mutants.ACTIVE

    def test_disable_all(self):
        mutants.enable("drop_parity_seq")
        mutants.enable("double_apply_delete")
        mutants.disable_all()
        assert not mutants.ACTIVE


@pytest.mark.parametrize(
    "mutant", sorted(mutants.MUTANT_NAMES)
)
class TestMutantsAreCaught:
    def test_detected_shrunk_and_replayable(self, mutant):
        seed = first_failing_seed(mutant)
        assert seed is not None, (
            f"{mutant}: not detected within {SEED_BUDGET} seeds — the "
            "checker has gone blind"
        )
        scenario = make_workload(seed=seed, **WORKLOAD)

        # The same seed without the mutant is clean: the detection is
        # the mutant's fault, not a checker false positive.
        assert run_scenario(scenario).ok

        shrunk, stats = shrink_scenario(scenario, mutant=mutant)
        assert shrunk.client_op_count() <= 10, (
            f"{mutant}: shrunk to {shrunk.client_op_count()} client ops"
        )
        assert stats.final_steps <= stats.initial_steps

        # Replayable: the shrunk scenario deterministically re-fails.
        replay = run_scenario(shrunk, mutant=mutant)
        assert not replay.ok
        assert replay.verdict.failed_keys


def test_clean_runs_have_no_false_positives():
    for seed in range(10):
        scenario = make_workload(seed=seed, **WORKLOAD)
        result = run_scenario(scenario)
        assert result.ok, f"seed {seed}: {result.verdict.describe()}"
