"""PCT-style scenarios interleaving crash → durable restart → catch-up
with client batches: the recorded history must stay linearizable.

`make_workload(reboot=True)` emits ``["reboot", node]`` revive steps —
routed through the injector's rejoin handshake instead of the silent
restore — under a durability-on config, so every schedule exercises the
WAL replay + delta catch-up path under concurrent client traffic.
"""

from repro.check.harness import make_workload, run_scenario


class TestRestartScenarios:
    def test_restart_catchup_histories_linearize(self):
        for seed in range(6):
            scenario = make_workload(
                seed=seed, ops=50, keys=12, prefill=10,
                reboot=True, config={"durability": True},
            )
            result = run_scenario(scenario)
            assert result.ok, (
                f"seed {seed}: {result.verdict.describe()}"
            )
            assert result.verdict.checked_ops > 0

    def test_unsynced_tail_restarts_linearize(self):
        """Larger fsync interval: reboots lose acked WAL tails, which
        catch-up must refetch — invisible to the linearizability
        oracle if (and only if) no acked op is lost."""
        for seed in (2, 7, 11):
            scenario = make_workload(
                seed=seed, ops=50, keys=10, prefill=8,
                reboot=True,
                config={"durability": True, "wal_fsync_interval": 6},
            )
            result = run_scenario(scenario)
            assert result.ok, (
                f"seed {seed}: {result.verdict.describe()}"
            )

    def test_reboot_workloads_are_deterministic(self):
        scenario = make_workload(
            seed=4, ops=40, keys=10, prefill=8,
            reboot=True, config={"durability": True},
        )
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert [r.to_dict() for r in first.history] == [
            r.to_dict() for r in second.history
        ]
        assert first.tracer.to_jsonl() == second.tracer.to_jsonl()

    def test_reboot_flag_changes_revive_step_kind(self):
        plain = make_workload(seed=4, ops=40)
        rebooting = make_workload(seed=4, ops=40, reboot=True)
        kinds = {step[0] for step in rebooting.ops}
        assert "restore" not in kinds
        assert {step[0] for step in plain.ops} - kinds == {"restore"} or (
            "restore" not in {step[0] for step in plain.ops}
        )
