"""Unit tests for the delivery schedulers and the bounded-DFS explorer."""

from types import SimpleNamespace

import pytest

from repro.check.scheduler import (
    DFSScheduler,
    FifoScheduler,
    PCTScheduler,
    build_scheduler,
    explore,
)
from repro.sim.messages import Message


def batch(*channels: str) -> list[Message]:
    """One matured batch: a message per listed sender (all to "dst")."""
    return [Message(sender=s, recipient="dst", kind="op.ack") for s in channels]


NET = SimpleNamespace(fault_plane=None, tracer=None, now=0.0)


class FakePlane:
    """Just enough FaultPlane for the PCT defer branch."""

    def __init__(self, held: int = 0):
        self.held = held
        self.requeued: list[tuple[Message, float]] = []

    def held_count(self, sender, recipient):
        return self.held

    def requeue(self, message, release_at):
        self.requeued.append((message, release_at))


class TestFifo:
    def test_returns_the_batch_untouched(self):
        due = batch("a", "b", "c")
        assert FifoScheduler().schedule(due, NET) is due


class TestPCT:
    def order(self, scheduler, batches):
        out = []
        for due in batches:
            out.append([
                m.sender for m in scheduler.schedule(due, NET)
            ])
        return out

    def test_same_seed_same_schedule(self):
        batches = [batch("a", "b", "c", "d") for _ in range(30)]
        first = self.order(PCTScheduler(seed=7, defer_probability=0.0),
                           batches)
        second = self.order(PCTScheduler(seed=7, defer_probability=0.0),
                            batches)
        assert first == second

    def test_different_seeds_diverge(self):
        batches = [batch("a", "b", "c", "d", "e", "f") for _ in range(50)]
        assert (
            self.order(PCTScheduler(seed=0, defer_probability=0.0), batches)
            != self.order(PCTScheduler(seed=1, defer_probability=0.0),
                          batches)
        )

    def test_actually_reorders_sometimes(self):
        scheduler = PCTScheduler(seed=3, defer_probability=0.0)
        self.order(scheduler,
                   [batch("a", "b", "c", "d", "e") for _ in range(50)])
        assert scheduler.reorderings > 0

    def test_per_channel_fifo_is_preserved(self):
        scheduler = PCTScheduler(seed=11, defer_probability=0.0)
        due = batch("a", "b", "a", "b", "a")
        for message, tag in zip(due, ("a1", "b1", "a2", "b2", "a3")):
            message.payload = tag
        out = scheduler.schedule(due, NET)
        a_tags = [m.payload for m in out if m.sender == "a"]
        b_tags = [m.payload for m in out if m.sender == "b"]
        assert a_tags == ["a1", "a2", "a3"]
        assert b_tags == ["b1", "b2"]

    def test_defers_whole_channels_via_the_plane(self):
        plane = FakePlane(held=0)
        net = SimpleNamespace(fault_plane=plane, tracer=None, now=10.0)
        scheduler = PCTScheduler(seed=1, defer_probability=0.9,
                                 defer_window=3.0)
        out = scheduler.schedule(batch("a", "a", "b"), net)
        assert scheduler.deferrals > 0
        assert plane.requeued
        for _, release_at in plane.requeued:
            assert 10.0 < release_at <= 10.0 + 1.0 + 3.0
        # deferred messages left the batch entirely
        assert len(out) + len(plane.requeued) == 3

    def test_never_defers_a_channel_with_held_traffic(self):
        plane = FakePlane(held=2)  # unmatured messages queued behind
        net = SimpleNamespace(fault_plane=plane, tracer=None, now=0.0)
        scheduler = PCTScheduler(seed=1, defer_probability=0.99)
        out = scheduler.schedule(batch("a", "b"), net)
        assert not plane.requeued and len(out) == 2

    def test_defer_probability_validated(self):
        with pytest.raises(ValueError):
            PCTScheduler(defer_probability=1.0)


class TestDFS:
    def test_choices_pick_the_interleaving(self):
        due = batch("a", "b")
        default = DFSScheduler().schedule(due, NET)
        assert [m.sender for m in default] == ["a", "b"]
        flipped = DFSScheduler(choices=[1]).schedule(batch("a", "b"), NET)
        assert [m.sender for m in flipped] == ["b", "a"]

    def test_decisions_recorded_only_at_real_branches(self):
        scheduler = DFSScheduler()
        scheduler.schedule(batch("a", "a", "a"), NET)  # one live channel
        assert scheduler.decisions == []
        scheduler.schedule(batch("a", "b"), NET)
        assert scheduler.decisions == [(0, 2)]
        assert scheduler.describe() == {"mode": "dfs", "choices": [0]}

    def test_per_channel_fifo_under_any_choices(self):
        due = batch("a", "b", "a", "b")
        for message, tag in zip(due, ("a1", "b1", "a2", "b2")):
            message.payload = tag
        out = DFSScheduler(choices=[1, 1, 0, 0]).schedule(due, NET)
        assert [m.payload for m in out if m.sender == "a"] == ["a1", "a2"]
        assert [m.payload for m in out if m.sender == "b"] == ["b1", "b2"]


class TestExplore:
    def run_factory(self, bad_first_sender=None):
        def run(scheduler):
            out = scheduler.schedule(batch("a", "b", "c"), NET)
            return out[0].sender != bad_first_sender
        return run

    def test_clean_tree_is_enumerated_completely(self):
        result = explore(self.run_factory(None))
        assert result.ok and result.complete
        # 3 first picks x 2 second picks = 6 total interleavings
        assert result.runs == 6

    def test_failing_schedule_is_found_and_replayable(self):
        result = explore(self.run_factory("c"))
        assert not result.ok
        assert result.schedule is not None
        replay = DFSScheduler(result.schedule)
        out = replay.schedule(batch("a", "b", "c"), NET)
        assert out[0].sender == "c"

    def test_run_budget_bounds_the_search(self):
        result = explore(self.run_factory(None), max_runs=2)
        assert result.ok and not result.complete and result.runs == 2


class TestBuildScheduler:
    def test_round_trips_every_mode(self):
        assert build_scheduler(None) is None
        assert build_scheduler({"mode": "none"}) is None
        assert isinstance(build_scheduler({"mode": "fifo"}), FifoScheduler)
        pct = build_scheduler({"mode": "pct", "seed": 9,
                               "defer_probability": 0.2})
        assert isinstance(pct, PCTScheduler) and pct.seed == 9
        assert build_scheduler(pct.describe()).describe() == pct.describe()
        dfs = build_scheduler({"mode": "dfs", "choices": [1, 0]})
        assert isinstance(dfs, DFSScheduler) and dfs.choices == [1, 0]

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            build_scheduler({"mode": "chaotic-good"})
