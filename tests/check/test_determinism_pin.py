"""Determinism pin: installing the FIFO scheduler must be byte-for-byte
invisible.

The scheduler hook sits on the network's delayed-delivery hot path; the
cheapest way for it to rot is to perturb the legacy delivery order even
when no perturbation was asked for.  This pin runs the same fixed-seed
chaos workload — fault rules with delays, crash/restore windows, batch
traffic — once with no scheduler and once with ``FifoScheduler``
installed, and demands *identical everything*: the serialized trace,
the recorded history, and the verdict.  Any divergence means the hook
changed semantics, which would silently invalidate every baseline run.
"""

from dataclasses import replace

from repro.check.harness import make_workload, run_scenario


def run_pair(seed: int):
    baseline = make_workload(seed=seed, ops=60, keys=12, prefill=10,
                             scheduler=None)
    pinned = replace(baseline, scheduler={"mode": "fifo"})
    return (
        run_scenario(baseline, trace_capacity=None),
        run_scenario(pinned, trace_capacity=None),
    )


def test_fifo_scheduler_is_byte_identical_to_no_scheduler():
    for seed in (0, 7):
        bare, fifo = run_pair(seed)
        assert bare.tracer.to_jsonl() == fifo.tracer.to_jsonl(), (
            f"seed {seed}: FIFO scheduler perturbed the trace"
        )
        assert [r.to_dict() for r in bare.history] == [
            r.to_dict() for r in fifo.history
        ]
        assert bare.ok and fifo.ok


def test_pct_scheduler_actually_changes_the_schedule():
    # The counterpart guard: if PCT were also byte-identical, the
    # perturbation would be dead code and the sweep vacuous.
    baseline = make_workload(seed=3, ops=80, keys=12, prefill=10,
                             scheduler=None)
    perturbed = replace(baseline, scheduler={"mode": "pct", "seed": 3})
    bare = run_scenario(baseline, trace_capacity=None)
    pct = run_scenario(perturbed, trace_capacity=None)
    assert bare.ok and pct.ok
    assert bare.tracer.to_jsonl() != pct.tracer.to_jsonl()


def test_pct_runs_are_reproducible():
    scenario = make_workload(seed=11, ops=60, keys=12, prefill=10)
    first = run_scenario(scenario, trace_capacity=None)
    second = run_scenario(scenario, trace_capacity=None)
    assert first.tracer.to_jsonl() == second.tracer.to_jsonl()
