"""Property tests for the checker: soundness, completeness on
sequential executions, and the per-key ≡ whole-history equivalence the
P-composition optimization rests on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.history import OpRecord
from repro.check.linearize import check_history

KINDS = ("insert", "update", "delete", "search")


@st.composite
def sequential_histories(draw):
    """A history produced by *actually running* the ops against a dict,
    one at a time — linearizable by construction."""
    n = draw(st.integers(min_value=0, max_value=12))
    state: dict[int, str] = {}
    records, tick = [], 0
    for i in range(n):
        kind = draw(st.sampled_from(KINDS))
        key = draw(st.integers(min_value=0, max_value=2))
        invoke, response = tick + 1, tick + 2
        tick += 2
        value = result = None
        if kind in ("insert", "update"):
            value = draw(st.sampled_from(["a", "b", "c"]))
            state[key] = value
            status = "ok"
        elif kind == "delete":
            state.pop(key, None)
            status = "ok"
        elif key in state:
            status, result = "found", state[key]
        else:
            status = "not_found"
        records.append(OpRecord(
            op_id=i + 1, client="c", kind=kind, key=key, value=value,
            invoke=invoke, response=response, status=status, result=result,
        ))
    return records


@st.composite
def arbitrary_histories(draw):
    """Small histories with arbitrary overlap (including pending ops)
    and arbitrary — possibly impossible — search outcomes."""
    n = draw(st.integers(min_value=0, max_value=5))
    records = []
    for i in range(n):
        kind = draw(st.sampled_from(KINDS))
        key = draw(st.integers(min_value=0, max_value=1))
        invoke = draw(st.integers(min_value=0, max_value=8))
        pending = draw(st.booleans())
        response = None if pending else invoke + 1 + draw(
            st.integers(min_value=0, max_value=4)
        )
        value = result = None
        status = "pending"
        if kind in ("insert", "update"):
            value = draw(st.sampled_from(["a", "b"]))
            if not pending:
                status = "ok"
        elif kind == "delete":
            if not pending:
                status = "ok"
        elif not pending:
            status = draw(st.sampled_from(["found", "not_found"]))
            if status == "found":
                result = draw(st.sampled_from(["a", "b"]))
        records.append(OpRecord(
            op_id=i + 1, client="c", kind=kind, key=key, value=value,
            invoke=invoke, response=response, status=status, result=result,
        ))
    return records


@given(sequential_histories())
def test_sequential_executions_are_accepted(records):
    assert check_history(records).ok
    assert check_history(records, per_key=False).ok


@given(sequential_histories(), st.data())
def test_corrupted_search_result_is_rejected(records, data):
    hits = [r for r in records if r.status == "found"]
    if not hits:
        return  # nothing to corrupt in this draw
    victim = data.draw(st.sampled_from(hits))
    victim.result = "NEVER-WRITTEN"  # no generator emits this value
    assert not check_history(records).ok
    assert not check_history(records, per_key=False).ok


@settings(max_examples=200)
@given(arbitrary_histories())
def test_per_key_equals_whole_history_verdict(records):
    """P-composition: the conjunction of per-key verdicts must equal
    the whole-history dictionary-model verdict on every history."""
    assert (
        check_history(records, per_key=True).ok
        == check_history(records, per_key=False).ok
    )
