"""Scenario running: determinism, recording coverage, counterexample
round-trips, and the end-to-end clean sweep the CI smoke mirrors."""

from repro.check.harness import (
    Counterexample,
    Scenario,
    make_workload,
    run_scenario,
)


class TestRunScenario:
    def test_clean_workload_is_linearizable(self):
        scenario = make_workload(seed=1, ops=60, keys=12, prefill=12)
        result = run_scenario(scenario)
        assert result.ok, result.verdict.describe()
        assert result.errors == []
        # prefill + every client step is in the history
        assert len(result.history) >= scenario.client_op_count() + 12
        assert result.verdict.checked_ops > 0

    def test_runs_are_deterministic(self):
        scenario = make_workload(seed=5, ops=50, keys=10, prefill=8)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert [r.to_dict() for r in first.history] == [
            r.to_dict() for r in second.history
        ]
        assert first.verdict.ok == second.verdict.ok
        assert first.tracer.to_jsonl() == second.tracer.to_jsonl()

    def test_workload_generation_is_deterministic(self):
        assert make_workload(seed=9).to_dict() == make_workload(seed=9).to_dict()
        assert make_workload(seed=9).ops != make_workload(seed=10).ops

    def test_unknown_step_is_noted_not_raised(self):
        result = run_scenario(Scenario(seed=0, ops=[["warp", 3]]))
        assert result.ok
        assert len(result.errors) == 1 and "warp" in result.errors[0]

    def test_crash_without_restore_stays_evaluable(self):
        # Shrinking routinely strips restores; the run must still
        # produce a verdict over whatever history was recorded.
        scenario = Scenario(
            seed=2, prefill=4,
            ops=[["crash", "f.d1"], ["search", 1], ["search", 2]],
        )
        result = run_scenario(scenario)
        assert result.verdict.keys_checked >= 2

    def test_pct_seeds_stay_clean(self):
        # The miniature version of the CI model-check sweep.
        for seed in range(8):
            scenario = make_workload(seed=seed, ops=40, keys=10, prefill=8)
            result = run_scenario(scenario)
            assert result.ok, (
                f"seed {seed}: {result.verdict.describe()}"
            )


class TestScenarioRoundTrip:
    def test_dict_round_trip(self):
        scenario = make_workload(seed=3, ops=20)
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_client_op_count_skips_control_steps(self):
        scenario = Scenario(ops=[
            ["insert", 1, "a"], ["crash", "f.d0"], ["advance", 2.0],
            ["restore", "f.d0"], ["search", 1],
        ])
        assert scenario.client_op_count() == 2


class TestCounterexample:
    def test_save_load_replay(self, tmp_path):
        scenario = make_workload(
            seed=2, ops=70, keys=8, prefill=12, crash_rate=0.10
        )
        result = run_scenario(scenario, mutant="drop_parity_seq")
        assert not result.ok  # pinned by test_mutants; guard the fixture
        example = Counterexample.from_result(result, mutant="drop_parity_seq")
        path = tmp_path / "ce.json"
        example.save(str(path))

        loaded = Counterexample.load(str(path))
        assert loaded.mutant == "drop_parity_seq"
        assert loaded.scenario == scenario.to_dict()
        assert loaded.failure["failed_keys"] == result.verdict.failed_keys
        assert loaded.history == [r.to_dict() for r in result.history]
        assert loaded.trace_tail  # the evidence rides along

        replayed = loaded.replay()
        assert not replayed.ok
        assert replayed.verdict.failed_keys == result.verdict.failed_keys

    def test_same_scenario_without_mutant_passes(self):
        # The failing scenario only fails *because* of the mutant: the
        # same run against the real implementation is linearizable.
        scenario = make_workload(
            seed=2, ops=70, keys=8, prefill=12, crash_rate=0.10
        )
        assert run_scenario(scenario).ok
