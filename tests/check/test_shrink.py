"""Unit tests for ddmin and the scenario shrinker (against synthetic
failure predicates — the real-run path is covered by test_mutants)."""

import pytest

from repro.check.harness import Scenario
from repro.check.shrink import ShrinkStats, ddmin, shrink_scenario


def fresh_stats(budget: int = 400) -> ShrinkStats:
    return ShrinkStats(budget=budget)


class TestDdmin:
    def test_single_culprit_is_isolated(self):
        items = list(range(20))
        result = ddmin(items, lambda s: 7 in s, fresh_stats())
        assert result == [7]

    def test_interacting_pair_is_kept(self):
        items = list(range(20))
        result = ddmin(
            items, lambda s: 3 in s and 11 in s, fresh_stats()
        )
        assert sorted(result) == [3, 11]

    def test_order_is_preserved(self):
        items = ["a", "b", "c", "d", "e"]
        result = ddmin(
            items, lambda s: "b" in s and "d" in s, fresh_stats()
        )
        assert result == ["b", "d"]

    def test_vacuous_failure_shrinks_to_empty(self):
        assert ddmin(list(range(8)), lambda s: True, fresh_stats()) == []

    def test_budget_stops_the_loop(self):
        stats = fresh_stats(budget=1)
        result = ddmin(list(range(16)), lambda s: 5 in s, stats)
        assert 5 in result  # never returns a passing subset
        assert stats.exhausted

    def test_nothing_removable_terminates(self):
        items = [0, 1, 2, 3]
        result = ddmin(items, lambda s: len(s) == 4, fresh_stats())
        assert result == items


class TestShrinkScenario:
    def test_rejects_a_passing_scenario(self):
        scenario = Scenario(ops=[["insert", 1, "a"]])
        with pytest.raises(ValueError):
            shrink_scenario(scenario, fails=lambda s: False)

    def test_shrinks_to_the_failing_core(self):
        scenario = Scenario(
            seed=4,
            prefill=16,
            scheduler={"mode": "pct", "seed": 4},
            fault_rules=[{"kinds": ["op.ack"], "drop": 0.1},
                         {"kinds": ["iam"], "delay": 0.2}],
            ops=(
                [["insert", k, f"v{k}"] for k in range(10)]
                + [["delete", 5]]
                + [["search", k] for k in range(10)]
            ),
        )

        def fails(candidate: Scenario) -> bool:
            return any(
                step[0] == "delete" and step[1] == 5
                for step in candidate.ops
            )

        shrunk, stats = shrink_scenario(scenario, fails=fails)
        assert shrunk.ops == [["delete", 5]]
        assert shrunk.scheduler is None       # pass 1 dropped it
        assert shrunk.fault_rules == []       # pass 3 emptied the script
        assert shrunk.prefill == 0            # pass 4 halved it away
        assert stats.initial_steps == 21
        assert stats.final_steps == 1
        assert 0 < stats.runs <= stats.budget

    def test_scheduler_kept_when_failure_needs_it(self):
        scenario = Scenario(
            scheduler={"mode": "pct", "seed": 1},
            ops=[["insert", 1, "a"], ["search", 1]],
        )

        def fails(candidate: Scenario) -> bool:
            return candidate.scheduler is not None and bool(candidate.ops)

        shrunk, _ = shrink_scenario(scenario, fails=fails)
        assert shrunk.scheduler == {"mode": "pct", "seed": 1}
        assert len(shrunk.ops) == 1

    def test_budget_is_respected(self):
        scenario = Scenario(ops=[["search", k] for k in range(30)])
        shrunk, stats = shrink_scenario(
            scenario, budget=5, fails=lambda s: True
        )
        assert stats.runs <= 5 + 1  # the final pass may start one probe
        assert stats.exhausted
