"""Tests for message-level fault injection and failure schedules.

Covers the fault plane's four outcomes (drop / fail / duplicate / delay)
on both transports, the per-channel FIFO guarantee for delayed traffic,
the protected-kind exemption, the logical clock, and the failure
injector's schedules (crash windows, flaky nodes) and strict healing.
"""

import numpy as np
import pytest

from repro.sim import (
    DEFAULT_PROTECTED_KINDS,
    DeliveryFault,
    FailureInjector,
    FaultPlane,
    FaultRule,
    Network,
    Node,
    RetryPolicy,
)


class Echo(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = []

    def handle_ping(self, message):
        self.seen.append(message.payload)
        return (self.node_id, message.payload)

    def handle_split(self, message):
        self.seen.append(message.payload)
        return "split-ok"


@pytest.fixture
def net():
    network = Network()
    for name in ("a", "b", "c"):
        network.register(Echo(name))
    return network


def plane_on(net, **rule) -> FaultPlane:
    plane = FaultPlane(rng=np.random.default_rng(7))
    if rule:
        plane.add_rule(**rule)
    net.install_fault_plane(plane)
    return plane


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(attempts=6, backoff_base=1.0,
                             backoff_factor=2.0, backoff_max=5.0)
        assert [policy.delay(i) for i in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestFaultRule:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule(drop=1.5)
        with pytest.raises(ValueError):
            FaultRule(drop=0.6, fail=0.6)
        with pytest.raises(ValueError):
            FaultRule(delay_window=0)

    def test_matching_kind_sender_recipient(self):
        from repro.sim.messages import Message

        rule = FaultRule(kinds=frozenset({"ping"}), sender="f.d*",
                         recipient="f.p0.*")
        assert rule.matches(Message("f.d1", "f.p0.2", "ping", None), 0.0)
        assert not rule.matches(Message("f.d1", "f.p0.2", "pong", None), 0.0)
        assert not rule.matches(Message("f.coord", "f.p0.2", "ping", None), 0.0)
        assert not rule.matches(Message("f.d1", "f.p1.0", "ping", None), 0.0)

    def test_expiry(self):
        from repro.sim.messages import Message

        rule = FaultRule(until=10.0)
        message = Message("a", "b", "ping", None)
        assert rule.matches(message, 9.9)
        assert not rule.matches(message, 10.0)


class TestOutcomes:
    def test_drop_on_send_is_silent_and_charged(self, net):
        plane = plane_on(net, kinds={"ping"}, drop=1.0)
        net.send("a", "b", "ping", "x")
        assert net.nodes["b"].seen == []
        assert plane.counters["dropped"] == 1
        assert net.stats.total.messages == 1  # the message left the sender

    def test_fail_on_send_raises_request_fault(self, net):
        plane_on(net, kinds={"ping"}, fail=1.0)
        with pytest.raises(DeliveryFault) as err:
            net.send("a", "b", "ping", "x")
        assert err.value.stage == "request"
        assert net.nodes["b"].seen == []

    def test_duplicate_on_send_delivers_twice(self, net):
        plane_on(net, kinds={"ping"}, duplicate=1.0)
        net.send("a", "b", "ping", "x")
        assert net.nodes["b"].seen == ["x", "x"]

    def test_call_request_drop_means_handler_never_ran(self, net):
        plane_on(net, kinds={"ping"}, drop=1.0)
        with pytest.raises(DeliveryFault) as err:
            net.call("a", "b", "ping", "x")
        assert err.value.stage == "request"
        assert net.nodes["b"].seen == []

    def test_call_reply_drop_means_handler_did_run(self, net):
        # Only the reply kind matches, so the request goes through.
        plane_on(net, kinds={"ping.reply"}, drop=1.0)
        with pytest.raises(DeliveryFault) as err:
            net.call("a", "b", "ping", "x")
        assert err.value.stage == "reply"
        assert net.nodes["b"].seen == ["x"]  # the at-least-once hazard

    def test_call_duplicate_runs_handler_twice(self, net):
        plane_on(net, kinds={"ping"}, duplicate=1.0)
        result = net.call("a", "b", "ping", "x")
        assert result == ("b", "x")
        assert net.nodes["b"].seen == ["x", "x"]

    def test_calls_are_never_delayed(self, net):
        plane = plane_on(net, kinds={"ping"}, delay=1.0)
        assert net.call("a", "b", "ping", "x") == ("b", "x")
        assert plane.pending == 0

    def test_protected_kinds_exempt(self, net):
        plane = plane_on(net, drop=1.0)  # every kind, always
        assert "split" in DEFAULT_PROTECTED_KINDS
        net.send("a", "b", "split", "s")
        assert net.nodes["b"].seen == ["s"]
        assert plane.counters["dropped"] == 0

    def test_first_matching_rule_wins(self, net):
        plane = plane_on(net, kinds={"ping"}, drop=1.0)
        plane.add_rule(kinds={"ping"}, fail=1.0)
        net.send("a", "b", "ping", "x")
        assert plane.counters["dropped"] == 1
        assert plane.counters["failed"] == 0


class TestDelay:
    def test_delay_holds_until_clock_matures(self, net):
        plane = plane_on(net, kinds={"ping"}, delay=1.0, delay_window=3.0)
        net.send("a", "b", "ping", "late")
        assert net.nodes["b"].seen == []
        assert plane.pending == 1
        net.advance(4.0)
        assert net.nodes["b"].seen == ["late"]
        assert plane.pending == 0

    def test_channel_fifo_later_message_cannot_overtake(self, net):
        plane = plane_on(net, kinds={"ping"}, delay=1.0, delay_window=3.0)
        net.send("a", "b", "ping", "first")
        plane.clear_rules()
        # Same channel: forced behind the held message despite no rule.
        net.send("a", "b", "ping", "second")
        assert plane.pending == 2
        net.advance(5.0)
        assert net.nodes["b"].seen == ["first", "second"]

    def test_other_channels_overtake_freely(self, net):
        plane = plane_on(net, kinds={"ping"}, sender="a", delay=1.0)
        net.send("a", "b", "ping", "held")
        net.send("c", "b", "ping", "fast")
        assert net.nodes["b"].seen == ["fast"]
        net.advance(5.0)
        assert net.nodes["b"].seen == ["fast", "held"]

    def test_matured_message_to_dead_node_is_lost(self, net):
        plane = plane_on(net, kinds={"ping"}, delay=1.0)
        net.send("a", "b", "ping", "doomed")
        net.fail("b")
        net.advance(5.0)
        assert net.nodes["b"].seen == []
        assert plane.counters["lost_in_flight"] == 1
        assert plane.pending == 0


class TestMulticastReplyFaults:
    """Multicast replies pass the fault plane exactly like call replies.

    Pins the unified reply leg: a dropped/failed collected reply puts
    the recipient in ``unavailable`` (from the sender's seat a lost
    reply and a dead node look identical), but the handler DID run —
    the same at-least-once hazard `test_call_reply_drop_means_handler_
    did_run` pins for calls.
    """

    def test_dropped_reply_lands_recipient_in_unavailable(self, net):
        plane = plane_on(net, kinds={"ping.reply"}, drop=1.0)
        replies, unavailable = net.multicast("a", ["b", "c"], "ping", "x")
        assert replies == {}
        assert unavailable == ["b", "c"]
        assert plane.counters["dropped"] == 2
        # The handlers ran: the at-least-once hazard, as with calls.
        assert net.nodes["b"].seen == ["x"]
        assert net.nodes["c"].seen == ["x"]

    def test_dropped_reply_is_charged_to_stats(self, net):
        plane_on(net, kinds={"ping.reply"}, drop=1.0)
        before = net.stats.total.messages
        net.multicast("a", ["b"], "ping", "x")
        # Request + the reply that left the handler before being lost.
        assert net.stats.total.messages == before + 2

    def test_failed_reply_lands_recipient_in_unavailable(self, net):
        plane = plane_on(net, kinds={"ping.reply"}, fail=1.0)
        replies, unavailable = net.multicast("a", ["b"], "ping", "x")
        assert replies == {}
        assert unavailable == ["b"]
        assert plane.counters["failed"] == 1
        assert net.nodes["b"].seen == ["x"]

    def test_request_leg_faults_unchanged(self, net):
        # A request-kind rule still prevents the handler from running.
        plane_on(net, kinds={"ping"}, drop=1.0)
        replies, unavailable = net.multicast("a", ["b"], "ping", "x")
        assert replies == {}
        assert unavailable == ["b"]
        assert net.nodes["b"].seen == []

    def test_replies_are_never_delayed(self, net):
        plane = plane_on(net, kinds={"ping.reply"}, delay=1.0)
        replies, unavailable = net.multicast("a", ["b"], "ping", "x")
        assert replies == {"b": ("b", "x")}
        assert unavailable == []
        assert plane.pending == 0

    def test_uncollected_replies_bypass_the_plane(self, net):
        # collect_replies=False sends no reply messages, so reply rules
        # cannot touch the multicast (the scan fan-out path).
        plane = plane_on(net, kinds={"ping.reply"}, drop=1.0)
        replies, unavailable = net.multicast(
            "a", ["b"], "ping", "x", collect_replies=False
        )
        assert replies == {}
        assert unavailable == []
        assert plane.counters["dropped"] == 0
        assert net.nodes["b"].seen == ["x"]


class TestClock:
    def test_tick_per_top_level_operation(self, net):
        start = net.now
        net.send("a", "b", "ping")
        net.call("a", "b", "ping")
        assert net.now == start + 2.0

    def test_advance_validates_and_returns(self, net):
        with pytest.raises(ValueError):
            net.advance(-1.0)
        before = net.now
        assert net.advance(2.5) == before + 2.5

    def test_listeners_fire_on_advance(self, net):
        ticks = []
        net.add_clock_listener(ticks.append)
        net.advance(1.0)
        net.send("a", "b", "ping")
        assert len(ticks) == 2


class TestDeterminism:
    def test_same_seed_same_fates(self, net):
        from repro.sim.messages import Message

        outcomes = []
        for _ in range(2):
            plane = FaultPlane(rng=np.random.default_rng(42))
            plane.add_rule(kinds={"ping"}, drop=0.2, fail=0.2,
                           duplicate=0.2, delay=0.2)
            fates = [
                plane.outcome_for(Message("a", "b", "ping", i), now=float(i))[0]
                for i in range(200)
            ]
            outcomes.append(fates)
        assert outcomes[0] == outcomes[1]
        assert len(set(outcomes[0])) > 1  # actually exercised several fates


class TestFailureSchedules:
    def test_schedule_crash_window(self, net):
        inj = FailureInjector(net)
        inj.schedule_crash("b", at=2.0, duration=3.0)
        assert inj.pending_events == 2
        net.advance(2.0)
        assert not net.is_available("b")
        net.advance(3.0)
        assert net.is_available("b")
        assert [(a, n) for _, a, n in inj.event_log] == [
            ("crash", "b"), ("restore", "b")
        ]

    def test_schedule_validation(self, net):
        inj = FailureInjector(net)
        net.advance(5.0)
        with pytest.raises(ValueError):
            inj.schedule_crash("b", at=1.0)
        with pytest.raises(ValueError):
            inj.schedule_crash("b", at=6.0, duration=0)

    def test_restore_tolerates_rebuilt_node(self, net):
        # The node was rebuilt (unregistered) while its window was open:
        # the scheduled restore must not blow up.
        inj = FailureInjector(net)
        inj.schedule_crash("b", at=1.0, duration=2.0)
        net.advance(1.0)
        net.unregister("b")
        net.advance(5.0)
        assert "b" not in inj.currently_failed

    def test_make_flaky_cycles(self, net):
        inj = FailureInjector(net, rng=np.random.default_rng(3))
        inj.make_flaky(["b"], mtbf=2.0, mttr=1.0)
        crashes = 0
        for _ in range(200):
            net.advance(1.0)
            crashes = sum(
                1 for _, action, _ in inj.event_log if action == "crash"
            )
        restores = sum(
            1 for _, action, _ in inj.event_log if action == "restore"
        )
        assert crashes >= 5  # it flapped repeatedly
        assert abs(crashes - restores) <= 1

    def test_make_flaky_validation(self, net):
        inj = FailureInjector(net)
        with pytest.raises(ValueError):
            inj.make_flaky(["b"], mtbf=0, mttr=1.0)
        with pytest.raises(ValueError):
            inj.make_flaky(["b"], mtbf=1.0, mttr=-1.0)

    def test_stop_flaky_halts_new_cycles(self, net):
        inj = FailureInjector(net, rng=np.random.default_rng(3))
        inj.make_flaky(["b"], mtbf=1.0, mttr=1.0)
        inj.stop_flaky()
        for _ in range(50):
            net.advance(1.0)
        assert inj.pending_events == 0


class TestStrictHeal:
    def test_heal_unknown_injection_raises(self, net):
        inj = FailureInjector(net)
        inj.crash(["b"])
        with pytest.raises(ValueError, match="not failed by this injector"):
            inj.heal(["c"])

    def test_heal_force_restores_anyway(self, net):
        inj = FailureInjector(net)
        net.fail("c")  # failed behind the injector's back
        inj.heal(["c"], force=True)
        assert net.is_available("c")

    def test_injected_set_semantics(self, net):
        inj = FailureInjector(net)
        inj.crash(["b"])
        inj.crash(["b"])  # second crash of a down node is a no-op
        assert inj.currently_failed == ["b"]
        inj.heal()
        assert inj.currently_failed == []
        with pytest.raises(ValueError):
            inj.heal(["b"])  # already healed: no longer owned
