"""Tests for the latency/service-queue plane: charge accounting, lazy
drains, busy shedding, slow rules, jittered retries, and determinism."""

import json

import pytest

from repro.sim import (
    DEFAULT_SHEDDABLE_KINDS,
    FaultPlane,
    Network,
    Node,
    NodeBusy,
    ServiceModel,
    SlowRule,
)
from repro.sim.faults import RetryPolicy
from repro.sim.network import DeliveryFault
from repro.sim.rng import make_rng


class Sink(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = 0

    def handle_insert(self, message):
        self.seen += 1
        return "ok"

    def handle_bucket_split(self, message):
        self.seen += 1
        return "ok"


@pytest.fixture
def net():
    network = Network()
    for name in ("a", "b"):
        network.register(Sink(name))
    network.install_service_model(
        ServiceModel(link_latency=0.25, service_time=1.0, drain_rate=1.0)
    )
    return network


class TestCharges:
    def test_delivery_charges_link_plus_service(self, net):
        net.send("a", "b", "insert", {})
        # empty queue: 0.25 link + 1.0 * (1 + 0) service
        assert net.service.accumulated == pytest.approx(1.25)
        assert net.virtual_time == pytest.approx(net.now + 1.25)

    def test_reply_leg_charges_wire_time_only(self, net):
        net.call("a", "b", "insert", {})
        # request 1.25 + reply link 0.25 — no service on the caller
        assert net.service.accumulated == pytest.approx(1.5)

    def test_queue_depth_compounds_service_time(self, net):
        service = net.service
        # park two units without letting the clock move between them
        service.charge_bulk("b", 2.0, net.now)
        before = service.accumulated
        net.send("a", "b", "insert", {})
        # the send's own clock tick drains one unit first, then
        # 0.25 link + 1.0 * (1 + 1 still queued)
        assert service.accumulated - before == pytest.approx(2.25)

    def test_backlog_drains_with_the_clock(self, net):
        service = net.service
        service.charge_bulk("b", 4.0, net.now)
        net.advance(3.0)
        assert service.queue_depth("b", net.now) == pytest.approx(1.0)
        net.advance(10.0)
        assert service.queue_depth("b", net.now) == 0.0

    def test_link_and_service_overrides(self, net):
        net.service.set_link("a", "b", 2.0)
        net.service.set_service("b", 0.5)
        net.send("a", "b", "insert", {})
        assert net.service.accumulated == pytest.approx(2.5)

    def test_per_node_max_depth_tracked(self, net):
        net.service.charge_bulk("b", 5.0, net.now)
        net.send("a", "b", "insert", {})
        # bulk high-water 5.0; the send drained a unit then parked one
        assert net.service.max_depths["b"] == pytest.approx(5.0)
        assert "a" not in net.service.max_depths

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceModel(link_latency=-1.0)
        with pytest.raises(ValueError):
            ServiceModel(drain_rate=0.0)


class TestBusyShedding:
    def test_sheddable_kind_refused_at_the_bound(self, net):
        net.nodes["b"].inbound_queue_limit = 2
        net.send("a", "b", "insert", {})
        net.service.charge_bulk("b", 5.0, net.now)
        with pytest.raises(NodeBusy) as excinfo:
            net.send("a", "b", "insert", {})
        assert excinfo.value.node_id == "b"
        assert excinfo.value.stage == "busy"
        assert excinfo.value.queue_limit == 2
        assert excinfo.value.queue_depth >= 2
        assert net.service.counters["shed"] == 1
        # the refused message was never delivered
        assert net.nodes["b"].seen == 1

    def test_non_sheddable_kind_charges_past_the_bound(self, net):
        net.nodes["b"].inbound_queue_limit = 1
        net.service.charge_bulk("b", 9.0, net.now)
        net.send("a", "b", "bucket.split", {})  # structural: never shed
        assert net.nodes["b"].seen == 1

    def test_busy_is_a_delivery_fault(self):
        # every existing retry ladder catches DeliveryFault, so
        # backpressure is honored without new catch sites
        assert issubclass(NodeBusy, DeliveryFault)

    def test_unbounded_node_never_sheds(self, net):
        net.service.charge_bulk("b", 100.0, net.now)
        net.send("a", "b", "insert", {})
        assert net.service.counters["shed"] == 0

    def test_default_sheddable_kinds_exclude_structure(self):
        assert "insert" in DEFAULT_SHEDDABLE_KINDS
        assert "parity.update" in DEFAULT_SHEDDABLE_KINDS
        for kind in ("bucket.split", "bucket.load", "bucket.dump",
                     "parity.batch", "coord.journal.append"):
            assert kind not in DEFAULT_SHEDDABLE_KINDS


class TestSlowRules:
    def test_slowdown_defaults_to_one(self):
        plane = FaultPlane()
        assert plane.slowdown("f.d1", now=5.0) == 1.0

    def test_factor_applies_to_matching_nodes_only(self):
        plane = FaultPlane()
        plane.add_slow_rule(node="f.d*", factor=10.0)
        assert plane.slowdown("f.d3", now=0.0) == pytest.approx(10.0)
        assert plane.slowdown("f.p0.0", now=0.0) == 1.0

    def test_ramp_grows_with_the_clock(self):
        plane = FaultPlane()
        plane.add_slow_rule(node="f.d1", factor=2.0, ramp=0.5, start=10.0)
        assert plane.slowdown("f.d1", now=10.0) == pytest.approx(2.0)
        assert plane.slowdown("f.d1", now=14.0) == pytest.approx(4.0)
        # before start / after until the rule is dormant
        assert plane.slowdown("f.d1", now=9.0) == 1.0

    def test_until_expires_the_rule(self):
        plane = FaultPlane()
        plane.add_slow_rule(node="*", factor=5.0, start=0.0, until=20.0)
        assert plane.slowdown("x", now=19.0) == pytest.approx(5.0)
        assert plane.slowdown("x", now=20.0) == 1.0

    def test_rules_compose_multiplicatively(self):
        plane = FaultPlane()
        plane.add_slow_rule(node="f.*", factor=2.0)
        plane.add_slow_rule(node="f.d1", factor=3.0)
        assert plane.slowdown("f.d1", now=0.0) == pytest.approx(6.0)

    def test_jitter_bounded_and_seeded(self):
        a = FaultPlane(rng=make_rng(7))
        b = FaultPlane(rng=make_rng(7))
        for plane in (a, b):
            plane.add_slow_rule(node="*", factor=10.0, jitter=0.2)
        seq_a = [a.slowdown("n", now=float(t)) for t in range(50)]
        seq_b = [b.slowdown("n", now=float(t)) for t in range(50)]
        assert seq_a == seq_b  # same seed, same draws
        assert all(8.0 <= s <= 12.0 for s in seq_a)
        assert len(set(seq_a)) > 1  # it really jitters

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowRule(factor=0.5)
        with pytest.raises(ValueError):
            SlowRule(ramp=-1.0)
        with pytest.raises(ValueError):
            SlowRule(jitter=1.0)
        with pytest.raises(ValueError):
            SlowRule(start=5.0, until=5.0)

    def test_clear_rules_drops_slow_rules(self):
        plane = FaultPlane()
        plane.add_slow_rule(node="*", factor=2.0)
        plane.clear_rules()
        assert plane.slowdown("x", now=0.0) == 1.0


class TestRetryJitter:
    def test_no_jitter_path_is_exact(self):
        # pinned by tests/sim/test_faults.py too: the deterministic
        # ladder must not move under the jitter feature flag's default
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=5.0)
        assert [policy.delay(i) for i in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_deterministic_per_seed_salt_attempt(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=30.0, jitter=True, jitter_seed=42)
        again = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                            backoff_max=30.0, jitter=True, jitter_seed=42)
        for attempt in range(5):
            for salt in (0, 1, 99):
                assert policy.delay(attempt, salt) == again.delay(
                    attempt, salt
                )

    def test_jitter_decorrelates_salts(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=30.0, jitter=True)
        delays = {policy.delay(3, salt) for salt in range(8)}
        assert len(delays) > 1

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=6.0, jitter=True)
        for attempt in range(6):
            for salt in range(10):
                d = policy.delay(attempt, salt)
                assert policy.backoff_base <= d <= policy.backoff_max


def _run_traffic(seed: int) -> str:
    """One deterministic cluster run; returns the serialized per-op
    virtual-latency sequence."""
    net = Network()
    for name in ("client", "s0", "s1", "s2"):
        net.register(Sink(name))
    net.install_service_model(
        ServiceModel(link_latency=0.25, service_time=1.0, drain_rate=0.5)
    )
    plane = FaultPlane(rng=make_rng(seed))
    plane.add_slow_rule(node="s1", factor=8.0, ramp=0.1, jitter=0.3)
    plane.add_slow_rule(node="s2", factor=2.0, start=10.0, until=40.0)
    net.install_fault_plane(plane)
    rng = make_rng(seed + 1)
    latencies = []
    for i in range(200):
        target = f"s{int(rng.integers(0, 3))}"
        before = net.virtual_time
        net.call("client", target, "insert", {"i": i})
        latencies.append(net.virtual_time - before)
    return json.dumps(latencies)


def test_slow_rule_schedule_is_byte_identical_across_runs():
    """Same seed, same traffic => byte-identical latency sequence, even
    with ramping + jittered slow rules in play (the jitter draws come
    from the plane's seeded generator, nothing ambient)."""
    assert _run_traffic(123) == _run_traffic(123)
    assert _run_traffic(123) != _run_traffic(124)  # the seed matters
