"""Tests for the latency model, wire sizing protocol, and rng helpers."""

import numpy as np
import pytest

from repro.core.records import ParityRecord
from repro.sim.messages import HEADER_BYTES, Message, estimate_size
from repro.sim.rng import DEFAULT_SEED, derive_rng, make_rng
from repro.sim.stats import LatencyModel, MessageStats, OperationWindow


class TestWireSizeProtocol:
    def test_objects_with_wire_size_hook(self):
        record = ParityRecord(
            rank=1, keys={0: 5}, lengths={0: 4},
            symbols=np.zeros(10, dtype=np.uint8),
        )
        assert estimate_size(record) == record.wire_size()
        message = Message("a", "b", "kind", record)
        assert message.size == HEADER_BYTES + record.wire_size()

    def test_nested_containers(self):
        payload = {"ops": [{"delta": b"1234", "rank": 1}]}
        # 3 (key "ops") + inner: 5 ("delta") + 4 (bytes) + 4 ("rank") + 8
        assert estimate_size(payload) == 3 + 5 + 4 + 4 + 8


class TestLatencyModel:
    def test_defaults_reasonable(self):
        model = LatencyModel()
        window = OperationWindow(messages=2, bytes=1000, serial_depth=2)
        t = model.window_time(window)
        # 2 x 30us + 1000 B at 100 Mb/s = 60us + 80us
        assert t == pytest.approx(2 * 30e-6 + 1000 * 8 / 100e6)

    def test_serial_charges_all_messages(self):
        model = LatencyModel(per_message_s=1.0, per_byte_s=0.0)
        window = OperationWindow(messages=10, bytes=0, serial_depth=3)
        assert model.window_time(window) == 3
        assert model.window_time(window, serial=True) == 10

    def test_empty_window(self):
        model = LatencyModel(per_message_s=1.0)
        window = OperationWindow()
        assert model.window_time(window) == 1.0  # max(depth, 1)


class TestStatsHousekeeping:
    def test_total_accumulates_across_windows(self):
        stats = MessageStats()
        with stats.measure("a"):
            stats.record("x", 10, 1)
        with stats.measure("b"):
            stats.record("y", 20, 2)
        assert stats.total.messages == 2
        assert stats.total.bytes == 30
        assert stats.total.by_kind == {"x": 1, "y": 1}

    def test_window_label(self):
        stats = MessageStats()
        with stats.measure("my-op") as window:
            pass
        assert window.label == "my-op"


class TestRng:
    def test_default_seed_deterministic(self):
        assert make_rng().integers(0, 100) == make_rng().integers(0, 100)
        assert make_rng(DEFAULT_SEED).integers(0, 100) == make_rng().integers(0, 100)

    def test_derive_streams_independent(self):
        base = make_rng(1)
        a = derive_rng(base, 1)
        base2 = make_rng(1)
        b = derive_rng(base2, 2)
        assert a.integers(0, 2**31) != b.integers(0, 2**31)
