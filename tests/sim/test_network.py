"""Tests for the network simulator: transport, accounting, failures."""

import pytest

from repro.sim import (
    FailureInjector,
    Message,
    Network,
    Node,
    NodeUnavailable,
    UnknownNode,
)
from repro.sim.messages import HEADER_BYTES, estimate_size


class Echo(Node):
    """Replies with its own id and the payload; counts receipts."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = []

    def handle_ping(self, message):
        self.seen.append(message.payload)
        return (self.node_id, message.payload)

    def handle_relay(self, message):
        # Forward to the named next hop, fire-and-forget.
        self.send(message.payload, "ping", "relayed")
        return "sent"


@pytest.fixture
def net():
    network = Network()
    for name in ("a", "b", "c"):
        network.register(Echo(name))
    return network


class TestTransport:
    def test_send_counts_one_message(self, net):
        net.send("a", "b", "ping", "x")
        assert net.stats.total.messages == 1
        assert net.nodes["b"].seen == ["x"]

    def test_call_counts_two_messages_and_returns(self, net):
        result = net.call("a", "b", "ping", "x")
        assert result == ("b", "x")
        assert net.stats.total.messages == 2
        assert net.stats.total.by_kind["ping"] == 1
        assert net.stats.total.by_kind["ping.reply"] == 1

    def test_unknown_recipient(self, net):
        with pytest.raises(UnknownNode):
            net.send("a", "zz", "ping")

    def test_unknown_handler(self, net):
        with pytest.raises(NotImplementedError):
            net.send("a", "b", "frobnicate")

    def test_duplicate_registration_rejected(self, net):
        with pytest.raises(ValueError):
            net.register(Echo("a"))

    def test_relayed_message_counts(self, net):
        net.send("a", "b", "relay", "c")
        assert net.stats.total.messages == 2  # relay + forwarded ping
        assert net.nodes["c"].seen == ["relayed"]

    def test_serial_depth_tracks_forward_chain(self, net):
        net.send("a", "b", "relay", "c")
        assert net.stats.total.serial_depth == 2

    def test_kind_to_handler_name_mangling(self, net):
        class Dotty(Node):
            def handle_key_search(self, message):
                return "ok"

        net.register(Dotty("d"))
        assert net.call("a", "d", "key.search") == "ok"


class TestMulticast:
    def test_multicast_with_fabric_charges_one_request(self, net):
        replies, missing = net.multicast("a", ["b", "c"], "ping", "m")
        assert set(replies) == {"b", "c"}
        assert missing == []
        # 1 multicast request + 2 replies.
        assert net.stats.total.messages == 3

    def test_multicast_without_fabric_charges_per_recipient(self):
        network = Network(multicast_available=False)
        for name in ("a", "b", "c"):
            network.register(Echo(name))
        network.multicast("a", ["b", "c"], "ping", "m")
        assert network.stats.total.messages == 4  # 2 requests + 2 replies

    def test_multicast_skips_failed_and_reports(self, net):
        net.fail("c")
        replies, missing = net.multicast("a", ["b", "c"], "ping")
        assert set(replies) == {"b"}
        assert missing == ["c"]

    def test_multicast_without_replies(self, net):
        replies, _ = net.multicast("a", ["b", "c"], "ping", collect_replies=False)
        assert replies == {}
        assert net.stats.total.messages == 1

    def test_replies_ride_at_request_depth_plus_one(self, net):
        # Each reply is one hop deeper than its request: serial depth of
        # a scan round-trip is request + reply = 2 (replies themselves
        # are parallel, so more recipients do not deepen the chain).
        net.multicast("a", ["b", "c"], "ping")
        assert net.stats.total.serial_depth == 2

    def test_partial_failure_reply_accounting(self, net):
        # One dead recipient: its request AND its reply disappear from
        # the bill, and the unavailable list is the complete gap report
        # the deterministic-termination protocols need.
        net.fail("b")
        replies, missing = net.multicast("a", ["b", "c"], "ping")
        assert missing == ["b"]
        assert set(replies) == {"c"}
        assert net.stats.total.messages == 2  # 1 fabric request + 1 reply

    def test_partial_failure_without_fabric(self):
        network = Network(multicast_available=False)
        for name in ("a", "b", "c", "d"):
            network.register(Echo(name))
        network.fail("c")
        replies, missing = network.multicast("a", ["b", "c", "d"], "ping")
        assert missing == ["c"]
        assert set(replies) == {"b", "d"}
        assert network.stats.total.messages == 4  # 2 requests + 2 replies

    def test_all_recipients_failed(self, net):
        net.fail("b")
        net.fail("c")
        replies, missing = net.multicast("a", ["b", "c"], "ping")
        assert replies == {}
        assert missing == ["b", "c"]
        assert net.stats.total.messages == 0

    def test_fault_plane_losses_land_in_unavailable(self, net):
        # A dropped multicast copy is indistinguishable from a dead
        # node at the sender: only the timeout fires.
        import numpy as np

        from repro.sim import FaultPlane

        plane = FaultPlane(rng=np.random.default_rng(0))
        plane.add_rule(kinds={"ping"}, recipient="b", drop=1.0)
        net.install_fault_plane(plane)
        replies, missing = net.multicast("a", ["b", "c"], "ping")
        assert missing == ["b"]
        assert set(replies) == {"c"}


class TestFailureState:
    def test_send_to_failed_raises(self, net):
        net.fail("b")
        with pytest.raises(NodeUnavailable) as err:
            net.send("a", "b", "ping")
        assert err.value.node_id == "b"

    def test_restore(self, net):
        net.fail("b")
        net.restore("b")
        net.send("a", "b", "ping", "back")
        assert net.nodes["b"].seen == ["back"]

    def test_fail_unknown_node(self, net):
        with pytest.raises(UnknownNode):
            net.fail("zz")

    def test_unregister(self, net):
        net.fail("b")
        net.unregister("b")
        assert not net.is_available("b")
        with pytest.raises(UnknownNode):
            net.send("a", "b", "ping")

    def test_unregister_unknown_node_raises(self, net):
        with pytest.raises(UnknownNode):
            net.unregister("zz")

    def test_restore_unknown_node_raises(self, net):
        # A misspelled failure schedule must fail loudly, not silently
        # "recover" nothing.
        with pytest.raises(UnknownNode):
            net.restore("zz")

    def test_restore_unregistered_node_raises(self, net):
        net.unregister("b")
        with pytest.raises(UnknownNode):
            net.restore("b")

    def test_restore_not_failed_is_noop(self, net):
        net.restore("b")  # registered, never failed: tolerated
        assert net.is_available("b")


class TestAccountingWindows:
    def test_window_counts_only_inside(self, net):
        net.send("a", "b", "ping")
        with net.stats.measure("op") as window:
            net.call("a", "b", "ping")
        net.send("a", "b", "ping")
        assert window.messages == 2
        assert net.stats.total.messages == 4

    def test_nested_windows(self, net):
        with net.stats.measure("outer") as outer:
            net.send("a", "b", "ping")
            with net.stats.measure("inner") as inner:
                net.send("a", "c", "ping")
        assert inner.messages == 1
        assert outer.messages == 2

    def test_lifo_enforced(self, net):
        w1 = net.stats.open("w1")
        net.stats.open("w2")
        with pytest.raises(RuntimeError):
            net.stats.close(w1)

    def test_reset_clears_total(self, net):
        net.send("a", "b", "ping")
        net.stats.reset()
        assert net.stats.total.messages == 0


class TestSizes:
    def test_estimate_size_cases(self):
        assert estimate_size(None) == 0
        assert estimate_size(b"abcd") == 4
        assert estimate_size(7) == 8
        assert estimate_size(True) == 1
        assert estimate_size("abc") == 3
        assert estimate_size({"k": b"xy"}) == 3
        assert estimate_size([1, 2]) == 16
        assert estimate_size(object()) == 16

    def test_message_size_includes_header(self):
        msg = Message("a", "b", "ping", b"1234")
        assert msg.size == HEADER_BYTES + 4


class TestFailureInjector:
    def test_crash_and_heal(self, net):
        inj = FailureInjector(net)
        assert inj.crash(["b"]) == ["b"]
        assert not net.is_available("b")
        inj.heal()
        assert net.is_available("b")
        assert inj.currently_failed == []

    def test_crash_sample_distinct(self, net):
        inj = FailureInjector(net)
        failed = inj.crash_sample(["a", "b", "c"], 2)
        assert len(failed) == len(set(failed)) == 2

    def test_crash_sample_too_many(self, net):
        with pytest.raises(ValueError):
            FailureInjector(net).crash_sample(["a"], 2)

    def test_sample_availability_bounds(self, net):
        inj = FailureInjector(net)
        with pytest.raises(ValueError):
            inj.sample_availability(["a"], 1.5)
        assert inj.sample_availability(["a", "b", "c"], 1.0) == []
        failed = inj.sample_availability(["a", "b", "c"], 0.0)
        assert sorted(failed) == ["a", "b", "c"]

    def test_heal_specific(self, net):
        inj = FailureInjector(net)
        inj.crash(["a", "b"])
        inj.heal(["a"])
        assert net.is_available("a")
        assert not net.is_available("b")
        assert inj.currently_failed == ["b"]


class TestLatencyModel:
    def test_window_time_serial_vs_parallel(self, net):
        from repro.sim import LatencyModel

        model = LatencyModel(per_message_s=1.0, per_byte_s=0.0)
        with net.stats.measure("op") as window:
            net.multicast("a", ["b", "c"], "ping")
        # Parallel: depth (request + reply) dominates; serial: all 3 msgs.
        assert model.window_time(window) < model.window_time(window, serial=True)
        assert model.window_time(window, serial=True) == window.messages

    def test_gf_time(self):
        from repro.sim import LatencyModel

        model = LatencyModel(per_gf_symbol_op_s=0.5)
        assert model.gf_time(4) == 2.0
