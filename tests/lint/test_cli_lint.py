"""The ``python -m repro lint`` command line."""

import json

from repro.__main__ import main
from repro.proto.schema import REGISTRY


class TestLintCli:
    def test_strict_run_is_clean(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "lint"
        assert payload["findings"] == []
        assert payload["status"] == 0
        assert "proto" in payload["checks"]

    def test_check_selection(self, capsys):
        assert main(["lint", "--check", "determinism"]) == 0
        out = capsys.readouterr().out
        assert "[determinism]" in out

    def test_protocol_table_prints_every_kind(self, capsys):
        assert main(["lint", "--protocol-table"]) == 0
        out = capsys.readouterr().out
        for kind in REGISTRY:
            assert f"`{kind}`" in out

    def test_write_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        data = json.loads(baseline.read_text())
        assert data["entries"] == []  # the tree is clean
        assert main(["lint", "--baseline", str(baseline), "--strict"]) == 0

    def test_stale_baseline_fails_strict_only(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "entries": [{
                "check": "proto.unsent-kind",
                "path": "src/repro/gone.py",
                "symbol": "gone.kind",
                "message": "long since fixed",
                "fingerprint": "0" * 16,
                "reason": "",
            }],
        }))
        assert main(["lint", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert main(["lint", "--baseline", str(baseline),
                     "--strict"]) == 1
