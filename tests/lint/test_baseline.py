"""Baseline round-trips: grandfather, survive code motion, go stale."""

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding


def _finding(message="kind 'x' is odd", line=10):
    return Finding("proto.unsent-kind", "src/repro/a.py", line,
                   message, symbol="x")


class TestFingerprints:
    def test_fingerprint_ignores_line(self):
        assert _finding(line=10).fingerprint() == \
            _finding(line=99).fingerprint()

    def test_fingerprint_varies_with_message(self):
        assert _finding().fingerprint() != \
            _finding(message="different").fingerprint()


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = Baseline.write(path, [_finding()], Baseline())
        assert count == 1
        loaded = Baseline.load(path)
        assert list(loaded.fingerprints()) == [_finding().fingerprint()]

    def test_missing_file_loads_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []

    def test_reasons_survive_rewrite(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [_finding()], Baseline())
        loaded = Baseline.load(path)
        loaded.entries[0]["reason"] = "predates the checker"
        Baseline.write(path, [_finding(line=42)], loaded)
        again = Baseline.load(path)
        assert again.entries[0]["reason"] == "predates the checker"


class TestPartition:
    def test_baselined_findings_are_split_out(self):
        known = _finding()
        fresh = Finding("proto.dead-handler", "src/repro/b.py", 3,
                        "handle_x() is dead", symbol="handle_x")
        baseline = Baseline([{"fingerprint": known.fingerprint()}])
        new, baselined, stale = baseline.partition([known, fresh])
        assert new == [fresh]
        assert baselined == [known]
        assert stale == []

    def test_fixed_finding_leaves_a_stale_entry(self):
        entry = {"fingerprint": _finding().fingerprint(),
                 "check": "proto.unsent-kind"}
        baseline = Baseline([entry])
        new, baselined, stale = baseline.partition([])
        assert (new, baselined) == ([], [])
        assert stale == [entry]

    def test_strict_mode_fails_on_stale(self):
        from repro.lint.engine import LintResult

        clean = LintResult(findings=[])
        assert clean.ok(strict=True)
        stale = LintResult(findings=[], stale_baseline=[{"x": 1}])
        assert stale.ok(strict=False)
        assert not stale.ok(strict=True)
