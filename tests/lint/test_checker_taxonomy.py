"""Taxonomy checker: trace events must be registered, metric names
must match the dotted-lowercase grammar."""

EVENTS = frozenset({"op.start", "op.done"})


class TestTraceEvents:
    def test_unknown_event_fires(self, lint):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.tracer.emit('op.bogus', node='n1')\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["taxonomy"],
                      event_types=EVENTS)
        assert [(f.check, f.symbol) for f in result.findings] == [
            ("taxonomy.unknown-event", "op.bogus")
        ]

    def test_known_event_is_clean(self, lint):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.tracer.emit('op.start', node='n1')\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["taxonomy"],
                      event_types=EVENTS)
        assert result.findings == []

    def test_non_trace_emit_is_ignored(self, lint):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.bus.emit('whatever')\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["taxonomy"],
                      event_types=EVENTS)
        assert result.findings == []

    def test_dynamic_event_is_counted(self, lint):
        code = (
            "class S:\n"
            "    def go(self, name):\n"
            "        self.tracer.emit(name, node='n1')\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["taxonomy"],
                      event_types=EVENTS)
        assert result.findings == []
        assert result.stats.get("taxonomy.dynamic-events") == 1


class TestMetricNames:
    def test_bad_metric_name_fires(self, lint):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.metrics.counter('Op.Insert', 1)\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["taxonomy"],
                      event_types=EVENTS)
        assert [(f.check, f.symbol) for f in result.findings] == [
            ("taxonomy.metric-name", "Op.Insert")
        ]

    def test_good_metric_name_is_clean(self, lint):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.metrics.counter('op.insert.messages', 1)\n"
            "        self.metrics.gauge('disk.restarts', 2)\n"
            "        self.metrics.histogram('op.latency', 0.5)\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["taxonomy"],
                      event_types=EVENTS)
        assert result.findings == []

    def test_fstring_metric_with_dynamic_part_is_clean(self, lint):
        # An f-string whose static skeleton fits the grammar is fine;
        # the dynamic hole is probed with a placeholder.
        code = (
            "class S:\n"
            "    def go(self, op):\n"
            "        self.metrics.counter(f'op.{op}.messages', 1)\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["taxonomy"],
                      event_types=EVENTS)
        assert result.findings == []
