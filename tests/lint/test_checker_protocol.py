"""Protocol-conformance checker: every rule fires on a seeded
violation and stays quiet on the clean twin."""


def _checks(result, rule):
    return [f for f in result.findings if f.check == rule]


class TestSendSites:
    def test_unregistered_kind_fires(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.send('peer', 'toy.unknown', {'x': 1})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        found = _checks(result, "proto.unregistered-kind")
        assert len(found) == 1
        assert found[0].symbol == "toy.unknown"
        assert found[0].line == 3

    def test_registered_kind_is_clean(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.send('peer', 'toy.put',\n"
            "                  {'key': 1, 'value': b''})\n"
            "    def handle_toy_put(self, message):\n"
            "        return message.payload['key']\n"
            "    def handle_toy_delta(self, message):\n"
            "        if message.payload['seq'] != self._expected_seq:\n"
            "            return\n"
            "    def handle_toy_net(self, message):\n"
            "        return message.payload['level']\n"
            "    def also(self):\n"
            "        self.send('p', 'toy.delta', {'seq': 0, 'delta': b''})\n"
            "        self.net.send('me', 'peer', 'toy.net', {'level': 2})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert result.findings == []

    def test_network_send_reads_kind_at_third_position(
        self, lint, toy_registry
    ):
        # net.send(sender, recipient, kind): 'peer' must not be taken
        # as the kind.
        code = (
            "class S:\n"
            "    def go(self, net):\n"
            "        net.send('me', 'peer', 'toy.bogus', {})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert [f.symbol for f in
                _checks(result, "proto.unregistered-kind")] == ["toy.bogus"]

    def test_constant_propagation_resolves_local_kind(
        self, lint, toy_registry
    ):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        kind = 'toy.unknown'\n"
            "        self.send('peer', kind, {})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert [f.symbol for f in
                _checks(result, "proto.unregistered-kind")] == ["toy.unknown"]

    def test_dynamic_kind_is_counted_not_guessed(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def forward(self, message):\n"
            "        self.send('peer', message.kind, message.payload)\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert _checks(result, "proto.unregistered-kind") == []
        assert result.stats.get("proto.dynamic-sites") == 1


class TestPayloadShape:
    def test_unknown_field_fires(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.send('p', 'toy.put',\n"
            "                  {'key': 1, 'value': b'', 'typo': 9})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        found = _checks(result, "proto.payload-unknown-field")
        assert [f.symbol for f in found] == ["toy.put.typo"]

    def test_missing_required_field_fires(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.send('p', 'toy.put', {'key': 1})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        found = _checks(result, "proto.payload-missing-field")
        assert [f.symbol for f in found] == ["toy.put.value"]

    def test_optional_field_may_be_omitted(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def go(self):\n"
            "        self.send('p', 'toy.put', {'key': 1, 'value': b''})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert _checks(result, "proto.payload-missing-field") == []

    def test_double_splat_payload_not_checked_for_completeness(
        self, lint, toy_registry
    ):
        code = (
            "class S:\n"
            "    def go(self, extra):\n"
            "        self.send('p', 'toy.put', {'key': 1, **extra})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert _checks(result, "proto.payload-missing-field") == []


class TestHandlers:
    def test_dead_handler_fires(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def handle_toy_retired(self, message):\n"
            "        pass\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        found = _checks(result, "proto.dead-handler")
        assert [f.symbol for f in found] == ["handle_toy_retired"]

    def test_alias_assignment_counts_as_handler(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def handle_toy_put(self, message):\n"
            "        return message.payload['key']\n"
            "    handle_toy_delta = handle_toy_put\n"
            "    def handle_toy_net(self, message):\n"
            "        pass\n"
            "    def go(self):\n"
            "        self.send('p', 'toy.put', {'key': 1, 'value': b''})\n"
            "        self.send('p', 'toy.delta', {'seq': 0, 'delta': b''})\n"
            "        self.net.send('a', 'b', 'toy.net', {'level': 1})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert _checks(result, "proto.unhandled-kind") == []

    def test_unhandled_kind_fires(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def handle_toy_put(self, message):\n"
            "        pass\n"
            "    def handle_toy_net(self, message):\n"
            "        pass\n"
            "    def go(self):\n"
            "        self.send('p', 'toy.put', {'key': 1, 'value': b''})\n"
            "        self.send('p', 'toy.delta', {'seq': 0, 'delta': b''})\n"
            "        self.net.send('a', 'b', 'toy.net', {'level': 1})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert [f.symbol for f in
                _checks(result, "proto.unhandled-kind")] == ["toy.delta"]

    def test_unsent_kind_fires(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def handle_toy_put(self, message):\n"
            "        pass\n"
            "    def handle_toy_delta(self, message):\n"
            "        self._expected_seq += 1\n"
            "    def handle_toy_net(self, message):\n"
            "        pass\n"
            "    def go(self):\n"
            "        self.send('p', 'toy.put', {'key': 1, 'value': b''})\n"
            "        self.net.send('a', 'b', 'toy.net', {'level': 1})\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert [f.symbol for f in
                _checks(result, "proto.unsent-kind")] == ["toy.delta"]

    def test_handler_reading_unregistered_field_fires(
        self, lint, toy_registry
    ):
        code = (
            "class S:\n"
            "    def handle_toy_put(self, message):\n"
            "        payload = message.payload\n"
            "        return payload['ghost']\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        found = _checks(result, "proto.payload-unregistered-read")
        assert [f.symbol for f in found] == ["toy.put.ghost"]

    def test_handler_get_of_optional_field_is_clean(
        self, lint, toy_registry
    ):
        code = (
            "class S:\n"
            "    def handle_toy_put(self, message):\n"
            "        return message.payload.get('note', '')\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["proto"],
                      registry=toy_registry)
        assert _checks(result, "proto.payload-unregistered-read") == []
