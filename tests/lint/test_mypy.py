"""Strict typing over the algebraic substrate and the wire contract.

The offline dev container does not ship mypy, so this test skips
locally; the CI lint job installs the ``lint`` extra and runs it for
real.  The configuration lives in setup.cfg ``[mypy]``.
"""

import importlib.util
import subprocess
import sys

import pytest

from repro.lint.engine import default_root

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (offline container); CI runs this",
)


class TestMypyStrict:
    def test_typed_packages_pass_strict(self):
        root = default_root()
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "setup.cfg"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
