"""Seq-guard checker: a Δ-applying handler that drops its per-channel
sequence check fails lint instead of waiting for a lucky PCT seed."""


class TestSeqGuard:
    def test_guardless_delta_handler_fires(self, lint, toy_registry):
        code = (
            "class P:\n"
            "    def handle_toy_delta(self, message):\n"
            "        self.apply(message.payload['delta'])\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["seq-guard"],
                      registry=toy_registry)
        assert [(f.check, f.symbol) for f in result.findings] == [
            ("seq-guard.missing", "toy.delta")
        ]

    def test_guarded_handler_is_clean(self, lint, toy_registry):
        code = (
            "class P:\n"
            "    def handle_toy_delta(self, message):\n"
            "        if message.payload['seq'] != self._expected_seq:\n"
            "            return\n"
            "        self.apply(message.payload['delta'])\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["seq-guard"],
                      registry=toy_registry)
        assert result.findings == []

    def test_guard_via_helper_attribute_is_clean(self, lint, toy_registry):
        # Referencing the guard through a helper call still counts: the
        # rule asks for the identifier, not a specific comparison shape.
        code = (
            "class P:\n"
            "    def handle_toy_delta(self, message):\n"
            "        if not self._expected_seq_ok(message):\n"
            "            return\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["seq-guard"],
                      registry=toy_registry)
        # _expected_seq_ok is a different identifier than _expected_seq:
        # this one SHOULD fire — the guard itself is absent.
        assert [f.check for f in result.findings] == ["seq-guard.missing"]

    def test_unguarded_kinds_are_ignored(self, lint, toy_registry):
        code = (
            "class S:\n"
            "    def handle_toy_put(self, message):\n"
            "        pass\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["seq-guard"],
                      registry=toy_registry)
        assert result.findings == []

    def test_real_registry_marks_parity_update(self):
        from repro.proto.schema import REGISTRY

        assert REGISTRY["parity.update"].seq_guard
        assert REGISTRY["parity.batch"].seq_guard
