"""The repo-clean gate: the real tree passes its own linter.

This is the tier-1 enforcement of the wire contract — any message kind,
payload field, trace event or Δ handler that drifts from the registry
fails here, not in CI only.
"""

from repro.lint.engine import default_root, run_lint
from repro.proto.schema import (
    REGISTRY,
    TABLE_BEGIN,
    TABLE_END,
    render_protocol_table,
)


class TestRepoClean:
    def test_full_lint_is_clean(self):
        result = run_lint()
        assert result.findings == [], "\n".join(
            f.format() for f in result.findings
        )

    def test_registry_coverage_is_total(self):
        # sent-set == handled-set == registry-set: with zero proto
        # findings, every registered kind is both sent (or evidenced)
        # and handled, and nothing unregistered is sent or handled.
        result = run_lint(checks=["proto"])
        assert result.findings == []
        assert result.stats.get("proto.handlers-seen", 0) >= len(REGISTRY)

    def test_docs_table_matches_registry_byte_for_byte(self):
        text = (default_root() / "docs" / "protocol.md").read_text()
        begin = text.index(TABLE_BEGIN) + len(TABLE_BEGIN)
        end = text.index(TABLE_END)
        inner = text[begin:end].strip("\n")
        assert inner == render_protocol_table().strip("\n")

    def test_baseline_is_empty(self):
        import json

        path = default_root() / "tools" / "lint_baseline.json"
        data = json.loads(path.read_text())
        assert data["entries"] == []
