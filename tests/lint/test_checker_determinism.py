"""Determinism-hygiene checker: wall clocks, ambient randomness and
unordered set iteration are all seeded violations here."""


def _rules(result):
    return [(f.check, f.line) for f in result.findings]


class TestWallClock:
    def test_time_time_fires(self, lint):
        result = lint(
            {"src/repro/x.py": "import time\nnow = time.time()\n"},
            checks=["determinism"],
        )
        assert _rules(result) == [("determinism.wall-clock", 2)]

    def test_import_alias_is_canonicalized(self, lint):
        result = lint(
            {"src/repro/x.py": "import time as clock\nt = clock.time()\n"},
            checks=["determinism"],
        )
        assert _rules(result) == [("determinism.wall-clock", 2)]

    def test_from_import_is_canonicalized(self, lint):
        result = lint(
            {"src/repro/x.py":
             "from time import perf_counter\nt = perf_counter()\n"},
            checks=["determinism"],
        )
        assert _rules(result) == [("determinism.wall-clock", 2)]

    def test_datetime_now_fires(self, lint):
        result = lint(
            {"src/repro/x.py":
             "import datetime\nd = datetime.datetime.now()\n"},
            checks=["determinism"],
        )
        assert _rules(result) == [("determinism.wall-clock", 2)]

    def test_pragma_suppresses(self, lint):
        code = (
            "import time\n"
            "t = time.time()  # lint: allow[determinism.wall-clock]\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["determinism"])
        assert result.findings == []
        assert result.suppressed == 1


class TestRandomness:
    def test_unseeded_default_rng_fires(self, lint):
        result = lint(
            {"src/repro/x.py":
             "import numpy as np\nrng = np.random.default_rng()\n"},
            checks=["determinism"],
        )
        assert _rules(result) == [("determinism.unseeded-rng", 2)]

    def test_seeded_default_rng_is_clean(self, lint):
        result = lint(
            {"src/repro/x.py":
             "import numpy as np\nrng = np.random.default_rng(7)\n"},
            checks=["determinism"],
        )
        assert result.findings == []

    def test_module_level_random_fires(self, lint):
        result = lint(
            {"src/repro/x.py": "import random\nx = random.random()\n"},
            checks=["determinism"],
        )
        assert _rules(result) == [("determinism.unseeded-rng", 2)]

    def test_random_instance_is_clean(self, lint):
        code = (
            "import random\n"
            "rng = random.Random(42)\n"
            "x = rng.random()\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["determinism"])
        assert [f for f in result.findings
                if f.check == "determinism.unseeded-rng"
                and f.line == 3] == []

    def test_os_urandom_and_uuid4_fire(self, lint):
        code = "import os\nimport uuid\na = os.urandom(8)\nb = uuid.uuid4()\n"
        result = lint({"src/repro/x.py": code}, checks=["determinism"])
        assert _rules(result) == [
            ("determinism.unseeded-rng", 3),
            ("determinism.unseeded-rng", 4),
        ]


class TestSetIteration:
    def test_for_over_set_literal_fires(self, lint):
        result = lint(
            {"src/repro/x.py": "for x in {1, 2, 3}:\n    pass\n"},
            checks=["determinism"],
        )
        assert _rules(result) == [("determinism.set-iter", 1)]

    def test_for_over_set_typed_local_fires(self, lint):
        code = (
            "def f(items):\n"
            "    seen = set(items)\n"
            "    for x in seen:\n"
            "        print(x)\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["determinism"])
        assert _rules(result) == [("determinism.set-iter", 3)]

    def test_sorted_set_is_clean(self, lint):
        code = (
            "def f(items):\n"
            "    seen = set(items)\n"
            "    for x in sorted(seen):\n"
            "        print(x)\n"
        )
        result = lint({"src/repro/x.py": code}, checks=["determinism"])
        assert result.findings == []

    def test_comprehension_over_set_fires(self, lint):
        code = "def f(s):\n    return [x for x in frozenset(s)]\n"
        result = lint({"src/repro/x.py": code}, checks=["determinism"])
        assert _rules(result) == [("determinism.set-iter", 2)]

    def test_list_iteration_is_clean(self, lint):
        code = "def f(items):\n    for x in list(items):\n        pass\n"
        result = lint({"src/repro/x.py": code}, checks=["determinism"])
        assert result.findings == []
