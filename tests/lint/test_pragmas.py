"""Pragma parsing, hierarchical matching, and pragma hygiene."""

from repro.lint.pragmas import code_matches, parse_pragmas


class TestParsing:
    def test_basic_pragma(self):
        pragmas = parse_pragmas("x = 1  # lint: allow[determinism]\n")
        assert pragmas == {1: {"determinism"}}

    def test_multiple_codes(self):
        text = "x = 1  # lint: allow[proto.unsent-kind, determinism]\n"
        assert parse_pragmas(text) == {
            1: {"proto.unsent-kind", "determinism"}
        }

    def test_non_pragma_comments_ignored(self):
        assert parse_pragmas("x = 1  # just a comment\n") == {}


class TestMatching:
    def test_exact_match(self):
        assert code_matches("determinism.wall-clock",
                            "determinism.wall-clock")

    def test_prefix_covers_subrules(self):
        assert code_matches("determinism", "determinism.wall-clock")
        assert not code_matches("determinism.wall-clock", "determinism")

    def test_star_covers_all(self):
        assert code_matches("*", "proto.dead-handler")

    def test_unrelated_does_not_match(self):
        assert not code_matches("proto", "determinism.wall-clock")


class TestHygiene:
    def test_unknown_pragma_code_fires(self, lint):
        code = "x = 1  # lint: allow[nonsense.rule]\n"
        result = lint({"src/repro/x.py": code}, checks=["pragma"])
        assert [(f.check, f.symbol) for f in result.findings] == [
            ("pragma.unknown", "nonsense.rule")
        ]

    def test_unused_pragma_fires(self, lint):
        code = "x = 1  # lint: allow[determinism.wall-clock]\n"
        result = lint({"src/repro/x.py": code},
                      checks=["determinism", "pragma"])
        assert [(f.check, f.symbol) for f in result.findings] == [
            ("pragma.unused", "determinism.wall-clock")
        ]

    def test_used_pragma_is_clean(self, lint):
        code = (
            "import time\n"
            "t = time.time()  # lint: allow[determinism.wall-clock]\n"
        )
        result = lint({"src/repro/x.py": code},
                      checks=["determinism", "pragma"])
        assert result.findings == []
        assert result.suppressed == 1

    def test_pragma_on_line_above_suppresses(self, lint):
        code = (
            "import time\n"
            "# lint: allow[determinism.wall-clock]\n"
            "t = time.time()\n"
        )
        result = lint({"src/repro/x.py": code},
                      checks=["determinism", "pragma"])
        assert result.findings == []
        assert result.suppressed == 1
