"""Docs-sync checker: the protocol.md kind index must match the
registry byte-for-byte."""

from repro.proto.schema import TABLE_BEGIN, TABLE_END, render_protocol_table


def _docs(tmp_path, body):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "protocol.md").write_text(body)
    return tmp_path


class TestDocsSync:
    def test_missing_markers_fire(self, lint, tmp_path, toy_registry):
        root = _docs(tmp_path, "# Protocol\n\nno markers here\n")
        result = lint({}, checks=["docs"], root=root,
                      registry=toy_registry)
        assert [f.check for f in result.findings] == ["docs.protocol-table"]
        assert "markers missing" in result.findings[0].message

    def test_stale_table_fires(self, lint, tmp_path, toy_registry):
        body = (
            f"# Protocol\n\n{TABLE_BEGIN}\n| old | stale |\n{TABLE_END}\n"
        )
        root = _docs(tmp_path, body)
        result = lint({}, checks=["docs"], root=root,
                      registry=toy_registry)
        assert [f.check for f in result.findings] == ["docs.protocol-table"]
        assert "stale" in result.findings[0].message

    def test_matching_table_is_clean(self, lint, tmp_path, toy_registry):
        table = render_protocol_table(toy_registry.values())
        body = (
            f"# Protocol\n\n{TABLE_BEGIN}\n{table.rstrip()}\n{TABLE_END}\n"
        )
        root = _docs(tmp_path, body)
        result = lint({}, checks=["docs"], root=root,
                      registry=toy_registry)
        assert result.findings == []

    def test_missing_docs_file_fires(self, lint, tmp_path, toy_registry):
        result = lint({}, checks=["docs"], root=tmp_path,
                      registry=toy_registry)
        assert [f.check for f in result.findings] == ["docs.protocol-table"]

    def test_render_is_deterministic(self, toy_registry):
        first = render_protocol_table(toy_registry.values())
        second = render_protocol_table(
            list(reversed(list(toy_registry.values())))
        )
        assert first == second
        assert first.startswith("| kind |")
