"""The constant-propagation and AST helpers behind the checkers."""

import ast

from repro.lint.astutil import (
    dotted_name,
    innermost_functions,
    literal_strings,
    receiver_text,
)
from repro.lint.findings import Finding


def _resolve(code, expr_of):
    """Parse ``code``, locate the expression via ``expr_of(tree)`` and
    resolve it against its innermost enclosing function."""
    tree = ast.parse(code)
    owner = innermost_functions(tree)
    expr = expr_of(tree)
    return literal_strings(expr, owner.get(id(expr)))


def _first_call_arg(tree):
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            return node.args[0]
    raise AssertionError("no call found")


class TestLiteralStrings:
    def test_plain_constant(self):
        assert _resolve("f('x')", _first_call_arg) == {"x"}

    def test_ternary_resolves_both_arms(self):
        code = "def g(flag):\n    f('a' if flag else 'b')\n"
        assert _resolve(code, _first_call_arg) == {"a", "b"}

    def test_local_constant_propagates(self):
        code = "def g():\n    kind = 'x'\n    f(kind)\n"
        assert _resolve(code, _first_call_arg) == {"x"}

    def test_reassigned_local_collects_all_values(self):
        code = (
            "def g(flag):\n"
            "    kind = 'a'\n"
            "    if flag:\n"
            "        kind = 'b'\n"
            "    f(kind)\n"
        )
        assert _resolve(code, _first_call_arg) == {"a", "b"}

    def test_parameter_is_dynamic(self):
        code = "def g(kind):\n    f(kind)\n"
        assert _resolve(code, _first_call_arg) is None

    def test_loop_target_is_dynamic(self):
        code = "def g(ks):\n    for kind in ks:\n        f(kind)\n"
        assert _resolve(code, _first_call_arg) is None

    def test_augassign_is_dynamic(self):
        code = "def g():\n    kind = 'a'\n    kind += 'b'\n    f(kind)\n"
        assert _resolve(code, _first_call_arg) is None

    def test_tuple_unpack_is_dynamic(self):
        code = "def g(pair):\n    kind, other = pair\n    f(kind)\n"
        assert _resolve(code, _first_call_arg) is None

    def test_non_string_constant_is_dynamic(self):
        assert _resolve("f(7)", _first_call_arg) is None

    def test_module_level_name_without_function_is_dynamic(self):
        assert _resolve("kind = 'x'\nf(kind)\n", _first_call_arg) is None


class TestReceivers:
    def test_dotted_name(self):
        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(expr) == "a.b.c"
        call = ast.parse("f()[0]", mode="eval").body
        assert dotted_name(call) is None

    def test_receiver_text(self):
        call = ast.parse("self.net.send('a')", mode="eval").body
        assert receiver_text(call) == "self.net"
        bare = ast.parse("send('a')", mode="eval").body
        assert receiver_text(bare) == ""


class TestFindingFormat:
    def test_format_with_line(self):
        f = Finding("proto.dead-handler", "src/repro/a.py", 12, "msg")
        assert f.format() == "src/repro/a.py:12: proto.dead-handler: msg"

    def test_format_file_level(self):
        f = Finding("docs.protocol-table", "docs/protocol.md", 0, "msg")
        assert f.format() == "docs/protocol.md: docs.protocol-table: msg"

    def test_to_json_carries_fingerprint(self):
        f = Finding("x", "p", 1, "m", symbol="s")
        data = f.to_json()
        assert data["fingerprint"] == f.fingerprint()
        assert data["symbol"] == "s"
