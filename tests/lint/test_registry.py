"""The machine-readable protocol registry itself."""

import pytest

from repro.proto.schema import (
    EVENT_NAME_RE,
    METRIC_NAME_RE,
    REGISTRY,
    MessageKind,
    handler_name,
    kinds,
    render_protocol_table,
    validate_registry,
)


class TestMessageKind:
    def test_required_vs_optional_fields(self):
        entry = MessageKind("t.k", "a", "b", "send",
                            ("key", "value", "note?"))
        assert entry.required_fields() == {"key", "value"}
        assert entry.field_names() == {"key", "value", "note"}

    def test_payload_signature(self):
        entry = MessageKind("t.k", "a", "b", "send", ("key", "note?"))
        assert entry.payload_signature() == "{key, note?}"
        assert MessageKind("t.e", "a", "b", "send").payload_signature() == "—"

    def test_handler_name_mangling(self):
        assert handler_name("parity.update") == "handle_parity_update"
        assert handler_name("read.degraded") == "handle_read_degraded"
        # The mangling is lossy — which is exactly why the registry
        # validates mangled-name uniqueness.
        assert handler_name("op.ack") == handler_name("op_ack")


class TestRegistry:
    def test_registry_is_internally_consistent(self):
        validate_registry()  # raises on any inconsistency

    def test_kinds_is_complete(self):
        assert kinds() == frozenset(REGISTRY)
        assert "insert" in kinds()
        assert "parity.update" in kinds()

    def test_every_kind_matches_the_grammar(self):
        for kind in REGISTRY:
            assert EVENT_NAME_RE.match(kind), kind

    def test_signature_dump_is_registered(self):
        # The audit probe was absent from the hand-written docs before
        # the registry existed; it must never drop out again.
        entry = REGISTRY["signature.dump"]
        assert entry.mode == "call"
        assert "count?" in entry.payload

    def test_metric_grammar_examples(self):
        assert METRIC_NAME_RE.match("op.insert.messages")
        assert METRIC_NAME_RE.match("disk.restarts")
        assert not METRIC_NAME_RE.match("Op.Insert")
        assert not METRIC_NAME_RE.match("op..x")


class TestRenderedTable:
    def test_contains_every_kind(self):
        table = render_protocol_table()
        for kind in REGISTRY:
            assert f"`{kind}`" in table

    def test_escapes_pipes_in_payload(self):
        entry = MessageKind("t.k", "a", "b", "send", ("x",),
                            reply="{a|b}")
        table = render_protocol_table((entry,))
        assert "\\|" in table

    def test_deterministic_across_input_order(self):
        entries = list(REGISTRY.values())
        assert render_protocol_table(tuple(entries)) == \
            render_protocol_table(tuple(reversed(entries)))

    def test_duplicate_mangles_rejected(self, monkeypatch):
        import repro.proto.schema as schema

        clash = (
            MessageKind("op.x", "a", "b", "send", section="scans"),
            MessageKind("op_x", "a", "b", "send", section="scans"),
        )
        monkeypatch.setattr(schema, "_ENTRIES", clash)
        monkeypatch.setattr(
            schema, "REGISTRY", {e.kind: e for e in clash}
        )
        with pytest.raises(ValueError, match="both dispatch"):
            schema.validate_registry()
