"""Fixture plumbing for the repro.lint tests.

Checker tests run the real engine over *synthetic* sources: each case
is a seeded-violation snippet plus a clean twin, so every rule is
demonstrated both firing and staying quiet.
"""

import pytest

from repro.lint.engine import run_lint
from repro.lint.sources import SourceFile
from repro.proto.schema import MessageKind


@pytest.fixture
def lint():
    """Run selected checkers over inline snippets.

    Returns ``(result, checks)``-style helper:
    ``lint({"src/repro/x.py": code}, checks=["proto"], registry=...)``.
    """

    def _run(snippets, *, checks, root=None, registry=None,
             event_types=None):
        sources = [
            SourceFile(rel, text) for rel, text in sorted(snippets.items())
        ]
        from pathlib import Path

        return run_lint(
            root=root if root is not None else Path("/nonexistent"),
            sources=sources,
            checks=checks,
            registry=registry,
            event_types=event_types,
        )

    return _run


@pytest.fixture
def toy_registry():
    """A minimal registry for fixture snippets."""
    entries = (
        MessageKind(
            "toy.put", "client", "data", "send",
            ("key", "value", "note?"),
            section="misc", summary="store",
        ),
        MessageKind(
            "toy.delta", "data", "parity", "send",
            ("seq", "delta"),
            section="misc", summary="Δ",
            seq_guard=("_expected_seq",),
        ),
        MessageKind(
            "toy.net", "coordinator", "data", "send",
            ("level",),
            section="misc", summary="via network handle",
        ),
    )
    return {entry.kind: entry for entry in entries}
