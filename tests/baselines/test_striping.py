"""Tests for the LH*s striping baseline."""

import pytest

from repro.baselines import LHSFile
from repro.baselines.striping import split_into_stripes, xor_parity
from repro.sim.rng import make_rng


def build(count=120, stripes=4, capacity=8, seed=5):
    file = LHSFile(stripes=stripes, capacity=capacity)
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * 4)
    return file, keys


class TestStripeMath:
    def test_split_even(self):
        assert split_into_stripes(b"abcdefgh", 4) == [b"ab", b"cd", b"ef", b"gh"]

    def test_split_with_padding(self):
        stripes = split_into_stripes(b"abcde", 4)
        assert stripes == [b"ab", b"cd", b"e\0", b"\0\0"]

    def test_split_empty(self):
        assert split_into_stripes(b"", 3) == [b"", b"", b""]

    def test_xor_parity_recovers_any_stripe(self):
        stripes = split_into_stripes(b"abcdefgh", 4)
        parity = xor_parity(stripes)
        for lost in range(4):
            others = [s for i, s in enumerate(stripes) if i != lost]
            assert xor_parity(others + [parity]) == stripes[lost]

    def test_too_few_stripes_rejected(self):
        with pytest.raises(ValueError):
            LHSFile(stripes=1)


class TestOperations:
    def test_roundtrip(self):
        file, keys = build()
        for key in keys[::7]:
            outcome = file.search(key)
            assert outcome.found
            assert outcome.value == key.to_bytes(8, "big") * 4

    def test_absent_key(self):
        file, _ = build(count=30)
        assert not file.search(10**9 + 5).found

    def test_update_and_delete(self):
        file, keys = build(count=40)
        file.update(keys[0], b"A" * 32)
        assert file.search(keys[0]).value == b"A" * 32
        file.delete(keys[1])
        assert not file.search(keys[1]).found
        assert file.total_records() == 39

    def test_storage_overhead_is_one_over_stripes(self):
        file, _ = build()
        assert file.storage_overhead() == pytest.approx(1 / 4, rel=0.05)


class TestCosts:
    def test_search_costs_two_messages_per_stripe(self):
        """The published LH*s weakness: key search ≈ 2·s messages."""
        file, keys = build()
        for key in keys:  # converge all segment clients
            file.search(key)
        with file.stats.measure("search") as window:
            file.search(keys[0])
        assert window.messages == 2 * 4

    def test_insert_costs_stripes_plus_one(self):
        file, keys = build()
        for key in keys:
            file.search(key)
        count = 10
        with file.stats.measure("insert") as window:
            for i in range(count):
                file.insert(10**9 + 77 + i, b"z" * 32)
        # s data fragments + 1 parity fragment, plus forwarding/IAM and
        # overflow/split noise across the five segment files.
        assert 5 <= window.messages / count <= 9


class TestDegradedAndRecovery:
    def test_search_survives_one_stripe_loss(self):
        file, keys = build()
        target = keys[0]
        bucket = file.segments[1].find_bucket_of(target)
        file.fail_segment_bucket(1, bucket)
        outcome = file.search(target)
        assert outcome.found
        assert outcome.value == target.to_bytes(8, "big") * 4

    def test_two_stripe_losses_fatal(self):
        from repro.sim.network import NodeUnavailable

        file, keys = build()
        target = keys[0]
        file.fail_segment_bucket(0, file.segments[0].find_bucket_of(target))
        file.fail_segment_bucket(1, file.segments[1].find_bucket_of(target))
        with pytest.raises(NodeUnavailable):
            file.search(target)

    def test_segment_bucket_recovery(self):
        file, keys = build()
        bucket = 2
        victims = [
            k for k in keys if file.segments[1].find_bucket_of(k) == bucket
        ]
        file.fail_segment_bucket(1, bucket)
        rebuilt = file.recover_segment_bucket(1, bucket)
        assert rebuilt == len(victims)
        for key in victims:
            assert file.search(key).value == key.to_bytes(8, "big") * 4

    def test_parity_segment_recovery(self):
        file, keys = build()
        bucket = 0
        file.fail_segment_bucket(4, bucket)  # parity segment
        file.recover_segment_bucket(4, bucket)
        # Parity must again reconstruct data losses.
        target = next(
            k for k in keys if file.parity_segment.find_bucket_of(k) == bucket
        )
        data_bucket = file.segments[0].find_bucket_of(target)
        file.fail_segment_bucket(0, data_bucket)
        assert file.search(target).value == target.to_bytes(8, "big") * 4
