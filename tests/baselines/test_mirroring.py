"""Tests for the LH*m mirroring baseline."""

import pytest

from repro.baselines import LHMFile
from repro.sim.rng import make_rng


def build(count=200, capacity=8, seed=4):
    file = LHMFile(capacity=capacity)
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big"))
    return file, keys


class TestConsistency:
    def test_mirrors_track_primaries_through_growth(self):
        file, _ = build()
        assert file.verify_mirror_consistency() == []
        assert file.bucket_count > 8

    def test_mutations_mirrored(self):
        file, keys = build()
        file.update(keys[0], b"new")
        file.delete(keys[1])
        assert file.verify_mirror_consistency() == []

    def test_storage_overhead_is_total(self):
        file, _ = build()
        assert file.storage_overhead() == pytest.approx(1.0)
        assert file.redundancy_bucket_count() == file.bucket_count


class TestCosts:
    def test_insert_costs_two_messages(self):
        file, keys = build()
        for key in keys:
            file.search(key)  # converge
        state = file.coordinator.state
        key = next(
            k for k in range(10**6)
            if file.client.image.address(k) == state.address(k)
            and len(file.data_servers()[state.address(k)].bucket) + 2
            < file.coordinator.capacity
        )
        with file.stats.measure("insert") as window:
            file.insert(key, b"v")
        assert window.messages == 2  # primary + mirror

    def test_search_costs_two_messages(self):
        file, keys = build()
        for key in keys:
            file.search(key)
        with file.stats.measure("search") as window:
            file.search(keys[0])
        assert window.messages == 2


class TestFailover:
    def test_search_served_from_mirror_and_recovered(self):
        file, keys = build()
        target = next(k for k in keys if file.find_bucket_of(k) == 1)
        node = file.fail_data_bucket(1)
        outcome = file.search(target)
        assert outcome.found and outcome.value == target.to_bytes(8, "big")
        assert file.network.is_available(node)
        assert file.verify_mirror_consistency() == []

    def test_mirror_failure_recovered_from_primary(self):
        file, keys = build()
        node = file.fail_mirror(2)
        file.recover([node])
        assert file.network.is_available(node)
        assert file.verify_mirror_consistency() == []

    def test_mirror_failure_healed_on_mutation(self):
        file, keys = build()
        target = next(k for k in keys if file.find_bucket_of(k) == 0)
        node = file.fail_mirror(0)
        file.update(target, b"while-mirror-down")
        assert file.network.is_available(node)
        assert file.verify_mirror_consistency() == []

    def test_mutation_during_primary_failure(self):
        file, keys = build()
        target = next(k for k in keys if file.find_bucket_of(k) == 3)
        file.fail_data_bucket(3)
        file.update(target, b"while-primary-down")
        assert file.search(target).value == b"while-primary-down"
        assert file.verify_mirror_consistency() == []

    def test_recovery_is_single_copy(self):
        """Mirroring's selling point: recovery = 1 dump + 1 load."""
        file, _ = build()
        node = file.fail_data_bucket(1)
        with file.stats.measure("recovery") as window:
            file.recover([node])
        assert window.messages == 3  # dump call (2) + load (1)
