"""Tests for the LH*g record-grouping baseline (the predecessor scheme)."""

import pytest

from repro.baselines import LHGConfig, LHGFile
from repro.baselines.lhg import decode_group_key, encode_group_key, xor_into
from repro.sim.rng import make_rng


def build(count=250, group_size=4, capacity=8, seed=6):
    file = LHGFile(LHGConfig(group_size=group_size, bucket_capacity=capacity))
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big") * 2)
    return file, keys


class TestGroupKeys:
    def test_encode_decode(self):
        gkey = encode_group_key(5, 123)
        assert decode_group_key(gkey) == (5, 123)

    def test_rank_space_guard(self):
        with pytest.raises(ValueError):
            encode_group_key(0, 1 << 30)

    def test_xor_into_grows(self):
        acc = bytearray(b"\x01")
        xor_into(acc, b"\x01\x02")
        assert acc == bytearray(b"\x00\x02")


class TestStructure:
    def test_parity_consistent_after_growth(self):
        file, _ = build()
        assert file.verify_parity_consistency() == []

    def test_group_keys_invariant_under_splits(self):
        """Moved records keep their insert-time group; so some records'
        group differs from their current bucket's group (impossible
        before any split)."""
        file, _ = build()
        moved = 0
        for server in file.data_servers():
            for key, (gkey, _) in server.bucket.records.items():
                group, _rank = decode_group_key(gkey)
                if group != server.number // 4:
                    moved += 1
        assert moved > 0

    def test_members_of_group_in_distinct_buckets(self):
        """Proposition 1 of the LH*g paper."""
        file, _ = build()
        location: dict[int, int] = {}
        groups: dict[int, list[int]] = {}
        for server in file.data_servers():
            for key, (gkey, _) in server.bucket.records.items():
                location[key] = server.number
                groups.setdefault(gkey, []).append(key)
        for gkey, members in groups.items():
            buckets = [location[k] for k in members]
            assert len(buckets) == len(set(buckets)), (gkey, buckets)

    def test_group_size_bounds_members(self):
        file, _ = build()
        for server in file.parity_servers():
            for record in server.bucket.records.values():
                assert 1 <= len(record.keys) <= 4

    def test_parity_file_splits_as_it_grows(self):
        file, _ = build(count=600)
        assert file.parity_coordinator.state.bucket_count > 1
        assert file.verify_parity_consistency() == []

    def test_storage_overhead_near_one_over_group_size(self):
        file, _ = build(count=800, capacity=16)
        assert file.storage_overhead() == pytest.approx(1 / 4, rel=0.55)


class TestOperations:
    def test_search_update_delete(self):
        file, keys = build()
        assert file.search(keys[0]).value == keys[0].to_bytes(8, "big") * 2
        file.update(keys[0], b"changed!")
        assert file.search(keys[0]).value == b"changed!"
        file.delete(keys[1])
        assert not file.search(keys[1]).found
        assert file.verify_parity_consistency() == []

    def test_scan(self):
        file, keys = build(count=100)
        result = file.scan()
        assert result.complete
        assert sorted(k for k, _ in result.records) == sorted(keys)

    def test_splits_send_no_parity_messages(self):
        """The scheme's hallmark: a split is parity-silent."""
        file, _ = build(count=100)
        coordinator = file.coordinator
        with file.stats.measure("split") as window:
            coordinator.split_once()
        assert window.by_kind.get("gparity.apply", 0) == 0
        assert file.verify_parity_consistency() == []


class TestRecovery:
    def test_primary_bucket_recovery(self):
        file, keys = build()
        victims = {k: file.search(k).value
                   for k in keys if file.find_bucket_of(k) == 2}
        node = file.fail_data_bucket(2)
        file.recover([node])
        for key, value in victims.items():
            assert file.search(key).value == value
        assert file.verify_parity_consistency() == []

    def test_recovery_scans_whole_parity_file(self):
        """LH*g's recovery cost: a scan of all of F2 (vs LH*RS's m-1+k
        group-local reads)."""
        file, _ = build(count=600)
        parity_buckets = file.parity_coordinator.state.bucket_count
        assert parity_buckets > 1
        node = file.fail_data_bucket(2)
        with file.stats.measure("recovery") as window:
            file.recover([node])
        assert window.by_kind["gparity.scan_for_bucket"] >= 1
        assert window.by_kind["gparity.scan_for_bucket.reply"] == parity_buckets

    def test_parity_bucket_recovery(self):
        file, keys = build(count=600)
        node = file.fail_parity_bucket(0)
        file.recover([node])
        assert file.verify_parity_consistency() == []

    def test_degraded_read_through_client(self):
        file, keys = build()
        target = next(k for k in keys if file.find_bucket_of(k) == 1)
        node = file.fail_data_bucket(1)
        outcome = file.search(target)
        assert outcome.found
        assert outcome.value == target.to_bytes(8, "big") * 2
        assert file.network.is_available(node)

    def test_certain_miss_during_unavailability(self):
        file, _ = build()
        absent = 10**9 + 13
        file.fail_data_bucket(file.find_bucket_of(absent))
        assert not file.search(absent).found

    def test_two_failures_sharing_a_record_group_fatal(self):
        """1-availability: LH*g cannot recover two buckets whose records
        share a record group (contrast with LH*RS k≥2).  §2.7 of the
        paper: only "good cases" — no group spanning both losses — are
        recoverable under multiple failures."""
        from repro.sim.network import NodeUnavailable

        file, _ = build()
        # Oracle: find a record group with >= 2 members and fail the two
        # buckets currently holding them.
        location = {}
        for server in file.data_servers():
            for key in server.bucket.records:
                location[key] = server.number
        spanning = next(
            record
            for server in file.parity_servers()
            for record in server.bucket.records.values()
            if len(record.keys) >= 2
        )
        members = list(spanning.keys)[:2]
        b1, b2 = location[members[0]], location[members[1]]
        assert b1 != b2  # Proposition 1
        file.fail_data_bucket(b1)
        file.fail_data_bucket(b2)
        with pytest.raises((NodeUnavailable, RuntimeError)):
            file.recover([f"g.d{b1}", f"g.d{b2}"])

    def test_mutation_during_unavailability_recovers_first(self):
        file, keys = build()
        target = next(k for k in keys if file.find_bucket_of(k) == 3)
        file.fail_data_bucket(3)
        file.update(target, b"updated-during-failure")
        assert file.search(target).value == b"updated-during-failure"
        assert file.verify_parity_consistency() == []

    def test_parity_failure_healed_on_mutation(self):
        file, keys = build()
        # Pick a key whose parity record lives in the bucket we fail.
        victim_server = file.parity_servers()[0]
        record = next(iter(victim_server.bucket.records.values()))
        target = next(iter(record.keys))
        node = file.fail_parity_bucket(0)
        file.update(target, b"poke-parity")
        assert file.network.is_available(node)
        assert file.verify_parity_consistency() == []
