"""Deeper tests of the LH*g machinery: images, forwarding, deletions."""

import pytest

from repro.baselines import LHGConfig, LHGFile
from repro.sim.rng import make_rng


def build(count=300, capacity=8, seed=37):
    file = LHGFile(LHGConfig(group_size=4, bucket_capacity=capacity))
    rng = make_rng(seed)
    keys = [int(x) for x in rng.choice(10**9, size=count, replace=False)]
    for key in keys:
        file.insert(key, key.to_bytes(8, "big"))
    return file, keys


class TestParityFileClienting:
    def test_primary_servers_hold_f2_images(self):
        """Primary buckets are LH* clients of F2: their images of F2's
        state converge via gparity IAMs as F2 splits."""
        file, _ = build(count=600)
        f2_state = file.parity_coordinator.state
        assert f2_state.bucket_count > 1
        images = [s.parity_image for s in file.data_servers()]
        # Every server that inserted recently has a useful image.
        active = [img for img in images if img.adjustments > 0]
        assert active, "F2 splits must have produced IAMs"
        for image in images:
            assert image.bucket_count_estimate <= f2_state.bucket_count

    def test_f2_forwarding_happens_and_converges(self):
        file, _ = build(count=600)
        forwards = sum(s.forwards for s in file.parity_servers())
        assert forwards > 0  # stale primary images forwarded via A2
        # Once converged, a steady-state insert costs 2 (op + parity).
        state = file.coordinator.state
        f2_state = file.parity_coordinator.state
        for key in range(10**6, 10**6 + 10**5):
            bucket = state.address(key)
            if file.client.image.address(key) != bucket:
                continue
            server = file.data_servers()[bucket]
            if len(server.bucket) + 2 >= file.config.bucket_capacity:
                continue
            gkey_guess = None  # rank unknown a priori; just measure
            with file.stats.measure("i") as window:
                file.insert(key, b"x" * 8)
            if window.by_kind.get("gparity.apply", 0) == 1 and (
                window.messages == 2
            ):
                break
        else:
            pytest.fail("no clean 2-message insert observed")

    def test_parity_records_move_with_f2_splits(self):
        file, _ = build(count=600)
        # Every parity record must live at its correct F2 bucket.
        f2_state = file.parity_coordinator.state
        for server in file.parity_servers():
            for gkey in server.bucket.records:
                assert f2_state.address(gkey) == server.number


class TestDeletionSemantics:
    def test_delete_updates_parity_directory(self):
        file, keys = build(count=100)
        victim = keys[0]
        gkey = next(
            g for s in file.data_servers()
            for k, (g, _) in s.bucket.records.items() if k == victim
        )
        file.delete(victim)
        assert file.verify_parity_consistency() == []
        for server in file.parity_servers():
            record = server.bucket.records.get(gkey)
            if record is not None:
                assert victim not in record.keys

    def test_delete_last_member_removes_parity_record(self):
        file, keys = build(count=100)
        # Find a singleton record group.
        singleton = next(
            (record for s in file.parity_servers()
             for record in s.bucket.records.values()
             if len(record.keys) == 1),
            None,
        )
        if singleton is None:
            pytest.skip("no singleton group in this build")
        (victim,) = singleton.keys
        gkey = singleton.gkey
        file.delete(victim)
        assert all(
            gkey not in s.bucket.records for s in file.parity_servers()
        )

    def test_updates_fold_xor_deltas(self):
        file, keys = build(count=100)
        file.update(keys[0], b"ABCDEFGH")
        file.update(keys[0], b"12345678")
        assert file.verify_parity_consistency() == []
        assert file.search(keys[0]).value == b"12345678"


class TestScaleBehaviour:
    def test_recovery_cost_grows_with_file_size(self):
        """The LH*g weakness LH*RS removes: A4 scans all of F2."""
        costs = {}
        for count in (200, 800):
            file, _ = build(count=count, seed=count)
            node = file.fail_data_bucket(1)
            with file.stats.measure("r") as window:
                file.recover([node])
            costs[count] = window.messages
        assert costs[800] > costs[200]

    def test_storage_overhead_stable_under_growth(self):
        file, _ = build(count=1000, capacity=16)
        assert 0.15 < file.storage_overhead() < 0.5
        assert file.verify_parity_consistency() == []
