"""Tests for workload generation and failure traces."""

import pytest

from repro.core import LHRSConfig, LHRSFile
from repro.workloads import (
    FailureEvent,
    FailureSchedule,
    KeyStream,
    OperationMix,
    PayloadShape,
    generate_operations,
    run_trace,
)


class TestKeyStream:
    def test_uniform_unique_and_reproducible(self):
        a = KeyStream(seed=1).generate(100)
        b = KeyStream(seed=1).generate(100)
        assert a == b
        assert len(set(a)) == 100

    def test_sequential(self):
        assert KeyStream(kind="sequential").generate(5) == [0, 1, 2, 3, 4]

    def test_zipf_skew(self):
        keys = KeyStream(kind="zipf", seed=2).generate(2000)
        assert keys.count(1) > 200  # heavy head

    def test_clustered_runs(self):
        keys = KeyStream(kind="clustered", seed=3, cluster_span=8).generate(50)
        assert len(keys) == 50
        adjacent = sum(1 for a, b in zip(keys, keys[1:]) if b == a + 1)
        assert adjacent > 20

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            KeyStream(kind="nope").generate(1)


class TestPayloadShape:
    def test_fixed(self):
        payloads = PayloadShape(kind="fixed", size=37).generate([1, 2])
        assert all(len(p) == 37 for p in payloads)
        assert payloads[0] != payloads[1]  # key-derived

    def test_variable_bounds(self):
        payloads = PayloadShape(
            kind="variable", min_size=10, max_size=20, seed=4
        ).generate(list(range(200)))
        sizes = {len(p) for p in payloads}
        assert min(sizes) >= 10 and max(sizes) <= 20
        assert len(sizes) > 3

    def test_record_fields(self):
        (payload,) = PayloadShape(kind="record", seed=5).generate([42])
        parts = payload.split(b"|")
        assert int.from_bytes(parts[0], "big") == 42
        assert parts[1] == b"name-42"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            PayloadShape(kind="nope").generate([1])


class TestOperationMix:
    def test_weights_normalized(self):
        mix = OperationMix(insert=2, search=2)
        assert mix.weights().sum() == pytest.approx(1.0)
        assert mix.weights()[0] == pytest.approx(0.5)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            OperationMix(insert=0).weights()

    def test_generate_operations_semantics(self):
        ops = list(
            generate_operations(
                300,
                OperationMix(insert=1, search=1, update=0.5, delete=0.25),
                seed=6,
            )
        )
        assert len(ops) == 300
        kinds = {op for op, _, _ in ops}
        assert kinds <= {"insert", "search", "update", "delete"}
        assert all(
            payload is not None
            for op, _, payload in ops
            if op in ("insert", "update")
        )
        assert all(
            payload is None for op, _, payload in ops if op in ("search", "delete")
        )

    def test_operations_drive_a_file(self):
        file = LHRSFile(LHRSConfig(bucket_capacity=8, availability=1))
        ops = generate_operations(
            200, OperationMix(insert=2, search=1, update=1, delete=0.5), seed=7
        )
        summary = run_trace(file, ops)
        assert sum(summary["counts"].values()) == 200
        assert file.verify_parity_consistency() == []


class TestFailureSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(0, "x", "explode")

    def test_due(self):
        schedule = FailureSchedule().fail(3, "a").restore(5, "a").fail(3, "b")
        assert {e.node_id for e in schedule.due(3)} == {"a", "b"}
        assert schedule.due(4) == []

    def test_random_bursts_reproducible(self):
        a = FailureSchedule.random_bursts(["x", "y", "z"], 100, 3, seed=8)
        b = FailureSchedule.random_bursts(["x", "y", "z"], 100, 3, seed=8)
        assert a.events == b.events
        assert len(a.events) == 3

    def test_trace_with_failures_recovers_transparently(self):
        file = LHRSFile(LHRSConfig(bucket_capacity=8, availability=1))
        warmup = list(
            generate_operations(150, OperationMix(insert=1), seed=9)
        )
        run_trace(file, warmup)
        schedule = FailureSchedule().fail(10, "f.d1").fail(40, "f.d2")
        mixed = generate_operations(
            80, OperationMix(insert=1, search=2, update=0.5), seed=10
        )
        summary = run_trace(file, mixed, schedule)
        assert sum(summary["counts"].values()) == 80
        assert file.verify_parity_consistency() == []
        assert file.network.is_available("f.d1")
