"""Unit and property tests for matrices over GF(2^w)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF, GFMatrix


@pytest.fixture
def f8():
    return GF(8)


class TestConstruction:
    def test_identity(self, f8):
        eye = GFMatrix.identity(f8, 3)
        assert eye.rows == eye.cols == 3
        assert eye[0, 0] == 1 and eye[0, 1] == 0

    def test_rejects_non_2d(self, f8):
        with pytest.raises(ValueError):
            GFMatrix(f8, [1, 2, 3])

    def test_rejects_out_of_field(self, f8):
        with pytest.raises(ValueError):
            GFMatrix(f8, [[256]])
        with pytest.raises(ValueError):
            GFMatrix(f8, [[-1]])

    def test_vandermonde_shape_and_values(self, f8):
        v = GFMatrix.vandermonde(f8, 4, 3)
        assert (v.rows, v.cols) == (4, 3)
        for i in range(4):
            for j in range(3):
                assert v[i, j] == f8.pow(i, j)

    def test_vandermonde_too_many_rows(self):
        with pytest.raises(ValueError):
            GFMatrix.vandermonde(GF(4), 17, 2)

    def test_cauchy_validation(self, f8):
        with pytest.raises(ValueError):
            GFMatrix.cauchy(f8, [1, 1], [2, 3])
        with pytest.raises(ValueError):
            GFMatrix.cauchy(f8, [1, 2], [2, 3])

    def test_cauchy_values(self, f8):
        c = GFMatrix.cauchy(f8, [4, 5], [0, 1, 2])
        for i, x in enumerate([4, 5]):
            for j, y in enumerate([0, 1, 2]):
                assert c[i, j] == f8.inv(x ^ y)


class TestArithmetic:
    def test_matmul_identity(self, f8):
        a = GFMatrix(f8, [[3, 7], [1, 255]])
        eye = GFMatrix.identity(f8, 2)
        assert a @ eye == a
        assert eye @ a == a

    def test_matmul_shape_mismatch(self, f8):
        a = GFMatrix(f8, [[1, 2]])
        with pytest.raises(ValueError):
            _ = a @ a

    def test_add_is_xor(self, f8):
        a = GFMatrix(f8, [[3, 7]])
        b = GFMatrix(f8, [[1, 1]])
        assert (a + b).data.tolist() == [[2, 6]]

    def test_field_mismatch_rejected(self):
        a = GFMatrix(GF(8), [[1]])
        b = GFMatrix(GF(16), [[1]])
        with pytest.raises(ValueError):
            _ = a @ b

    def test_mul_vector_matches_matmul(self, f8):
        a = GFMatrix(f8, [[3, 7], [9, 11]])
        v = [5, 6]
        column = GFMatrix(f8, [[5], [6]])
        assert a.mul_vector(v) == [row[0] for row in (a @ column).data.tolist()]

    def test_scale_row_col(self, f8):
        a = GFMatrix(f8, [[1, 2], [3, 4]])
        assert a.scale_row(0, 2).data.tolist()[0] == [2, 4]
        assert a.scale_col(1, 2).col(1) == [4, 8]
        with pytest.raises(ValueError):
            a.scale_row(0, 0)
        with pytest.raises(ValueError):
            a.scale_col(0, 0)


class TestInverse:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_random_nonsingular_inverse_roundtrip(self, seed, n):
        f = GF(8)
        rng = np.random.default_rng(seed)
        # Rejection-sample a nonsingular matrix.
        for _ in range(64):
            m = GFMatrix(f, rng.integers(0, 256, size=(n, n)))
            if m.is_nonsingular():
                break
        else:
            pytest.skip("no nonsingular sample found (vanishingly unlikely)")
        eye = GFMatrix.identity(f, n)
        assert m @ m.inverse() == eye
        assert m.inverse() @ m == eye

    def test_singular_raises(self, f8):
        with pytest.raises(ValueError, match="singular"):
            GFMatrix(f8, [[1, 2], [1, 2]]).inverse()

    def test_non_square_raises(self, f8):
        with pytest.raises(ValueError):
            GFMatrix(f8, [[1, 2]]).inverse()

    def test_rank(self, f8):
        assert GFMatrix(f8, [[1, 2], [1, 2]]).rank() == 1
        assert GFMatrix.identity(f8, 4).rank() == 4
        assert GFMatrix.zeros(f8, 3, 3).rank() == 0
        assert GFMatrix(f8, [[1, 2, 3], [4, 5, 6]]).rank() == 2


class TestSystematize:
    def test_vandermonde_systematic_top_block(self, f8):
        tall = GFMatrix.vandermonde(f8, 6, 4)
        sys = tall.systematize()
        assert sys.take_rows(range(4)) == GFMatrix.identity(f8, 4)

    def test_systematize_preserves_mds_row_space(self, f8):
        """Any 4 rows of the systematized 6x4 Vandermonde stay independent."""
        from itertools import combinations

        sys = GFMatrix.vandermonde(f8, 6, 4).systematize()
        for rows in combinations(range(6), 4):
            assert sys.take_rows(rows).is_nonsingular()

    def test_systematize_requires_tall(self, f8):
        with pytest.raises(ValueError):
            GFMatrix(f8, [[1, 2, 3]]).systematize()


class TestSubmatrixProperty:
    def test_cauchy_all_submatrices_nonsingular(self, f8):
        c = GFMatrix.cauchy(f8, [8, 9, 10], [0, 1, 2, 3])
        assert c.all_square_submatrices_nonsingular()

    def test_detects_singular_submatrix(self, f8):
        m = GFMatrix(f8, [[1, 1], [1, 1]])
        assert not m.all_square_submatrices_nonsingular()

    def test_zero_entry_fails(self, f8):
        m = GFMatrix(f8, [[1, 0], [1, 1]])
        assert not m.all_square_submatrices_nonsingular()


class TestSelection:
    def test_take_rows_cols_and_stack(self, f8):
        m = GFMatrix(f8, [[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.take_rows([2, 0]).data.tolist() == [[7, 8, 9], [1, 2, 3]]
        assert m.take_cols([1]).data.tolist() == [[2], [5], [8]]
        stacked = m.take_cols([0]).hstack(m.take_cols([2]))
        assert stacked.data.tolist() == [[1, 3], [4, 6], [7, 9]]
        assert m.transpose().data.tolist() == [[1, 4, 7], [2, 5, 8], [3, 6, 9]]
        assert m.row(1) == [4, 5, 6]
        assert m.copy() == m
