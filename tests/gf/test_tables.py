"""Unit tests for GF(2^w) log/antilog table construction."""

import numpy as np
import pytest

from repro.gf.tables import LOG_ZERO_SENTINEL, PRIMITIVE_POLYNOMIALS, build_tables


@pytest.mark.parametrize("width", sorted(PRIMITIVE_POLYNOMIALS))
def test_exp_is_a_permutation_of_nonzero_elements(width):
    exp, _ = build_tables(width)
    group = (1 << width) - 1
    assert sorted(exp[:group]) == list(range(1, group + 1))


@pytest.mark.parametrize("width", sorted(PRIMITIVE_POLYNOMIALS))
def test_exp_table_is_doubled_for_modless_indexing(width):
    exp, _ = build_tables(width)
    group = (1 << width) - 1
    assert len(exp) == 2 * group
    assert (exp[group:] == exp[:group]).all()


@pytest.mark.parametrize("width", sorted(PRIMITIVE_POLYNOMIALS))
def test_log_inverts_exp(width):
    exp, log = build_tables(width)
    group = (1 << width) - 1
    for i in range(group):
        assert log[exp[i]] == i


@pytest.mark.parametrize("width", sorted(PRIMITIVE_POLYNOMIALS))
def test_log_zero_is_sentinel(width):
    _, log = build_tables(width)
    assert log[0] == LOG_ZERO_SENTINEL


def test_unsupported_width_rejected():
    with pytest.raises(ValueError, match="unsupported field width"):
        build_tables(12)


def test_tables_are_cached():
    a = build_tables(8)
    b = build_tables(8)
    assert a[0] is b[0] and a[1] is b[1]


@pytest.mark.parametrize("width", sorted(PRIMITIVE_POLYNOMIALS))
def test_generator_has_full_order(width):
    """alpha must generate the whole multiplicative group (primitivity)."""
    exp, _ = build_tables(width)
    group = (1 << width) - 1
    assert exp[0] == 1
    assert len(np.unique(exp[:group])) == group
