"""Unit and property tests for GF(2^w) scalar and payload arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF

WIDTHS = [4, 8, 16]


@pytest.fixture(params=WIDTHS, ids=[f"gf{w}" for w in WIDTHS])
def field(request):
    return GF(request.param)


def elements(width, min_value=0):
    return st.integers(min_value=min_value, max_value=(1 << width) - 1)


# ----------------------------------------------------------------------
# scalar axioms
# ----------------------------------------------------------------------
class TestScalarAxioms:
    @given(data=st.data())
    def test_mul_commutative(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        a = data.draw(elements(width))
        b = data.draw(elements(width))
        assert f.mul(a, b) == f.mul(b, a)

    @given(data=st.data())
    def test_mul_associative(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        a, b, c = (data.draw(elements(width)) for _ in range(3))
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))

    @given(data=st.data())
    def test_distributive(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        a, b, c = (data.draw(elements(width)) for _ in range(3))
        assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)

    @given(data=st.data())
    def test_inverse_roundtrip(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        a = data.draw(elements(width, min_value=1))
        assert f.mul(a, f.inv(a)) == 1

    @given(data=st.data())
    def test_div_is_mul_by_inverse(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        a = data.draw(elements(width))
        b = data.draw(elements(width, min_value=1))
        assert f.div(a, b) == f.mul(a, f.inv(b))

    def test_identities(self, field):
        for a in range(min(field.order, 64)):
            assert field.mul(a, 1) == a
            assert field.mul(a, 0) == 0
            assert field.add(a, 0) == a
            assert field.add(a, a) == 0  # characteristic 2

    def test_exhaustive_gf4_multiplication_closed_and_invertible(self):
        f = GF(4)
        for a in range(16):
            for b in range(16):
                p = f.mul(a, b)
                assert 0 <= p < 16
                if a and b:
                    assert p != 0  # no zero divisors


# ----------------------------------------------------------------------
# error handling
# ----------------------------------------------------------------------
class TestErrors:
    def test_out_of_range_rejected(self, field):
        with pytest.raises(ValueError):
            field.mul(field.order, 1)
        with pytest.raises(ValueError):
            field.add(-1, 0)

    def test_zero_division(self, field):
        with pytest.raises(ZeroDivisionError):
            field.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            GF(7)

    def test_pow_of_zero(self, field):
        assert field.pow(0, 0) == 1
        assert field.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            field.pow(0, -1)


# ----------------------------------------------------------------------
# pow / log
# ----------------------------------------------------------------------
class TestPowLog:
    def test_pow_matches_repeated_mul(self, field):
        a = 3 % field.order or 1
        acc = 1
        for e in range(10):
            assert field.pow(a, e) == acc
            acc = field.mul(acc, a)

    def test_negative_pow(self, field):
        a = 5 % field.order or 3
        assert field.mul(field.pow(a, -1), a) == 1

    def test_log_exp_roundtrip(self, field):
        for e in range(0, field.group_order, max(1, field.group_order // 50)):
            assert field.log(field.exp(e)) == e % field.group_order


# ----------------------------------------------------------------------
# vectorized symbol ops agree with scalar ops
# ----------------------------------------------------------------------
class TestVectorized:
    @given(data=st.data())
    @settings(max_examples=50)
    def test_mul_symbols_matches_scalar(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        scalar = data.draw(elements(width))
        values = data.draw(st.lists(elements(width), min_size=1, max_size=32))
        arr = np.array(values, dtype=f.symbol_dtype)
        out = f.mul_symbols(arr, scalar)
        assert out.dtype == f.symbol_dtype
        assert [int(v) for v in out] == [f.mul(v, scalar) for v in values]

    def test_mul_row_cached_and_correct(self):
        f = GF(8)
        row = f.mul_row(7)
        assert row is f.mul_row(7)
        for x in (0, 1, 2, 100, 255):
            assert int(row[x]) == f.mul(7, x)

    def test_mul_row_rejected_for_wide_fields(self):
        with pytest.raises(ValueError):
            GF(16).mul_row(3)


# ----------------------------------------------------------------------
# byte payload conversions
# ----------------------------------------------------------------------
class TestPayloads:
    @given(data=st.binary(max_size=64), width=st.sampled_from(WIDTHS))
    def test_symbols_bytes_roundtrip(self, data, width):
        f = GF(width)
        symbols = f.symbols_from_bytes(data)
        assert f.bytes_from_symbols(symbols, len(data)) == data

    @given(
        data=st.binary(max_size=64),
        width=st.sampled_from(WIDTHS),
        pad=st.integers(min_value=0, max_value=16),
    )
    def test_padded_roundtrip(self, data, width, pad):
        f = GF(width)
        length = f.symbol_length_for_bytes(len(data)) + pad
        symbols = f.symbols_from_bytes(data, length)
        assert len(symbols) == length
        assert f.bytes_from_symbols(symbols, len(data)) == data

    def test_symbols_from_bytes_rejects_short_target(self):
        f = GF(8)
        with pytest.raises(ValueError):
            f.symbols_from_bytes(b"abcdef", 2)

    @given(a=st.binary(max_size=32), b=st.binary(max_size=32))
    def test_add_bytes_is_padded_xor(self, a, b):
        f = GF(8)
        out = f.add_bytes(a, b)
        assert len(out) == max(len(a), len(b))
        for i, byte in enumerate(out):
            av = a[i] if i < len(a) else 0
            bv = b[i] if i < len(b) else 0
            assert byte == av ^ bv

    @given(a=st.binary(max_size=32), b=st.binary(max_size=32))
    def test_add_bytes_self_inverse(self, a, b):
        f = GF(8)
        twice = f.add_bytes(f.add_bytes(a, b), b)
        assert twice[: len(a)] == a

    @given(
        width=st.sampled_from(WIDTHS),
        scalar_seed=st.integers(min_value=0, max_value=1 << 16),
        data=st.binary(min_size=1, max_size=48),
    )
    @settings(max_examples=60)
    def test_scale_accumulate_matches_reference(self, width, scalar_seed, data):
        f = GF(width)
        scalar = scalar_seed % f.order
        acc = np.zeros(f.symbol_length_for_bytes(len(data)) + 3, dtype=f.symbol_dtype)
        f.scale_accumulate(acc, scalar, data)
        expected = f.mul_symbols(f.symbols_from_bytes(data), scalar)
        assert (acc[: len(expected)] == expected).all()
        assert (acc[len(expected):] == 0).all()

    def test_scale_accumulate_overflow_rejected(self):
        f = GF(8)
        acc = np.zeros(2, dtype=np.uint8)
        with pytest.raises(ValueError):
            f.scale_accumulate(acc, 3, b"abcdef")

    def test_scale_accumulate_noop_cases(self):
        f = GF(8)
        acc = np.arange(4, dtype=np.uint8)
        f.scale_accumulate(acc, 0, b"abcd")
        assert (acc == np.arange(4)).all()
        f.scale_accumulate(acc, 5, b"")
        assert (acc == np.arange(4)).all()


# ----------------------------------------------------------------------
# 2D batch kernels agree with the scalar oracle
# ----------------------------------------------------------------------
class TestBatchKernels:
    @given(data=st.data())
    @settings(max_examples=50)
    def test_mul_arrays_matches_scalar(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        values = data.draw(
            st.lists(
                st.tuples(elements(width), elements(width)),
                min_size=1, max_size=32,
            )
        )
        a = np.array([v for v, _ in values], dtype=f.symbol_dtype)
        b = np.array([v for _, v in values], dtype=f.symbol_dtype)
        out = f.mul_arrays(a, b)
        assert [int(v) for v in out] == [f.mul(x, y) for x, y in values]

    @given(data=st.data())
    @settings(max_examples=40)
    def test_mul_matrix_matches_mul_symbols_per_row(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        scalar = data.draw(elements(width))
        rows = data.draw(st.integers(min_value=1, max_value=5))
        cols = data.draw(st.integers(min_value=1, max_value=16))
        matrix = np.array(
            data.draw(
                st.lists(
                    st.lists(elements(width), min_size=cols, max_size=cols),
                    min_size=rows, max_size=rows,
                )
            ),
            dtype=f.symbol_dtype,
        )
        out = f.mul_matrix(matrix, scalar)
        for r in range(rows):
            assert (out[r] == f.mul_symbols(matrix[r], scalar)).all()

    def test_mul_matrix_rejects_non_2d(self):
        f = GF(8)
        with pytest.raises(ValueError):
            f.mul_matrix(np.zeros(4, dtype=np.uint8), 3)

    @given(data=st.data())
    @settings(max_examples=30)
    def test_gf_matmul_matches_scalar_accumulation(self, data):
        width = data.draw(st.sampled_from(WIDTHS))
        f = GF(width)
        r = data.draw(st.integers(min_value=1, max_value=3))
        c = data.draw(st.integers(min_value=1, max_value=3))
        nranks = data.draw(st.integers(min_value=1, max_value=3))
        length = data.draw(st.integers(min_value=1, max_value=12))
        coeff = np.array(
            data.draw(
                st.lists(
                    st.lists(elements(width), min_size=c, max_size=c),
                    min_size=r, max_size=r,
                )
            ),
            dtype=np.int64,
        )
        stacked = np.array(
            data.draw(
                st.lists(
                    st.lists(
                        st.lists(elements(width), min_size=length, max_size=length),
                        min_size=nranks, max_size=nranks,
                    ),
                    min_size=c, max_size=c,
                )
            ),
            dtype=f.symbol_dtype,
        )
        out = f.gf_matmul(coeff, stacked)
        assert out.shape == (r, nranks, length)
        for i in range(r):
            for n in range(nranks):
                for s in range(length):
                    expected = 0
                    for j in range(c):
                        expected ^= f.mul(int(coeff[i, j]), int(stacked[j, n, s]))
                    assert int(out[i, n, s]) == expected

    @given(
        width=st.sampled_from(WIDTHS),
        payloads=st.lists(
            st.one_of(st.none(), st.binary(max_size=24)),
            min_size=1, max_size=6,
        ),
        pad=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60)
    def test_stack_payloads_matches_symbols_from_bytes(self, width, payloads, pad):
        f = GF(width)
        length = max(
            (f.symbol_length_for_bytes(len(p)) for p in payloads if p),
            default=0,
        ) + pad
        stacked = f.stack_payloads(payloads, length)
        assert stacked.shape == (len(payloads), length)
        for i, payload in enumerate(payloads):
            expected = f.symbols_from_bytes(payload or b"", length)
            assert (stacked[i] == expected).all()


# ----------------------------------------------------------------------
# zero-safe single-gather log layout (the wide-field fast path)
# ----------------------------------------------------------------------
class TestZeroSafeLayout:
    """The branch-free mul tables must make zero algebraically safe.

    GF(2^16) is the width that *depends* on this layout — `mul_row`
    caching is rejected there, so every batched multiply rides the
    single `exp_mul[log_mul[a] + log_mul[b]]` gather.  These tests pin
    the table construction itself and then the GF(2^16) kernels built
    on it, zeros included.
    """

    def test_log_zero_sentinel_maps_all_products_to_zero(self):
        from repro.gf.tables import build_mul_tables

        for width in WIDTHS:
            exp_mul, log_mul = build_mul_tables(width)
            group = (1 << width) - 1
            assert int(log_mul[0]) == 2 * group - 1
            # Any index reachable with >= 1 zero operand holds 0.
            assert (exp_mul[int(log_mul[0]):] == 0).all()
            assert int(exp_mul[int(log_mul[0]) + int(log_mul[0])]) == 0

    @given(data=st.data())
    @settings(max_examples=60)
    def test_single_gather_equals_scalar_mul_gf16(self, data):
        from repro.gf.tables import build_mul_tables

        f = GF(16)
        exp_mul, log_mul = build_mul_tables(16)
        # Bias toward zeros: the operands the sentinel exists for.
        a = data.draw(st.one_of(st.just(0), elements(16)))
        b = data.draw(st.one_of(st.just(0), elements(16)))
        gathered = int(exp_mul[int(log_mul[a]) + int(log_mul[b])])
        assert gathered == f.mul(a, b)

    def test_mul_symbols_all_zero_input_gf16(self):
        f = GF(16)
        zeros = np.zeros(64, dtype=f.symbol_dtype)
        for scalar in (0, 1, 2, 0xFFFF):
            out = f.mul_symbols(zeros, scalar)
            assert out.dtype == f.symbol_dtype
            assert (out == 0).all()

    def test_mul_arrays_zero_columns_gf16(self):
        f = GF(16)
        a = np.array([0, 0, 5, 0xFFFF, 0], dtype=np.uint16)
        b = np.array([0, 7, 0, 0, 0xABCD], dtype=np.uint16)
        out = f.mul_arrays(a, b)
        assert [int(v) for v in out] == [0, 0, 0, 0, 0]

    @given(data=st.data())
    @settings(max_examples=40)
    def test_batch_equals_scalar_with_zero_runs_gf16(self, data):
        """batch ≡ scalar over GF(2^16) with dense zero runs mixed in."""
        f = GF(16)
        values = data.draw(
            st.lists(
                st.one_of(st.just(0), elements(16)),
                min_size=1, max_size=48,
            )
        )
        scalar = data.draw(st.one_of(st.just(0), elements(16)))
        arr = np.array(values, dtype=np.uint16)
        assert [int(v) for v in f.mul_symbols(arr, scalar)] == [
            f.mul(v, scalar) for v in values
        ]

    def test_gf_matmul_all_zero_column_gf16(self):
        """A position holding only zero payloads contributes nothing."""
        f = GF(16)
        coeff = np.array([[1, 7, 0x1234]], dtype=np.int64)
        stacked = np.zeros((3, 2, 5), dtype=np.uint16)
        stacked[0, 0] = [1, 2, 3, 4, 5]
        stacked[2, 1] = [9, 9, 0, 9, 9]  # zeros inside a used column too
        out = f.gf_matmul(coeff, stacked)
        for n in range(2):
            for s in range(5):
                expected = f.mul(1, int(stacked[0, n, s])) ^ f.mul(
                    0x1234, int(stacked[2, n, s])
                )
                assert int(out[0, n, s]) == expected

    @given(
        payloads=st.lists(
            st.one_of(st.none(), st.binary(max_size=33)),
            min_size=1, max_size=8,
        ),
    )
    @settings(max_examples=50)
    def test_ragged_odd_length_payloads_gf16(self, payloads):
        """GF(2^16) packs odd-byte payloads with a zero pad byte; ragged
        and all-``None`` (all-zero) columns must round-trip exactly."""
        f = GF(16)
        length = max(
            (f.symbol_length_for_bytes(len(p)) for p in payloads if p),
            default=1,
        )
        stacked = f.stack_payloads(payloads, length)
        for i, payload in enumerate(payloads):
            data = payload or b""
            assert f.bytes_from_symbols(
                np.ascontiguousarray(stacked[i]), len(data)
            ) == data

    @given(
        data=st.binary(min_size=1, max_size=41),
        scalar=st.integers(min_value=0, max_value=0xFFFF),
    )
    @settings(max_examples=50)
    def test_scale_accumulate_odd_lengths_gf16(self, data, scalar):
        f = GF(16)
        acc = np.zeros(f.symbol_length_for_bytes(len(data)) + 2,
                       dtype=np.uint16)
        f.scale_accumulate(acc, scalar, data)
        expected = f.mul_symbols(f.symbols_from_bytes(data), scalar)
        assert (acc[: len(expected)] == expected).all()
        assert (acc[len(expected):] == 0).all()
        # Folding the same Δ again cancels (characteristic 2) — the
        # idempotence hazard the Δ-sequence machinery protects against.
        f.scale_accumulate(acc, scalar, data)
        assert (acc == 0).all()


def test_field_equality_and_hash():
    assert GF(8) == GF(8)
    assert GF(8) != GF(16)
    assert hash(GF(8)) == hash(GF(8))
    assert repr(GF(8)) == "GF(2^8)"
