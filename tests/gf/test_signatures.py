"""Tests for algebraic signatures: the properties the audit relies on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF
from repro.gf.signatures import combine, signature, signature_vector


class TestBasics:
    def test_empty_and_zero_payloads(self):
        f = GF(8)
        assert signature(f, b"") == 0
        assert signature(f, b"\0" * 16) == 0

    def test_padding_invariance(self):
        """Zero padding never changes a signature — the property that
        lets record-group members sign their own lengths."""
        f = GF(8)
        data = b"some payload"
        assert signature(f, data) == signature(f, data + b"\0" * 40)
        assert signature(f, data) == signature(
            f, data, length=f.symbol_length_for_bytes(len(data)) + 7
        )

    def test_alpha_validation(self):
        f = GF(8)
        with pytest.raises(ValueError):
            signature(f, b"x", alpha=0)
        with pytest.raises(ValueError):
            signature_vector(f, b"x", count=0)

    def test_vector_components_differ(self):
        f = GF(8)
        sig = signature_vector(f, b"hello world", count=3)
        assert len(sig) == 3
        assert len(set(sig)) > 1

    @pytest.mark.parametrize("width", [8, 16])
    def test_detects_any_single_byte_flip(self, width):
        f = GF(width)
        data = bytes(range(64))
        base = signature(f, data)
        for i in range(0, 64, 7):
            corrupted = bytearray(data)
            corrupted[i] ^= 0x5A
            assert signature(f, bytes(corrupted)) != base


class TestLinearity:
    @given(a=st.binary(min_size=1, max_size=40),
           b=st.binary(min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_additive(self, a, b):
        f = GF(8)
        length = max(len(a), len(b))
        xor = bytes(
            x ^ y for x, y in zip(a.ljust(length, b"\0"),
                                  b.ljust(length, b"\0"))
        )
        assert signature(f, xor) == signature(f, a) ^ signature(f, b)

    @given(data=st.binary(min_size=1, max_size=40),
           scalar=st.integers(min_value=1, max_value=255))
    @settings(max_examples=40)
    def test_scalar_commutes(self, data, scalar):
        f = GF(8)
        scaled = f.bytes_from_symbols(
            f.mul_symbols(f.symbols_from_bytes(data), scalar)
        )
        assert signature(f, scaled) == f.mul(scalar, signature(f, data))

    def test_commutes_with_rs_parity(self):
        """sig(parity) = combine(coefficients, member sigs) — the audit
        identity, end to end through the real codec."""
        from repro.rs import RSCodec

        f = GF(8)
        codec = RSCodec(m=4, k=3, field=f)
        payloads = [b"alpha" * 3, b"bravo!", b"charlie" * 2, b"d"]
        parity = codec.encode(payloads)
        member_sigs = [signature(f, p) for p in payloads]
        for i in range(3):
            row = [codec.coefficient(i, j) for j in range(4)]
            assert signature(f, parity[i]) == combine(f, row, member_sigs)

    def test_combine_validation(self):
        with pytest.raises(ValueError):
            combine(GF(8), [1, 2], [3])
