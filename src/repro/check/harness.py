"""Scenario running: a replayable (seed, schedule, fault-script) triple.

A :class:`Scenario` is everything one model-checking run needs, in
JSON-able form: a seed, a prefill size, a list of workload steps
(client operations interleaved with crash/restore/advance control
steps), a fault-rule script, and a scheduler spec.  Determinism is the
load-bearing property — :func:`run_scenario` builds a fresh cluster
from scratch every time, seeds every random source from the scenario,
and therefore replays *exactly*: the shrinker and the counterexample
``--replay`` path are just re-runs.

The workload generator mirrors the chaos-suite safety envelope:
mutation kinds get drop / transient-fail / duplicate (all survivable
under acked writes and Δ-sequence dedup) but never *delay* — a delayed
mutation could apply after a later completed operation on the same key,
which is a real at-least-once hazard but not one the acked-client
contract defends against.  Reply-and-ack kinds also get delay, which is
what feeds the schedulers held messages to reorder.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.check import mutants
from repro.check.history import HistoryRecorder, OpRecord
from repro.check.linearize import Verdict, check_history
from repro.check.scheduler import build_scheduler

#: Kinds the chaos envelope may drop / fail / duplicate (never delay).
MUTATION_KINDS = (
    "insert", "update", "delete", "search", "parity.update", "ops.batch",
)
#: Kinds that may additionally be delayed — replies, acks and IAMs; a
#: held reply is what gives a scheduler something to reorder.
REPLY_KINDS = ("search.result", "op.ack", "iam")

#: The harness cluster shape: small buckets (splits happen early),
#: k = 2 parity (two concurrent failures per group survivable), acked
#: writes (a returned mutation definitely applied — the property that
#: makes completed-op intervals meaningful), batch plane on.
DEFAULT_CONFIG: dict[str, Any] = {
    "group_size": 4,
    "availability": 2,
    "bucket_capacity": 16,
    "parity_ack": True,
    "client_acks": True,
    "retry_attempts": 6,
    "retry_backoff_base": 0.5,
    "batch_ops": True,
}


@dataclass
class Scenario:
    """One replayable model-checking run."""

    seed: int = 0
    #: workload steps: ["insert", key, value] / ["update", key, value] /
    #: ["delete", key] / ["search", key] / ["batch", kind, items] /
    #: ["crash", node] / ["restore", node] (silent, state intact) /
    #: ["reboot", node] (durable restart: WAL replay + rejoin handshake) /
    #: ["advance", dt]
    ops: list = field(default_factory=list)
    #: FaultRule kwargs dicts (kinds as lists)
    fault_rules: list = field(default_factory=list)
    #: scheduler spec for build_scheduler (None = legacy pump order)
    scheduler: dict | None = None
    #: LHRSConfig overrides on top of DEFAULT_CONFIG
    config: dict = field(default_factory=dict)
    #: keys 0..prefill-1 are inserted (and recorded) before the steps
    prefill: int = 0
    #: trailing clock advance, maturing held messages
    settle: float = 12.0
    label: str = ""

    def client_op_count(self) -> int:
        """Steps that are client operations (the shrink budget metric)."""
        return sum(
            1 for step in self.ops
            if step[0] not in ("crash", "restore", "reboot", "advance")
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(**{
            k: data[k] for k in (
                "seed", "ops", "fault_rules", "scheduler", "config",
                "prefill", "settle", "label",
            ) if k in data
        })


@dataclass
class RunResult:
    """Everything one scenario run produced."""

    ok: bool
    verdict: Verdict
    scenario: Scenario
    history: list[OpRecord]
    tracer: Any
    #: repr() of exceptions steps raised (OperationFailed excluded —
    #: those are recorded as ambiguous ops, not errors)
    errors: list[str] = field(default_factory=list)
    file: Any = None


def _decode_rule(rule: dict) -> dict:
    decoded = dict(rule)
    if decoded.get("kinds") is not None:
        decoded["kinds"] = frozenset(decoded["kinds"])
    return decoded


def _apply_step(file, step: list, errors: list[str]) -> None:
    from repro.sdds.client import OperationFailed

    op = step[0]
    net = file.network
    try:
        if op == "insert":
            file.insert(int(step[1]), step[2].encode("latin-1"))
        elif op == "update":
            file.update(int(step[1]), step[2].encode("latin-1"))
        elif op == "delete":
            file.delete(int(step[1]))
        elif op == "search":
            file.search(int(step[1]))
        elif op == "batch":
            kind, items = step[1], step[2]
            client = file.client
            if kind in ("insert", "update"):
                getattr(client, f"{kind}_many")(
                    [(int(k), v.encode("latin-1")) for k, v in items]
                )
            elif kind == "delete":
                client.delete_many([int(k) for k in items])
            else:
                client.search_many([int(k) for k in items])
        elif op == "crash":
            if step[1] in net.nodes:
                file.failures.crash([step[1]])
        elif op == "restore":
            if step[1] in net.nodes:
                file.failures.heal([step[1]], force=True)
        elif op == "reboot":
            # Non-forced heal: the restored node goes through the rejoin
            # handshake (WAL replay, fencing, delta catch-up) — the
            # durable-restart counterpart of the silent "restore".
            if step[1] in net.nodes:
                file.failures.heal([step[1]])
        elif op == "advance":
            net.advance(float(step[1]))
        else:
            raise ValueError(f"unknown scenario step {op!r}")
    except OperationFailed:
        pass  # the recorder already marked the op ambiguous
    except Exception as err:  # noqa: BLE001 - shrunk scenarios may be hostile
        # A shrunk scenario can strip the restore that made a crash
        # survivable; the run must stay evaluable (the verdict over the
        # recorded history is still meaningful), so step-level wreckage
        # is noted, not raised.
        errors.append(f"{op}: {err!r}")


def run_scenario(
    scenario: Scenario,
    mutant: str | None = None,
    keep_file: bool = False,
    trace_capacity: int | None = 512,
) -> RunResult:
    """Build a fresh cluster, run the scenario, check the history."""
    from repro.core.config import LHRSConfig
    from repro.core.file import LHRSFile
    from repro.obs.trace import Tracer
    from repro.sim.faults import FaultPlane

    with mutants.enabled(mutant):
        config = LHRSConfig(**{**DEFAULT_CONFIG, **scenario.config})
        file = LHRSFile(config)
        net = file.network
        tracer = Tracer(capacity=trace_capacity)
        net.install_tracer(tracer)
        plane = FaultPlane(
            rng=np.random.default_rng(
                [scenario.seed & 0xFFFFFFFF, 0xFA173]
            )
        )
        for rule in scenario.fault_rules:
            plane.add_rule(**_decode_rule(rule))
        net.install_fault_plane(plane)
        net.install_scheduler(build_scheduler(scenario.scheduler))

        recorder = HistoryRecorder()
        file.client.recorder = recorder
        errors: list[str] = []
        # Prefill is recorded too: the checker's model starts empty, so
        # every value a later search may observe must be in the history.
        for key in range(scenario.prefill):
            _apply_step(file, ["insert", key, f"p{key}"], errors)
        for step in scenario.ops:
            _apply_step(file, step, errors)
        if scenario.settle > 0:
            net.advance(float(scenario.settle))

        verdict = check_history(recorder.records)
        return RunResult(
            ok=verdict.ok,
            verdict=verdict,
            scenario=scenario,
            history=list(recorder.records),
            tracer=tracer,
            errors=errors,
            file=file if keep_file else None,
        )


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------
def default_fault_rules(
    mutation_rate: float = 0.02,
    reply_delay: float = 0.25,
    delay_window: float = 4.0,
) -> list[dict]:
    """The chaos-envelope fault script (see module docstring)."""
    return [
        {
            "kinds": list(MUTATION_KINDS),
            "drop": mutation_rate,
            "fail": 1.5 * mutation_rate,
            "duplicate": mutation_rate,
        },
        {
            "kinds": list(REPLY_KINDS),
            "delay": reply_delay,
            "delay_window": delay_window,
        },
    ]


def make_workload(
    seed: int,
    ops: int = 120,
    keys: int = 24,
    prefill: int = 16,
    crash: bool = True,
    crash_rate: float = 0.05,
    batches: bool = True,
    scheduler: str | dict | None = "pct",
    label: str = "",
    reboot: bool = False,
    config: dict | None = None,
) -> Scenario:
    """A mixed insert/update/delete/search (+kill) scenario.

    One crash window at a time, victims drawn from group 0's data and
    parity buckets (all of which exist from n0 = 4 regardless of file
    growth), restored a handful of steps later — staying within the
    k = 2 survivable envelope while exercising degraded reads, bucket
    rebuilds and Δ-parity recovery against the checker.

    With ``reboot=True`` the restore steps become durable restarts
    (``["reboot", node]``): the node crashes its simulated disk, replays
    WAL + checkpoint and rejoins through the fenced delta-catch-up
    handshake — pass ``config={"durability": True}`` alongside.
    """
    rng = np.random.default_rng([seed & 0xFFFFFFFF, 0x307AD])
    victims = [f"f.d{b}" for b in range(4)] + ["f.p0.0", "f.p0.1"]
    revive = "reboot" if reboot else "restore"
    steps: list = []
    crashed: str | None = None
    restore_at = -1
    serial = 0
    for i in range(ops):
        if crashed is not None and i >= restore_at:
            steps.append([revive, crashed])
            crashed = None
        elif crashed is None and crash and float(rng.random()) < crash_rate:
            crashed = victims[int(rng.integers(len(victims)))]
            restore_at = i + 4 + int(rng.integers(8))
            steps.append(["crash", crashed])
        draw = float(rng.random())
        key = int(rng.integers(keys))
        serial += 1
        value = f"v{serial}-{key}"
        if draw < 0.28:
            steps.append(["insert", key, value])
        elif draw < 0.50:
            steps.append(["update", key, value])
        elif draw < 0.62:
            steps.append(["delete", key])
        elif draw < 0.94 or not batches:
            steps.append(["search", key])
        else:
            kind = ("insert", "update", "delete", "search")[
                int(rng.integers(4))
            ]
            count = 2 + int(rng.integers(4))
            picked = [int(rng.integers(keys)) for _ in range(count)]
            if kind in ("insert", "update"):
                items = [[k, f"b{serial}-{j}-{k}"]
                         for j, k in enumerate(picked)]
            else:
                items = picked
            steps.append(["batch", kind, items])
        if float(rng.random()) < 0.05:
            steps.append(["advance", round(1.0 + 2.0 * float(rng.random()), 2)])
    if crashed is not None:
        steps.append([revive, crashed])
    if isinstance(scheduler, str):
        scheduler_spec: dict | None = {"mode": scheduler, "seed": seed}
        if scheduler == "none":
            scheduler_spec = None
    else:
        scheduler_spec = scheduler
    return Scenario(
        seed=seed,
        ops=steps,
        fault_rules=default_fault_rules(),
        scheduler=scheduler_spec,
        config=dict(config or {}),
        prefill=prefill,
        label=label or f"workload-{seed}",
    )


# ----------------------------------------------------------------------
# counterexamples
# ----------------------------------------------------------------------
@dataclass
class Counterexample:
    """A minimal failing scenario plus the evidence, JSON round-trip."""

    scenario: dict
    failure: dict
    history: list[dict]
    trace_tail: list[str]
    mutant: str | None = None

    @classmethod
    def from_result(
        cls, result: RunResult, mutant: str | None = None,
        tail: int = 60,
    ) -> "Counterexample":
        return cls(
            scenario=result.scenario.to_dict(),
            failure={
                "failed_keys": result.verdict.failed_keys,
                "reason": result.verdict.describe(),
                "errors": result.errors,
            },
            history=[record.to_dict() for record in result.history],
            trace_tail=[repr(e) for e in result.tracer.tail(tail)],
            mutant=mutant,
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(
                {
                    "scenario": self.scenario,
                    "failure": self.failure,
                    "history": self.history,
                    "trace_tail": self.trace_tail,
                    "mutant": self.mutant,
                },
                handle,
                indent=2,
            )

    @classmethod
    def load(cls, path: str) -> "Counterexample":
        with open(path) as handle:
            data = json.load(handle)
        return cls(
            scenario=data["scenario"],
            failure=data.get("failure", {}),
            history=data.get("history", []),
            trace_tail=data.get("trace_tail", []),
            mutant=data.get("mutant"),
        )

    def replay(self, mutant: str | None = None) -> RunResult:
        """Re-run the stored scenario (deterministic: same verdict)."""
        return run_scenario(
            Scenario.from_dict(self.scenario),
            mutant=mutant if mutant is not None else self.mutant,
        )
