"""Wing–Gong linearizability checking with memoized state hashing.

Given a history of invoke/response intervals (:mod:`repro.check.history`)
and a sequential model (:mod:`repro.check.model`), decide whether some
total order of the operations (a) respects real time — an operation
never linearizes before another that *completed* before it was invoked —
and (b) is legal for the model, with every completed search seeing
exactly what it returned.  Pending (ambiguous) operations are free
radicals: the search may linearize them anywhere after their invocation
or drop them entirely, the two fates of a timed-out request.

The search is the classic Wing–Gong worklist: repeatedly pick a
*minimal* remaining operation (none still-remaining completed op
finished before its invocation), apply it to the model, recurse, and
backtrack on dead ends.  Two standard refinements keep it tractable:

* **Memoized state hashing** — a ``(remaining-ops, model-state)`` pair
  fully determines feasibility of the rest of the search, so each pair
  is explored once (the Lowe/Horn–Kroening optimization).
* **P-composition** — :func:`check_history` partitions the history per
  key and checks each sub-history against the single-key register
  model.  Sound for dictionaries: operations on distinct keys commute
  in any sequential witness, so the conjunction of per-key verdicts
  equals the whole-history verdict (pinned by a property test against
  :class:`~repro.check.model.DictModel`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.check.history import OpRecord
from repro.check.model import INCOMPATIBLE, DictModel, KeyModel


class SearchBudgetExceeded(RuntimeError):
    """The checker gave up before deciding (state budget exhausted)."""


@dataclass
class KeyVerdict:
    """Outcome of checking one (sub-)history."""

    ok: bool
    key: int | None = None
    decided: bool = True
    reason: str = ""
    #: a legal total order (op_ids) when ok; pending ops that never
    #: linearized are simply absent from it
    witness: list[int] = field(default_factory=list)
    #: the completed ops no extension could place, when not ok
    stuck: list[OpRecord] = field(default_factory=list)
    states_explored: int = 0


@dataclass
class Verdict:
    """Aggregate verdict over a whole history."""

    ok: bool
    failures: list[KeyVerdict] = field(default_factory=list)
    checked_ops: int = 0
    keys_checked: int = 0
    states_explored: int = 0

    @property
    def failed_keys(self) -> list[int]:
        return [v.key for v in self.failures if v.key is not None]

    def describe(self) -> str:
        if self.ok:
            return (
                f"linearizable: {self.checked_ops} ops over "
                f"{self.keys_checked} keys "
                f"({self.states_explored} states explored)"
            )
        lines = [
            f"NOT linearizable: {len(self.failures)} key(s) failed "
            f"of {self.keys_checked}"
        ]
        for verdict in self.failures:
            ops = ", ".join(
                f"#{op.op_id} {op.kind}({op.key})={op.status}"
                + (f"->{op.result!r}" if op.kind == "search" else "")
                for op in verdict.stuck[:6]
            )
            lines.append(
                f"  key {verdict.key}: {verdict.reason} [stuck: {ops}]"
            )
        return "\n".join(lines)


def linearize(
    ops: list[OpRecord],
    model=KeyModel,
    max_states: int = 500_000,
) -> KeyVerdict:
    """Check one history against one sequential model."""
    ordered = sorted(ops, key=lambda o: o.invoke)
    n = len(ordered)
    if n == 0:
        return KeyVerdict(ok=True)

    seen: set[tuple[frozenset, object]] = set()
    explored = 0
    # Fewest remaining completed ops any branch reached, for diagnostics.
    best_stuck: list[int] = [i for i in range(n) if ordered[i].completed]

    limit = sys.getrecursionlimit()
    if n + 200 > limit:
        sys.setrecursionlimit(n + 400)

    def search(remaining: frozenset, state) -> list[int] | None:
        nonlocal explored, best_stuck
        mark = (remaining, state)
        if mark in seen:
            return None
        seen.add(mark)
        explored += 1
        if explored > max_states:
            raise SearchBudgetExceeded(
                f"gave up after {max_states} states over {n} ops"
            )
        completed_left = [i for i in remaining if ordered[i].completed]
        if not completed_left:
            return []  # pending leftovers may linger forever
        if len(completed_left) < len(best_stuck):
            best_stuck = completed_left
        min_resp = min(ordered[i].response for i in completed_left)
        for i in sorted(remaining):
            op = ordered[i]
            # Minimality: an op already invoked after another remaining
            # op *completed* cannot linearize ahead of it.
            if op.invoke > min_resp:
                continue
            nxt = model.apply(state, op)
            if nxt is INCOMPATIBLE:
                continue
            tail = search(remaining - {i}, nxt)
            if tail is not None:
                return [op.op_id] + tail
        return None

    try:
        witness = search(frozenset(range(n)), model.initial)
    except SearchBudgetExceeded as err:
        return KeyVerdict(
            ok=False, decided=False, reason=str(err),
            states_explored=explored,
        )
    finally:
        if sys.getrecursionlimit() != limit:
            sys.setrecursionlimit(limit)
    if witness is not None:
        return KeyVerdict(ok=True, witness=witness, states_explored=explored)
    return KeyVerdict(
        ok=False,
        reason="no legal sequential witness",
        stuck=[ordered[i] for i in best_stuck],
        states_explored=explored,
    )


def check_history(
    records: list[OpRecord],
    per_key: bool = True,
    max_states: int = 500_000,
) -> Verdict:
    """Check a full history; per-key decomposition by default.

    ``per_key=False`` runs the whole history against the dictionary
    model in one search — exponentially heavier, only sensible for the
    small cases the equivalence property test exercises.
    """
    checked = sum(1 for r in records if r.completed)
    if not per_key:
        verdict = linearize(records, DictModel, max_states=max_states)
        keys = len({r.key for r in records})
        return Verdict(
            ok=verdict.ok,
            failures=[] if verdict.ok else [verdict],
            checked_ops=checked,
            keys_checked=keys,
            states_explored=verdict.states_explored,
        )
    keyed: dict[int, list[OpRecord]] = {}
    for record in records:
        keyed.setdefault(record.key, []).append(record)
    failures = []
    states = 0
    for key in sorted(keyed):
        verdict = linearize(keyed[key], KeyModel, max_states=max_states)
        verdict.key = key
        states += verdict.states_explored
        if not verdict.ok:
            failures.append(verdict)
    return Verdict(
        ok=not failures,
        failures=failures,
        checked_ops=checked,
        keys_checked=len(keyed),
        states_explored=states,
    )
