"""Pluggable delivery schedulers for systematic schedule exploration.

The simulated network delivers matured delayed messages in
``Network._pump`` — historically in a fixed order (globally by maturity
time, FIFO per channel).  A :class:`Scheduler` installed via
``Network.install_scheduler`` intercepts each matured batch and decides
the actual delivery order, which is exactly the degree of freedom a
real asynchronous network has and the fixed order hides:

* :class:`FifoScheduler` — returns the batch untouched.  Installing it
  is byte-for-byte identical to no scheduler at all (the determinism
  pin guards this), so the hook costs the legacy behaviour nothing.
* :class:`PCTScheduler` — PCT-style randomized priorities adapted to
  channels: every (sender, recipient) channel draws a random priority,
  matured batches deliver channel-by-channel in priority order, and
  channels are occasionally *deferred* wholesale (re-held a little
  longer) or re-prioritized, perturbing both delivery order and how
  deliveries interleave with fault windows.  Seeded and deterministic:
  one seed ⇒ one schedule, the property replay and shrinking rest on.
* :class:`DFSScheduler` — a replayable choice sequence over per-batch
  channel interleavings; :func:`explore` drives it through a bounded
  depth-first enumeration of the whole schedule tree for small
  scenarios (stateless search: each prefix re-runs the scenario).

All schedulers preserve per-channel FIFO order — the TCP guarantee the
fault plane maintains and the Δ-parity sequencing assumes.  A channel
with still-held (unmatured) traffic is never deferred, since its
deferred messages would otherwise re-queue *behind* later ones.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.messages import Message


class Scheduler:
    """Delivery-order policy for matured delayed messages."""

    name = "scheduler"

    def bind(self, network) -> None:
        """Called by ``Network.install_scheduler``."""
        self.network = network

    def schedule(self, due: list[Message], network) -> list[Message]:
        """Return the batch in delivery order (may re-hold messages on
        the fault plane and return fewer)."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-able spec that :func:`build_scheduler` round-trips."""
        return {"mode": self.name}


class FifoScheduler(Scheduler):
    """The legacy order, explicitly: maturity order, FIFO per channel."""

    name = "fifo"

    def schedule(self, due: list[Message], network) -> list[Message]:
        return due


def _by_channel(due: list[Message]) -> dict[tuple[str, str], list[Message]]:
    """Group a batch per channel, preserving order (insertion order of
    the dict is first-maturity order — deterministic)."""
    groups: dict[tuple[str, str], list[Message]] = {}
    for message in due:
        groups.setdefault((message.sender, message.recipient), []).append(
            message
        )
    return groups


class PCTScheduler(Scheduler):
    """Seeded random-priority (PCT-style) schedule perturbation."""

    name = "pct"

    def __init__(
        self,
        seed: int = 0,
        defer_probability: float = 0.15,
        defer_window: float = 3.0,
        reshuffle_probability: float = 0.1,
    ):
        if not 0.0 <= defer_probability < 1.0:
            raise ValueError("defer_probability must be in [0, 1)")
        self.seed = seed
        self.defer_probability = defer_probability
        self.defer_window = defer_window
        self.reshuffle_probability = reshuffle_probability
        # Keyed stream: independent of any other consumer of the seed.
        self.rng = np.random.default_rng([seed & 0xFFFFFFFF, 0x5C4ED])
        self._priorities: dict[tuple[str, str], float] = {}
        self.deferrals = 0
        self.reorderings = 0

    def describe(self) -> dict:
        return {
            "mode": "pct",
            "seed": self.seed,
            "defer_probability": self.defer_probability,
            "defer_window": self.defer_window,
            "reshuffle_probability": self.reshuffle_probability,
        }

    def schedule(self, due: list[Message], network) -> list[Message]:
        groups = _by_channel(due)
        plane = network.fault_plane
        tracer = network.tracer
        deliver: list[tuple[str, str]] = []
        for channel, messages in groups.items():
            # Defer a whole channel batch: re-held messages mature a
            # little later, landing in a different interleaving (and a
            # different fault-rule window).  Only when the channel has
            # no unmatured traffic — re-queuing behind it would break
            # per-channel FIFO.
            if (
                plane is not None
                and plane.held_count(*channel) == 0
                and float(self.rng.random()) < self.defer_probability
            ):
                delay = 1.0 + float(self.rng.random()) * self.defer_window
                for message in messages:
                    plane.requeue(message, network.now + delay)
                self.deferrals += 1
                if tracer is not None:
                    tracer.emit(
                        "sched.defer",
                        to=channel[1],
                        kind=messages[0].kind,
                        count=len(messages),
                    )
                continue
            deliver.append(channel)
        for channel in deliver:
            if channel not in self._priorities:
                self._priorities[channel] = float(self.rng.random())
        if deliver and float(self.rng.random()) < self.reshuffle_probability:
            # A PCT "change point": one channel's priority is re-drawn,
            # moving it across the others for the rest of the run.
            victim = deliver[int(self.rng.integers(len(deliver)))]
            self._priorities[victim] = float(self.rng.random())
        ranked = sorted(
            deliver, key=lambda channel: (self._priorities[channel], channel)
        )
        out = [m for channel in ranked for m in groups[channel]]
        if ranked != deliver:  # deliver keeps the incoming channel order
            self.reorderings += 1
            if tracer is not None:
                tracer.emit("sched.reorder", batch=len(out))
        return out


class DFSScheduler(Scheduler):
    """Replayable per-batch channel interleaving from a choice list.

    Each scheduling decision picks which live channel delivers next;
    the first ``len(choices)`` decisions follow ``choices``, the rest
    default to 0 (first channel).  ``decisions`` records every
    ``(chosen, alternatives)`` pair, which :func:`explore` expands into
    unexplored siblings.
    """

    name = "dfs"

    def __init__(self, choices=()):  # noqa: D401
        self.choices = list(choices)
        self.decisions: list[tuple[int, int]] = []
        self._cursor = 0

    def describe(self) -> dict:
        return {"mode": "dfs", "choices": [c for c, _ in self.decisions]}

    def schedule(self, due: list[Message], network) -> list[Message]:
        groups = {
            channel: deque(messages)
            for channel, messages in _by_channel(due).items()
        }
        channels = list(groups)
        out: list[Message] = []
        while True:
            live = [channel for channel in channels if groups[channel]]
            if not live:
                return out
            if len(live) == 1:
                out.append(groups[live[0]].popleft())
                continue
            if self._cursor < len(self.choices):
                pick = self.choices[self._cursor] % len(live)
            else:
                pick = 0
            self._cursor += 1
            self.decisions.append((pick, len(live)))
            out.append(groups[live[pick]].popleft())


class ExplorationResult:
    """Outcome of one bounded-DFS exploration."""

    def __init__(self, failure, runs: int, complete: bool,
                 schedule: list[int] | None = None):
        self.failure = failure  # the failing run's result (None = clean)
        self.runs = runs
        self.complete = complete  # True = the whole tree was enumerated
        self.schedule = schedule  # replayable choice list of the failure

    @property
    def ok(self) -> bool:
        return self.failure is None


def explore(run, max_runs: int = 256, max_decisions: int = 64) -> ExplorationResult:
    """Bounded depth-first enumeration of the schedule choice tree.

    ``run(scheduler)`` must execute the scenario fresh under the given
    :class:`DFSScheduler` and return an object with a truthy ``ok``
    (or a plain bool).  The search is stateless — every prefix replays
    the scenario from scratch, which the deterministic simulator makes
    exact.  Returns on the first failing schedule, or after the tree
    (bounded by ``max_runs`` runs and ``max_decisions`` decision depth)
    is exhausted.
    """
    stack: list[tuple[int, ...]] = [()]
    runs = 0
    complete = True
    while stack:
        if runs >= max_runs:
            complete = False
            break
        prefix = stack.pop()
        scheduler = DFSScheduler(prefix)
        result = run(scheduler)
        runs += 1
        ok = result.ok if hasattr(result, "ok") else bool(result)
        if not ok:
            schedule = [c for c, _ in scheduler.decisions]
            return ExplorationResult(
                result, runs, complete=False, schedule=schedule
            )
        decisions = scheduler.decisions
        if len(decisions) > max_decisions:
            complete = False
            decisions = decisions[:max_decisions]
        taken = [c for c, _ in decisions]
        # Expand alternatives beyond the forced prefix, deepest last so
        # the stack pops depth-first.
        for i in range(len(prefix), len(decisions)):
            chosen, alternatives = decisions[i]
            for alt in range(1, alternatives):
                stack.append(
                    tuple(taken[:i]) + ((chosen + alt) % alternatives,)
                )
    return ExplorationResult(None, runs, complete)


def build_scheduler(spec: dict | None) -> Scheduler | None:
    """Instantiate a scheduler from its JSON spec (None / mode "none"
    = no scheduler: the legacy pump order)."""
    if spec is None:
        return None
    mode = spec.get("mode", "none")
    if mode == "none":
        return None
    if mode == "fifo":
        return FifoScheduler()
    if mode == "pct":
        return PCTScheduler(
            seed=int(spec.get("seed", 0)),
            defer_probability=float(spec.get("defer_probability", 0.15)),
            defer_window=float(spec.get("defer_window", 3.0)),
            reshuffle_probability=float(
                spec.get("reshuffle_probability", 0.1)
            ),
        )
    if mode == "dfs":
        return DFSScheduler(spec.get("choices", ()))
    raise ValueError(f"unknown scheduler mode {spec.get('mode')!r}")
