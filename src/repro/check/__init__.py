"""repro.check — model-checking harness for the LH*RS simulator.

Four parts (see docs/testing.md):

* history recording (:mod:`repro.check.history`) off the instrumented
  clients (``client.recorder``),
* a sequential reference model plus a per-key Wing–Gong
  linearizability checker (:mod:`repro.check.model`,
  :mod:`repro.check.linearize`),
* pluggable delivery schedulers for the network pump
  (:mod:`repro.check.scheduler`): FIFO (byte-identical to none),
  seeded PCT-style perturbation, bounded-DFS exploration,
* scenario running and delta-debugging shrinking
  (:mod:`repro.check.harness`, :mod:`repro.check.shrink`).

Exports are lazy (PEP 562): product modules import
``repro.check.mutants`` for their validation-mutant hooks, and an eager
re-export here would drag the whole harness — and a circular import of
``repro.core`` — into every product import.
"""

from __future__ import annotations

_EXPORTS = {
    "mutants": ("repro.check.mutants", None),
    "OpRecord": ("repro.check.history", "OpRecord"),
    "HistoryRecorder": ("repro.check.history", "HistoryRecorder"),
    "ABSENT": ("repro.check.model", "ABSENT"),
    "KeyModel": ("repro.check.model", "KeyModel"),
    "DictModel": ("repro.check.model", "DictModel"),
    "KeyVerdict": ("repro.check.linearize", "KeyVerdict"),
    "Verdict": ("repro.check.linearize", "Verdict"),
    "linearize": ("repro.check.linearize", "linearize"),
    "check_history": ("repro.check.linearize", "check_history"),
    "Scheduler": ("repro.check.scheduler", "Scheduler"),
    "FifoScheduler": ("repro.check.scheduler", "FifoScheduler"),
    "PCTScheduler": ("repro.check.scheduler", "PCTScheduler"),
    "DFSScheduler": ("repro.check.scheduler", "DFSScheduler"),
    "explore": ("repro.check.scheduler", "explore"),
    "build_scheduler": ("repro.check.scheduler", "build_scheduler"),
    "Scenario": ("repro.check.harness", "Scenario"),
    "RunResult": ("repro.check.harness", "RunResult"),
    "run_scenario": ("repro.check.harness", "run_scenario"),
    "make_workload": ("repro.check.harness", "make_workload"),
    "default_fault_rules": ("repro.check.harness", "default_fault_rules"),
    "Counterexample": ("repro.check.harness", "Counterexample"),
    "ddmin": ("repro.check.shrink", "ddmin"),
    "shrink_scenario": ("repro.check.shrink", "shrink_scenario"),
    "ShrinkStats": ("repro.check.shrink", "ShrinkStats"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.check' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value  # cache for the next lookup
    return value


def __dir__():
    return __all__
