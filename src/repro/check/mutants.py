"""Validation mutants: deliberately-broken variants behind a test flag.

A model checker that has never caught a bug proves nothing — the
classic trap of verification tooling that silently verifies vacuously.
This module is the antidote: three seeded bugs, each a *plausible*
LH*RS implementation error in a path the linearizability harness is
supposed to police, each off unless a test switches it on:

``stale_degraded_read``
    The coordinator's record-recovery path caches the first value it
    reconstructs per key and serves the cached copy forever after — a
    memoization "optimization" that returns stale data once the record
    is updated between two degraded reads.

``drop_parity_seq``
    The data bucket silently drops every second ``update`` Δ-parity
    record *and rolls its sequence counter back*, so the parity channel
    never sees a gap (the self-reporting ``report.stale`` machinery
    stays blind).  Parity decodes to a stale value after the next
    bucket loss.

``double_apply_delete``
    The parity bucket folds a ``delete`` Δ twice.  GF(2) folding is
    self-inverse, so the second fold re-adds the deleted payload into
    the parity symbols — corrupting every later reconstruction of the
    record group's surviving members.

The hooks live in the product code (``core/recovery.py``,
``core/data_bucket.py``, ``core/parity_bucket.py``) as a single
``name in mutants.ACTIVE`` membership test — one set lookup against an
(almost always empty) set, so production runs pay nothing measurable.
This module imports nothing from ``repro.core``; the dependency points
one way only.
"""

from __future__ import annotations

from contextlib import contextmanager

#: The registered mutant names; enabling anything else is a test bug.
MUTANT_NAMES = frozenset(
    {"stale_degraded_read", "drop_parity_seq", "double_apply_delete"}
)

#: Currently-enabled mutants.  Product hooks test membership directly
#: (``"..." in mutants.ACTIVE``) — cheap enough for hot paths.
ACTIVE: set[str] = set()


def enable(name: str) -> None:
    """Switch one mutant on (until :func:`disable` / :func:`disable_all`)."""
    if name not in MUTANT_NAMES:
        raise ValueError(
            f"unknown mutant {name!r}; registered: {sorted(MUTANT_NAMES)}"
        )
    ACTIVE.add(name)


def disable(name: str) -> None:
    """Switch one mutant off (no-op when it was off)."""
    ACTIVE.discard(name)


def disable_all() -> None:
    """Switch every mutant off (test teardown)."""
    ACTIVE.clear()


def is_active(name: str) -> bool:
    return name in ACTIVE


@contextmanager
def enabled(name: str | None):
    """Scope one mutant to a ``with`` block (None = no mutant, so call
    sites can pass an optional name through unconditionally)."""
    if name is None:
        yield
        return
    enable(name)
    try:
        yield
    finally:
        disable(name)
