"""Sequential reference models of an LH*RS file.

The file's *observable* contract — what any linearizable execution must
look like to clients — is a plain dictionary: ``insert`` and ``update``
are both upserts (the bucket falls through to the other on a key
mismatch, pinned by the data-server tests), ``delete`` is idempotent,
``search`` returns the current mapping.  Splits, merges, availability
raises, degraded reads and bucket recoveries are all *internal*: a
correct implementation keeps them invisible, which is exactly what the
checker verifies by never modelling them.

Two interchangeable models feed the Wing–Gong checker:

* :class:`KeyModel` — a single key's register (state: a value or
  :data:`ABSENT`).  The per-key decomposition is sound because a
  dictionary is *P-compositional*: operations on distinct keys commute
  in every sequential witness, so a history is linearizable iff each
  per-key sub-history is (Herlihy & Wing locality, applied per key).
* :class:`DictModel` — the whole key→value map.  Exponentially more
  expensive (its states don't collapse per key), kept for small
  histories and for the property test pinning that both models agree.

States are immutable and hashable — the checker memoizes on
``(remaining-ops, state)`` pairs.
"""

from __future__ import annotations

from typing import Any

from repro.check.history import OpRecord


class _Absent:
    """Sentinel: the key holds no record (distinct from value None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ABSENT"


ABSENT = _Absent()

#: Sentinel returned by ``apply`` when the recorded outcome is
#: impossible from the given state (the search saw something else).
INCOMPATIBLE = object()


class KeyModel:
    """Sequential register semantics for one key."""

    initial: Any = ABSENT

    @staticmethod
    def apply(state: Any, op: OpRecord) -> Any:
        """Next state after ``op``, or :data:`INCOMPATIBLE`.

        Mutations always apply (insert/update are upserts, delete is
        idempotent); only a completed ``search`` constrains the
        placement, by demanding the state it observed.
        """
        kind = op.kind
        if kind in ("insert", "update"):
            return op.value
        if kind == "delete":
            return ABSENT
        # search: the recorded outcome must match the current state
        if op.status == "found":
            if state is ABSENT or state != op.result:
                return INCOMPATIBLE
        elif op.status == "not_found":
            if state is not ABSENT:
                return INCOMPATIBLE
        return state


class DictModel:
    """Sequential dictionary semantics for the whole file.

    State is a sorted tuple of ``(key, value)`` pairs — immutable and
    hashable, cheap enough for the ≤ ~8-op histories this model is
    meant for.
    """

    initial: tuple = ()

    @staticmethod
    def apply(state: tuple, op: OpRecord) -> Any:
        kind = op.kind
        key = op.key
        if kind in ("insert", "update"):
            items = tuple(
                (k, v) for k, v in state if k != key
            ) + ((key, op.value),)
            return tuple(sorted(items, key=lambda kv: kv[0]))
        if kind == "delete":
            return tuple((k, v) for k, v in state if k != key)
        current = ABSENT
        for k, v in state:
            if k == key:
                current = v
                break
        if op.status == "found":
            if current is ABSENT or current != op.result:
                return INCOMPATIBLE
        elif op.status == "not_found":
            if current is not ABSENT:
                return INCOMPATIBLE
        return state
