"""Operation histories: invoke/response intervals for the checker.

A :class:`HistoryRecorder` hangs off a client (``client.recorder``) and
records every public operation as an interval on a private monotone
tick counter: ``invoke`` when the call enters the client, ``response``
when it returns with a definite outcome.  An operation that raises
:class:`~repro.sdds.client.OperationFailed` — the at-least-once timeout
case — stays **pending**: its interval is ``[invoke, ∞)`` and the
linearizability checker may place it anywhere after its invocation *or
nowhere at all*, exactly the two fates a timed-out mutation can have
(the ``op.ack`` may have been sent and lost, or the request dropped).

Ticks are the recorder's own counter, not the simulated clock: the
simulator's synchronous depth-first delivery means a client call
returns only after every consequence ran, so distinct completed
operations on one client never overlap — which the per-tick counter
encodes for free — while pending operations still overlap everything
after them.  Batched ``*_many`` calls invoke all their operations up
front (the scatter plane interleaves their effects), so ops inside one
batch genuinely overlap each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: op.status values a completed operation can carry
COMPLETED_STATUSES = frozenset({"ok", "found", "not_found"})


@dataclass
class OpRecord:
    """One recorded operation interval.

    ``status`` is ``"pending"`` (ambiguous — invoked, never definitely
    completed), ``"ok"`` (mutation confirmed), or ``"found"`` /
    ``"not_found"`` (search, with ``result`` the returned value).
    """

    op_id: int
    client: str
    kind: str  # insert | update | delete | search
    key: int
    value: Any = None  # payload of a mutation (None for delete/search)
    invoke: int = 0
    response: int | None = None
    status: str = "pending"
    result: Any = None  # value a search returned

    @property
    def completed(self) -> bool:
        return self.status in COMPLETED_STATUSES

    def to_dict(self) -> dict:
        """JSON-friendly form (bytes → latin-1 strings, flagged)."""
        out = {
            "op_id": self.op_id,
            "client": self.client,
            "kind": self.kind,
            "key": self.key,
            "invoke": self.invoke,
            "response": self.response,
            "status": self.status,
        }
        for name in ("value", "result"):
            raw = getattr(self, name)
            if isinstance(raw, bytes):
                out[name] = raw.decode("latin-1")
                out[f"{name}_bytes"] = True
            else:
                out[name] = raw
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "OpRecord":
        kwargs = {
            k: data.get(k)
            for k in (
                "op_id", "client", "kind", "key", "value",
                "invoke", "response", "status", "result",
            )
        }
        for name in ("value", "result"):
            if data.get(f"{name}_bytes") and kwargs[name] is not None:
                kwargs[name] = kwargs[name].encode("latin-1")
        return cls(**kwargs)


@dataclass
class HistoryRecorder:
    """Collects :class:`OpRecord` intervals from instrumented clients."""

    records: list[OpRecord] = field(default_factory=list)
    _tick: int = 0
    ambiguous_ops: int = 0

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    # ------------------------------------------------------------------
    def invoke(self, client: str, kind: str, key: int,
               value: Any = None) -> OpRecord:
        """Open one operation interval; returns the record to close."""
        record = OpRecord(
            op_id=len(self.records) + 1,
            client=client,
            kind=kind,
            key=key,
            value=value,
            invoke=self._next_tick(),
        )
        self.records.append(record)
        return record

    def complete(self, record: OpRecord, status: str,
                 result: Any = None) -> None:
        """Close an interval with a definite outcome."""
        if status not in COMPLETED_STATUSES:
            raise ValueError(f"not a completion status: {status!r}")
        record.response = self._next_tick()
        record.status = status
        record.result = result

    def ambiguous(self, record: OpRecord) -> None:
        """Leave an interval open: the op may or may not have applied."""
        self.ambiguous_ops += 1
        # status stays "pending", response stays None — the open interval

    # ------------------------------------------------------------------
    @property
    def completed_ops(self) -> int:
        return sum(1 for r in self.records if r.completed)

    def by_key(self) -> dict[int, list[OpRecord]]:
        """Partition the history by key (P-composition: a dictionary is
        linearizable iff each per-key sub-history is)."""
        keyed: dict[int, list[OpRecord]] = {}
        for record in self.records:
            keyed.setdefault(record.key, []).append(record)
        return keyed

    def to_dicts(self) -> list[dict]:
        return [record.to_dict() for record in self.records]
