"""Delta-debugging counterexample shrinking.

A failing scenario straight out of the workload generator carries a
hundred-odd steps, most of them irrelevant.  :func:`shrink_scenario`
reduces it with the classic ddmin loop — remove chunks, keep a removal
whenever the scenario *still fails*, refine the granularity — applied
in passes over the pieces of the (seed, schedule, fault-script) triple:

1. try downgrading the scheduler to plain FIFO (a counterexample that
   survives without schedule perturbation is strictly easier to read),
2. ddmin the workload steps,
3. ddmin the fault rules,
4. halve the prefill while the failure persists,
5. one final steps pass (earlier removals often unlock more).

Every probe is a full deterministic re-run, so the result is exact:
whatever ddmin returns *does* fail, and replaying the dumped
counterexample reproduces the verdict bit-for-bit.  The budget caps the
number of re-runs, not wall time; a typical mutant counterexample
shrinks from ~100 steps to well under 10 in a few dozen runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.check.harness import RunResult, Scenario, run_scenario


@dataclass
class ShrinkStats:
    """Accounting for one shrink session."""

    runs: int = 0
    budget: int = 400
    initial_steps: int = 0
    final_steps: int = 0

    @property
    def exhausted(self) -> bool:
        return self.runs >= self.budget


def ddmin(
    items: list,
    still_fails: Callable[[list], bool],
    stats: ShrinkStats,
) -> list:
    """Zeller–Hildebrandt ddmin: a 1-minimal failing subsequence.

    ``still_fails(subset)`` must be pure (deterministic re-run).  The
    input is assumed failing; returns a subset that still fails and
    from which no *single* chunk at final granularity can be removed.
    """
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        start = 0
        while start < len(items):
            if stats.exhausted:
                return items
            candidate = items[:start] + items[start + chunk:]
            stats.runs += 1
            if still_fails(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    if len(items) == 1 and not stats.exhausted:
        stats.runs += 1
        if still_fails([]):
            return []
    return items


def shrink_scenario(
    scenario: Scenario,
    mutant: str | None = None,
    budget: int = 400,
    fails: Callable[[Scenario], bool] | None = None,
) -> tuple[Scenario, ShrinkStats]:
    """Reduce a failing scenario to a minimal one that still fails.

    ``fails`` defaults to "run_scenario reports a linearizability
    violation"; tests may inject cheaper predicates.  The input
    scenario must fail — raises ``ValueError`` otherwise (a shrinker
    fed a passing scenario would 'minimize' it to nothing and report
    success, the worst possible silent failure).
    """
    stats = ShrinkStats(budget=budget, initial_steps=len(scenario.ops))

    if fails is None:
        def fails(candidate: Scenario) -> bool:
            return not run_scenario(candidate, mutant=mutant).ok

    stats.runs += 1
    if not fails(scenario):
        raise ValueError("shrink_scenario needs a failing scenario")

    # Pass 1: drop the schedule perturbation if the bug survives it.
    if scenario.scheduler is not None and not stats.exhausted:
        candidate = replace(scenario, scheduler=None)
        stats.runs += 1
        if fails(candidate):
            scenario = candidate

    # Pass 2: the workload steps.
    def steps_fail(steps: list) -> bool:
        return fails(replace(scenario, ops=list(steps)))

    scenario = replace(
        scenario, ops=ddmin(list(scenario.ops), steps_fail, stats)
    )

    # Pass 3: the fault script.
    if scenario.fault_rules and not stats.exhausted:
        def rules_fail(rules: list) -> bool:
            return fails(replace(scenario, fault_rules=list(rules)))

        scenario = replace(
            scenario,
            fault_rules=ddmin(list(scenario.fault_rules), rules_fail, stats),
        )

    # Pass 4: halve the prefill while the failure persists.
    while scenario.prefill > 0 and not stats.exhausted:
        candidate = replace(scenario, prefill=scenario.prefill // 2)
        stats.runs += 1
        if not fails(candidate):
            break
        scenario = candidate

    # Pass 5: one more steps pass — smaller context often unlocks more.
    if not stats.exhausted:
        scenario = replace(
            scenario, ops=ddmin(list(scenario.ops), steps_fail, stats)
        )

    stats.final_steps = len(scenario.ops)
    return scenario, stats


def shrink_result(
    result: RunResult,
    mutant: str | None = None,
    budget: int = 400,
) -> tuple[Scenario, ShrinkStats]:
    """Convenience: shrink straight from a failing :class:`RunResult`."""
    return shrink_scenario(result.scenario, mutant=mutant, budget=budget)
