"""LH*RS — a high-availability scalable distributed data structure using
Reed-Solomon codes (SIGMOD 2000), reproduced as a Python library.

Quick start::

    from repro import LHRSConfig, LHRSFile

    file = LHRSFile(LHRSConfig(group_size=4, availability=2))
    file.insert(42, b"hello")
    assert file.search(42).value == b"hello"
    file.fail_data_bucket(0); file.fail_data_bucket(1)
    file.search(...)   # served via RS record recovery + bucket rebuild

Package map (bottom-up):

* ``repro.gf``        — GF(2^w) arithmetic (log/antilog tables, matrices)
* ``repro.rs``        — the (m+k, m) systematic RS erasure codec
* ``repro.lh``        — linear-hashing addressing math (A1/A2/A3, splits)
* ``repro.sim``       — message-counting multicomputer simulator
* ``repro.sdds``      — the LH* scalable distributed data structure
* ``repro.core``      — **LH*RS** (the paper's contribution)
* ``repro.baselines`` — LH*, LH*m mirroring, LH*s striping, LH*g grouping
* ``repro.workloads`` — key/payload/operation generators, failure traces
"""

from repro.core import (
    AvailabilityPolicy,
    LHRSConfig,
    LHRSFile,
    RecoveryError,
    file_availability,
)
from repro.gf import GF
from repro.rs import RSCodec
from repro.sdds import LHStarFile

__version__ = "1.0.0"

__all__ = [
    "LHRSFile",
    "LHRSConfig",
    "AvailabilityPolicy",
    "RecoveryError",
    "RSCodec",
    "file_availability",
    "GF",
    "LHStarFile",
    "__version__",
]
