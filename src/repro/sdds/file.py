"""Facade assembling a complete LH* file on a simulated network.

``LHStarFile`` wires up the network, coordinator, initial buckets and a
default client, and offers direct-call conveniences for tests, examples
and benchmarks.  Inspection helpers (load factor, record census) read
server state directly — they are free oracle access for measurement, not
protocol messages.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sdds.client import BatchOutcome, Client, ScanResult, SearchOutcome
from repro.sdds.coordinator import Coordinator, SplitPolicy
from repro.sdds.server import DataServer
from repro.sim.network import Network
from repro.sim.stats import MessageStats


class LHStarFile:
    """A running LH* file plus its default client."""

    coordinator_class = Coordinator
    client_class = Client

    def __init__(
        self,
        file_id: str = "f",
        capacity: int = 32,
        n0: int = 1,
        policy: SplitPolicy | None = None,
        network: Network | None = None,
        **coordinator_kwargs: Any,
    ):
        self.file_id = file_id
        self.network = network or Network()
        self._coordinator_id = f"{file_id}.coord"
        coordinator = self.coordinator_class(
            node_id=self._coordinator_id,
            file_id=file_id,
            capacity=capacity,
            n0=n0,
            policy=policy,
            **coordinator_kwargs,
        )
        self.network.register(coordinator)
        coordinator.bootstrap()
        self._clients: list[Client] = []
        self.client = self.new_client()

    @property
    def coordinator(self) -> Coordinator:
        """The *current* coordinator node.

        Resolved through the network registry on every access: after a
        standby takeover a different object serves under the same node
        id, and the facade (and everything layered on it) must follow.
        """
        return self.network.nodes[self._coordinator_id]

    # ------------------------------------------------------------------
    def _client_kwargs(self) -> dict[str, Any]:
        """Extra keyword arguments for new clients (subclass hook —
        LH*RS passes its retry policy and ack mode)."""
        return {}

    def new_client(self) -> Client:
        """Attach a fresh client (worst-case image n'=i'=0)."""
        client = self.client_class(
            node_id=f"{self.file_id}.client{len(self._clients)}",
            file_id=self.file_id,
            n0=self.coordinator.state.n0,
            **self._client_kwargs(),
        )
        self.network.register(client)
        self._clients.append(client)
        return client

    # ------------------------------------------------------------------
    # operations through the default client
    # ------------------------------------------------------------------
    def insert(self, key: int, value: Any) -> None:
        self.client.insert(key, value)

    def search(self, key: int) -> SearchOutcome:
        return self.client.search(key)

    def update(self, key: int, value: Any) -> None:
        self.client.update(key, value)

    def delete(self, key: int) -> None:
        self.client.delete(key)

    def scan(self, predicate: Callable[[int, Any], bool] | None = None,
             deterministic: bool = True) -> ScanResult:
        return self.client.scan(predicate, deterministic)

    def insert_many(self, items) -> BatchOutcome:
        return self.client.insert_many(items)

    def update_many(self, items) -> BatchOutcome:
        return self.client.update_many(items)

    def delete_many(self, keys) -> BatchOutcome:
        return self.client.delete_many(keys)

    def search_many(self, keys) -> BatchOutcome:
        return self.client.search_many(keys)

    # ------------------------------------------------------------------
    # oracle inspection (not messages)
    # ------------------------------------------------------------------
    @property
    def stats(self) -> MessageStats:
        return self.network.stats

    def data_servers(self) -> list[DataServer]:
        """All data-bucket servers, in bucket order."""
        return [
            self.network.nodes[f"{self.file_id}.d{m}"]
            for m in range(self.coordinator.state.bucket_count)
        ]

    @property
    def bucket_count(self) -> int:
        return self.coordinator.state.bucket_count

    def total_records(self) -> int:
        return sum(len(s.bucket) for s in self.data_servers())

    def load_factor(self) -> float:
        """Occupancy over allocated capacity, the papers' storage metric."""
        servers = self.data_servers()
        return sum(len(s.bucket) for s in servers) / (
            sum(s.bucket.capacity for s in servers) or 1
        )

    def census(self) -> dict[int, dict[int, Any]]:
        """Snapshot {bucket -> {key -> value}} for equality checks."""
        return {
            s.number: dict(s.bucket.records) for s in self.data_servers()
        }

    def find_bucket_of(self, key: int) -> int:
        """True address of a key (oracle; uses the real file state)."""
        return self.coordinator.state.address(key)
