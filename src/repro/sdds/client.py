"""The LH* client: key operations and scans from a private image.

Clients never see the true file state.  They address with their image
(A1), servers fix misdirected requests (A2), and IAMs pull the image
forward (A3).  Because simulator delivery is synchronous, a client method
returns after every consequence of its request — forwards, IAM, reply —
has been delivered, so results can be read from the client's buffers.
"""

from __future__ import annotations

import numbers
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.lh import addressing
from repro.lh.image import ClientImage
from repro.obs.metrics import BATCH_SIZE_BUCKETS
from repro.sim.faults import RetryPolicy
from repro.sim.messages import HEADER_BYTES, Message, estimate_size
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode
from repro.sim.node import Node


class OperationFailed(RuntimeError):
    """A client operation exhausted its retry budget without confirmation.

    Raised only after the full escalation ladder ran dry: every attempt
    either hit a transient delivery fault or (with write acks) went
    unacknowledged past the backoff window.  The operation may or may
    not have taken effect — exactly the at-least-once uncertainty a real
    client faces on timeout.
    """

    def __init__(self, kind: str, key: int, attempts: int):
        super().__init__(
            f"{kind} of key {key} unconfirmed after {attempts} attempts"
        )
        self.kind = kind
        self.key = key
        self.attempts = attempts


@dataclass
class SearchOutcome:
    """Result of one key search."""

    key: int
    found: bool
    value: Any = None


@dataclass
class OpOutcome:
    """Per-key result of one operation inside a batch.

    ``status`` is ``"ok"`` (mutation applied), ``"found"`` /
    ``"not_found"`` (search), or ``"failed"`` (the retry ladder ran dry
    — the batch call surfaces this per key instead of raising).
    """

    key: int
    status: str
    value: Any = None
    error: str | None = None


@dataclass
class BatchOutcome:
    """Gathered result of one ``*_many`` call.

    ``outcomes[i]`` corresponds to the i-th submitted operation.
    ``applied_order`` lists operation indices in the order their effects
    were confirmed at the buckets — the replay order an oracle must use
    to reproduce the batch scalar-sequentially (sub-batches apply in
    call order; ops within a sub-batch in submission order; re-binned
    and fallback ops later).  ``messages`` counts batch-plane messages
    (one request + one reply per successful ``ops.batch`` call);
    fallback scalar traffic is visible in the network's MessageStats.
    """

    outcomes: list["OpOutcome | None"]
    applied_order: list[int] = field(default_factory=list)
    batched_ops: int = 0
    scalar_ops: int = 0
    messages: int = 0

    @property
    def ok(self) -> bool:
        return all(o is not None and o.status != "failed"
                   for o in self.outcomes)

    @property
    def failed_keys(self) -> list[int]:
        return [o.key for o in self.outcomes
                if o is not None and o.status == "failed"]


@dataclass
class ScanResult:
    """Result of one scan (parallel non-key search)."""

    records: list[tuple[int, Any]]
    complete: bool
    buckets_heard: int
    expected_buckets: int | None = None
    missing: list[int] = field(default_factory=list)


class Client(Node):
    """An application's access point to one LH* file."""

    #: bounded image-convergence rounds for a scattered batch before the
    #: leftovers fall back to the scalar per-op path (A2 forwarding there
    #: guarantees completion regardless of image staleness)
    _BATCH_ROUNDS = 8

    def __init__(
        self,
        node_id: str,
        file_id: str,
        n0: int = 1,
        retry: RetryPolicy | None = None,
        ack_writes: bool = False,
        coord_replicas: int = 0,
        batch_ops: bool = False,
        batch_max_ops: int = 256,
    ):
        super().__init__(node_id)
        self.file_id = file_id
        self.image = ClientImage(n0=n0)
        #: bulk scatter-gather plane: off ⇒ ``*_many`` degrade to the
        #: scalar per-op loop with byte-identical message traces
        self.batch_ops = batch_ops
        self.batch_max_ops = batch_max_ops
        #: how many standby coordinator replicas exist (the whois pull
        #: path walks <file>.coord.r1 .. .rN when the primary is dark)
        self.coord_replicas = coord_replicas
        self._results: dict[int, dict] = {}
        self._scan_replies: dict[int, list[dict]] = {}
        self._request_counter = 0
        self.last_error: dict | None = None
        #: retry/backoff discipline against transient faults (None = one
        #: attempt, the papers' fault-free behaviour)
        self.retry = retry
        #: tag mutations for server acknowledgement and retry unacked ones
        self.ack_writes = ack_writes
        self._acks: set[int] = set()
        #: stable per-sender salt decorrelating jittered backoff (see
        #: RetryPolicy.delay; inert on the default no-jitter path)
        self._retry_salt = zlib.crc32(node_id.encode())
        #: model-checking history recorder (repro.check; None = off).
        #: Public entry points record invoke/response intervals; an
        #: OperationFailed leaves the interval open — the ambiguous,
        #: may-or-may-not-have-applied case the checker must model.
        self.recorder = None
        self._recorder_pause = 0

    def _active_recorder(self):
        """The recorder, unless recording is off or suspended (batch
        internals re-enter the scalar ops they already recorded)."""
        if self.recorder is not None and not self._recorder_pause:
            return self.recorder
        return None

    # ------------------------------------------------------------------
    def _data_node(self, m: int) -> str:
        return f"{self.file_id}.d{m}"

    def _next_request(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _send_op(self, kind: str, payload: dict) -> None:
        """Address by image; fall back to the coordinator when needed.

        A3 images can point slightly past the real file: the node the
        client addresses then does not carry the bucket (in a deployment
        it is a hot spare or repurposed server).  Per the protocol, the
        request is resent to the coordinator, which delivers it from the
        true file state; the accepting server sends an IAM.  The same
        fallback serves when the addressed server is unavailable —
        subclasses decide what else to do then (LH*RS starts recovery).
        """
        key = payload["key"]
        self._validate_key(key)
        target = self._data_node(self.image.address(key))
        try:
            self.send(target, kind, payload)
        except UnknownNode:
            self._route_via_coordinator(kind, payload)
        except NodeUnavailable as failure:
            self.on_unavailable(kind, payload, failure)

    @staticmethod
    def _validate_key(key: Any) -> None:
        if (
            not isinstance(key, numbers.Integral)
            or isinstance(key, bool)
            or key < 0
        ):
            raise ValueError(
                f"keys are non-negative integers (linear hashing domain); "
                f"got {key!r}"
            )

    def _route_via_coordinator(self, kind: str, payload: dict) -> None:
        routed = dict(payload)
        # Mark as forwarded so the acceptor sends a corrective IAM.
        routed["hops"] = routed.get("hops", 0) + 1
        self._coord_send("route", {"kind": kind, "op": routed})

    # ------------------------------------------------------------------
    # coordinator failover
    # ------------------------------------------------------------------
    def _coord_send(self, kind: str, payload: dict) -> None:
        """Send to the coordinator, failing over to a standby if dark.

        The coordinator *identity* is stable — a promoted standby
        re-registers under ``<file>.coord`` — so failover is not a
        re-address but a wait-for-succession: ask the standbys who the
        primary is (``coord.whois``), back off for the remaining lease
        when told to, and resend once one vouches for a live primary.
        """
        coord_id = f"{self.file_id}.coord"
        try:
            self.send(coord_id, kind, payload)
            return
        except (NodeUnavailable, UnknownNode):
            if not self._failover_coordinator():
                raise
        self.send(coord_id, kind, payload)

    def _failover_coordinator(self) -> bool:
        """Drive the whois pull path; True once a live primary answers.

        Bounded: each standby is asked at most a handful of times, and a
        ``retry_after`` answer advances the clock by the remaining lease
        — which is exactly what lets the standby's own lease monitor
        fire and perform the takeover.
        """
        if not self.coord_replicas:
            return False
        network = self._net()
        coord_id = f"{self.file_id}.coord"
        standbys = [
            f"{coord_id}.r{j}" for j in range(1, self.coord_replicas + 1)
        ]
        for _ in range(4 * len(standbys)):
            if network.is_available(coord_id):
                return True
            for standby_id in standbys:
                try:
                    reply = self.call(standby_id, "coord.whois")
                except (NodeUnavailable, UnknownNode, DeliveryFault):
                    continue
                if reply.get("ready"):
                    return True
                retry_after = reply.get("retry_after")
                if retry_after is not None:
                    # Sit out the remaining lease; the advance runs the
                    # standbys' lease monitors, so by the time it
                    # returns one of them has usually promoted.
                    network.advance(float(retry_after) + 0.5)
                    break
        return network.is_available(coord_id)

    def on_unavailable(self, kind: str, payload: dict,
                       failure: NodeUnavailable) -> None:
        """Hook: the addressed bucket's server is down.  Plain LH* has no
        recovery — surface the failure.  LH*RS overrides this."""
        raise failure

    # ------------------------------------------------------------------
    # incoming
    # ------------------------------------------------------------------
    def handle_iam(self, message: Message) -> None:
        self.image.adjust(message.payload["j"], message.payload["a"])

    def handle_iam_state(self, message: Message) -> None:
        """Authoritative image correction from the coordinator.

        Sent with routed deliveries; unlike server IAMs (A3, which never
        regress an image) this may shrink the image — the case after the
        file has merged buckets away beneath a stale image.
        """
        self.image.n = message.payload["n"]
        self.image.i = message.payload["i"]
        self.image.adjustments += 1

    def handle_search_result(self, message: Message) -> None:
        self._results[message.payload["request"]] = message.payload

    def handle_op_error(self, message: Message) -> None:
        self.last_error = message.payload

    def handle_op_ack(self, message: Message) -> None:
        self._acks.add(message.payload["token"])

    def handle_scan_reply(self, message: Message) -> None:
        bucket_list = self._scan_replies.get(message.payload["scan"])
        if bucket_list is not None:
            bucket_list.append(message.payload)

    # ------------------------------------------------------------------
    # key operations
    # ------------------------------------------------------------------
    def _wait(self, attempt: int) -> None:
        """Back off after a failed attempt (advances the simulated clock,
        which matures delayed messages and lets crash windows pass)."""
        delay = (
            self.retry.delay(attempt, self._retry_salt) if self.retry else 1.0
        )
        self._net().advance(delay)

    def _note_retry(self, kind: str, key: int, attempt: int) -> None:
        """Observability hook: one more attempt is about to run."""
        net = self.network
        if net is None:
            return
        if net.tracer is not None:
            net.tracer.emit("op.retry", op=kind, key=key, attempt=attempt + 1)
        if net.metrics is not None:
            net.metrics.counter(
                "retry.attempts", "client+parity retransmissions"
            ).inc()

    def _note_failed(self, kind: str, key: int, attempts: int) -> None:
        """Observability hook: the retry ladder ran dry."""
        net = self.network
        if net is not None and net.tracer is not None:
            net.tracer.emit("op.failed", op=kind, key=key, attempts=attempts)

    def _mutate(self, kind: str, payload: dict) -> None:
        """Record the interval around :meth:`_mutate_inner` (no-op
        without a recorder installed)."""
        recorder = self._active_recorder()
        if recorder is None:
            return self._mutate_inner(kind, payload)
        entry = recorder.invoke(
            self.node_id, kind, payload["key"], payload.get("value")
        )
        try:
            self._mutate_inner(kind, payload)
        except OperationFailed:
            recorder.ambiguous(entry)
            raise
        recorder.complete(entry, "ok")

    def _mutate_inner(self, kind: str, payload: dict) -> None:
        """One mutation under the retry/ack discipline.

        Without acks a clean send is trusted (a silently dropped message
        is invisible to any sender); transient faults are retried.  With
        acks the accepting server confirms, so drops anywhere along the
        path are caught too, and the operation only returns once the ack
        arrived — or raises :class:`OperationFailed` after the budget.
        Retries are safe: re-applying a mutation with the same value is
        value-idempotent at the bucket, and its Δ-records are deduped by
        sequence number at the parity sites.
        """
        token = None
        if self.ack_writes:
            token = self._next_request()
            payload = dict(payload, ack=token)
        attempts = self.retry.attempts if self.retry else 1
        for attempt in range(attempts):
            delivered = True
            try:
                self._send_op(kind, dict(payload))
            except DeliveryFault:
                delivered = False
            if token is None:
                if delivered:
                    return
            elif token in self._acks:
                self._acks.discard(token)
                return
            if attempt + 1 < attempts:
                self._note_retry(kind, payload["key"], attempt)
                self._wait(attempt)
                if token is not None and token in self._acks:
                    self._acks.discard(token)
                    return
        self._note_failed(kind, payload["key"], attempts)
        raise OperationFailed(kind, payload["key"], attempts)

    def insert(self, key: int, value: Any) -> None:
        """Insert a record; fire-and-forget as in the papers (1 message
        in the typical no-forwarding case)."""
        self._mutate("insert", {"key": key, "value": value, "client": self.node_id})

    def update(self, key: int, value: Any) -> None:
        """Update (upsert) the non-key data of a record."""
        self._mutate("update", {"key": key, "value": value, "client": self.node_id})

    def delete(self, key: int) -> None:
        """Delete a record (idempotent)."""
        self._mutate("delete", {"key": key, "client": self.node_id})

    def search(self, key: int) -> SearchOutcome:
        """Key search: request + record back (2 messages when the image
        is accurate; at most 4 plus one IAM otherwise).

        Recording (``self.recorder``) brackets :meth:`_search_impl`,
        which subclasses override — the hedged/degraded LH*RS read
        machinery included, so the recorded outcome is the one the
        application saw, whichever path served it.
        """
        recorder = self._active_recorder()
        if recorder is None:
            return self._search_impl(key)
        entry = recorder.invoke(self.node_id, "search", key)
        try:
            outcome = self._search_impl(key)
        except OperationFailed:
            recorder.ambiguous(entry)
            raise
        recorder.complete(
            entry,
            "found" if outcome.found else "not_found",
            outcome.value,
        )
        return outcome

    def _search_impl(self, key: int) -> SearchOutcome:
        """The actual search ladder; see :meth:`search`.

        Under a retry policy an unanswered search — its request or reply
        lost — is retried after a backoff; one request id spans the
        attempts, so a late reply maturing during the backoff satisfies
        the search.
        """
        request = self._next_request()
        payload = {"key": key, "client": self.node_id, "request": request}
        attempts = self.retry.attempts if self.retry else 1
        for attempt in range(attempts):
            try:
                self._send_op("search", dict(payload))
            except DeliveryFault:
                pass
            reply = self._results.pop(request, None)
            if reply is None and attempt + 1 < attempts:
                self._note_retry("search", key, attempt)
                self._wait(attempt)
                reply = self._results.pop(request, None)
            if reply is not None:
                return SearchOutcome(
                    key=key, found=reply["found"], value=reply["value"]
                )
        self._note_failed("search", key, attempts)
        raise OperationFailed("search", key, attempts)

    # ------------------------------------------------------------------
    # batched key operations (bulk scatter-gather plane)
    # ------------------------------------------------------------------
    def insert_many(self, items) -> BatchOutcome:
        """Insert many records; one ``ops.batch`` message per addressed
        bucket instead of one message per record."""
        return self._run_many(
            "insert",
            [{"op": "insert", "key": k, "value": v} for k, v in items],
        )

    def update_many(self, items) -> BatchOutcome:
        """Update (upsert) many records, batched like :meth:`insert_many`."""
        return self._run_many(
            "update",
            [{"op": "update", "key": k, "value": v} for k, v in items],
        )

    def delete_many(self, keys) -> BatchOutcome:
        """Delete many records, batched like :meth:`insert_many`."""
        return self._run_many(
            "delete", [{"op": "delete", "key": k} for k in keys]
        )

    def search_many(self, keys) -> BatchOutcome:
        """Search many keys; outcomes carry found/not_found and values."""
        return self._run_many(
            "search", [{"op": "search", "key": k} for k in keys]
        )

    def _run_many(self, kind: str, ops: list[dict]) -> BatchOutcome:
        """Record the batch, then run it (no-op without a recorder).

        Every op's interval opens *before* the batch executes and stays
        open across it — ops inside one batch genuinely overlap, and
        the scatter plane may apply them in any order.  Recording is
        suspended for the duration so the scalar fallback path does not
        double-record; outcomes close the intervals afterwards, with a
        ``failed``/missing outcome left pending (ambiguous): its
        sub-batch may have applied server-side before the reply or ack
        was lost.
        """
        recorder = self._active_recorder()
        if recorder is None:
            return self._run_many_inner(kind, ops)
        for op in ops:
            self._validate_key(op["key"])
        entries = [
            recorder.invoke(
                self.node_id, op["op"], op["key"], op.get("value")
            )
            for op in ops
        ]
        self._recorder_pause += 1
        try:
            outcome = self._run_many_inner(kind, ops)
        finally:
            self._recorder_pause -= 1
        for entry, op_outcome in zip(entries, outcome.outcomes):
            if op_outcome is None or op_outcome.status == "failed":
                recorder.ambiguous(entry)
            elif op_outcome.status in ("found", "not_found"):
                recorder.complete(
                    entry, op_outcome.status, op_outcome.value
                )
            else:
                recorder.complete(entry, "ok")
        return outcome

    def _run_many_inner(self, kind: str, ops: list[dict]) -> BatchOutcome:
        """Scatter ``ops`` by the image, gather per-key outcomes.

        With batching off (or a singleton batch) this is exactly the
        scalar loop — same calls, same messages, byte-identical traces.
        Batched: bin by image address into one ``ops.batch`` call per
        target bucket (chunked at ``batch_max_ops``), adjust the image
        once per sub-batch reply, re-bin refused ("moved") ops for up to
        ``_BATCH_ROUNDS`` rounds, and run whatever remains — plus any
        sub-batch whose bucket stayed unreachable — through the scalar
        per-op path, which handles coordinator routing and recovery.
        """
        for op in ops:
            self._validate_key(op["key"])
        outcome = BatchOutcome(outcomes=[None] * len(ops))
        if not self.batch_ops or len(ops) <= 1:
            for idx, op in enumerate(ops):
                self._scalar_op(kind, op, idx, outcome)
            return outcome
        pending: list[int] = []
        fallback: list[int] = []
        for idx, op in enumerate(ops):
            (fallback if self._batch_route_scalar(kind, op)
             else pending).append(idx)
        # Per-op wire size, computed once for the whole run: servers
        # never mutate client op dicts, so every round and retry reuses
        # the same objects, and each ops.batch message is sized
        # arithmetically instead of walking its payload.  A mutation op
        # sizes to its key strings ("op"+"key"+"value" = 10) plus the
        # kind, an 8-byte key and the value; key-only ops drop the
        # "value" term.  Non-bytes values fall back to the estimator.
        base = 13 + len(kind)
        op_sizes = [
            base + (0 if "value" not in op
                    else 5 + len(op["value"])
                    if type(op["value"]) is bytes
                    else estimate_size(op) - base)
            for op in ops
        ]
        # idx -> (refusing bucket, its A2 forward address): applied when
        # the image still points at the bucket that just said "moved".
        hints: dict[int, tuple[int, int]] = {}
        for round_no in range(self._BATCH_ROUNDS):
            if not pending:
                break
            pending, unreachable = self._scatter_round(
                kind, ops, op_sizes, pending, hints, outcome, round_no
            )
            fallback.extend(unreachable)
        fallback.extend(pending)
        if fallback:
            self._trace("batch.fallback", op=kind, ops=len(fallback))
            for idx in sorted(set(fallback)):
                self._scalar_op(kind, ops[idx], idx, outcome)
        net = self.network
        if net is not None and net.metrics is not None:
            net.metrics.counter(
                "batch.ops", "operations submitted via *_many"
            ).inc(len(ops))
            if outcome.batched_ops:
                net.metrics.gauge(
                    "batch.msgs_per_op",
                    "batch-plane messages per batched op (last batch)",
                ).set(outcome.messages / outcome.batched_ops)
        return outcome

    def _scatter_round(
        self,
        kind: str,
        ops: list[dict],
        op_sizes: list[int],
        pending: list[int],
        hints: dict[int, tuple[int, int]],
        outcome: BatchOutcome,
        round_no: int,
    ) -> tuple[list[int], list[int]]:
        """One scatter round; returns (re-binned, unreachable) indices."""
        bins: dict[int, list[int]] = {}
        for idx in pending:
            a = self.image.address(ops[idx]["key"])
            hint = hints.get(idx)
            if hint is not None and hint[0] == a:
                # The image did not move past the refusing bucket; take
                # its A2 forward address instead of knocking again.
                a = hint[1]
            bins.setdefault(a, []).append(idx)
        self._trace(
            "batch.scatter", op=kind, round=round_no,
            ops=len(pending), buckets=len(bins),
        )
        rebin: list[int] = []
        unreachable: list[int] = []
        net = self.network
        for bucket in sorted(bins):
            indices = bins[bucket]
            for start in range(0, len(indices), self.batch_max_ops):
                chunk = indices[start:start + self.batch_max_ops]
                if net is not None and net.metrics is not None:
                    net.metrics.histogram(
                        "batch.size", BATCH_SIZE_BUCKETS,
                        "ops per scattered ops.batch message",
                    ).observe(len(chunk))
                reply = self._call_batch(
                    bucket, kind, ops, op_sizes, chunk, outcome
                )
                if reply is None:
                    unreachable.extend(chunk)
                    continue
                self.image.adjust(reply["j"], reply["a"])
                moved_here = 0
                for idx, res in zip(chunk, reply["results"]):
                    if type(res) is str:
                        # Lean reply form: a bare status string, emitted
                        # by the server's vectorized runs ("applied").
                        hints.pop(idx, None)
                        outcome.outcomes[idx] = OpOutcome(
                            ops[idx]["key"], "ok"
                        )
                        outcome.applied_order.append(idx)
                        outcome.batched_ops += 1
                        continue
                    status = res["status"]
                    if status == "moved":
                        hints[idx] = (bucket, res["to"])
                        rebin.append(idx)
                        moved_here += 1
                        continue
                    hints.pop(idx, None)
                    key = ops[idx]["key"]
                    if status in ("found", "not_found"):
                        outcome.outcomes[idx] = OpOutcome(
                            key, status, value=res.get("value")
                        )
                    else:  # applied
                        outcome.outcomes[idx] = OpOutcome(
                            key, "ok", error=res.get("error")
                        )
                    outcome.applied_order.append(idx)
                    outcome.batched_ops += 1
                if moved_here:
                    self._trace(
                        "batch.rebin", op=kind, bucket=bucket,
                        ops=moved_here, round=round_no,
                    )
        return rebin, unreachable

    def _call_batch(
        self,
        bucket: int,
        kind: str,
        ops: list[dict],
        op_sizes: list[int],
        chunk: list[int],
        outcome: BatchOutcome,
    ) -> dict | None:
        """One ``ops.batch`` call under the retry/backoff discipline.

        Returns the reply, or None when the bucket is unreachable (the
        caller falls back to the scalar path, whose coordinator routing
        and recovery hooks always complete).  ``NodeBusy`` shedding is a
        ``DeliveryFault`` and lands on the backoff ladder like any other
        transient fault.
        """
        target = self._data_node(bucket)
        payload = {
            "ops": [ops[i] for i in chunk],
            "client": self.node_id,
        }
        # Arithmetic wire size of the payload dict: its two key strings
        # ("ops" + "client" = 9 bytes), the client id, and the op dicts
        # (sized once in _run_many).  Must equal HEADER_BYTES +
        # estimate_size(payload) — pinned by a regression test.
        size = (HEADER_BYTES + 9 + len(self.node_id)
                + sum(op_sizes[i] for i in chunk))
        attempts = self.retry.attempts if self.retry else 1
        for attempt in range(attempts):
            try:
                reply = self.call(target, "ops.batch", dict(payload),
                                  size=size)
            except UnknownNode:
                return None
            except NodeUnavailable as failure:
                if not self._batch_unavailable(kind, ops[chunk[0]], failure):
                    return None
                reply = None
            except DeliveryFault:
                reply = None
            if reply is not None:
                outcome.messages += 2
                return reply
            if attempt + 1 < attempts:
                self._note_retry("ops.batch", ops[chunk[0]]["key"], attempt)
                self._wait(attempt)
        return None

    def _batch_unavailable(self, kind: str, op: dict,
                           failure: NodeUnavailable) -> bool:
        """Hook: a batch target's server is down.  Return True to retry
        the sub-batch (something recovered it), False to fall back to
        the scalar path.  Plain LH* has no recovery — fall back, where
        :meth:`on_unavailable` surfaces the failure scalar-style."""
        return False

    def _batch_route_scalar(self, kind: str, op: dict) -> bool:
        """Hook: route this op through the scalar path from the start
        (LH*RS sends open-breaker searches to the hedged/degraded
        machinery).  Default: batch everything."""
        return False

    def _scalar_op(self, kind: str, op: dict, idx: int,
                   outcome: BatchOutcome) -> None:
        """Run one op through the exact scalar call path, recording the
        per-key outcome instead of raising :class:`OperationFailed`."""
        key = op["key"]
        try:
            if kind == "search":
                res = self.search(key)
                outcome.outcomes[idx] = OpOutcome(
                    key, "found" if res.found else "not_found",
                    value=res.value,
                )
            else:
                if kind == "insert":
                    self.insert(key, op["value"])
                elif kind == "update":
                    self.update(key, op["value"])
                else:
                    self.delete(key)
                outcome.outcomes[idx] = OpOutcome(key, "ok")
            outcome.applied_order.append(idx)
            outcome.scalar_ops += 1
        except OperationFailed as exc:
            outcome.outcomes[idx] = OpOutcome(key, "failed", error=str(exc))
            outcome.scalar_ops += 1

    def _trace(self, event: str, **attrs: Any) -> None:
        net = self.network
        if net is not None and net.tracer is not None:
            net.tracer.emit(event, **attrs)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan(
        self,
        predicate: Callable[[int, Any], bool] | None = None,
        deterministic: bool = True,
    ) -> ScanResult:
        """Parallel search of every bucket for records matching
        ``predicate`` (None selects everything).

        With ``deterministic=True`` every bucket replies (address and
        level included) and the client verifies it heard the whole file —
        the termination protocol the recovery algorithms rely on.  With
        ``deterministic=False`` only buckets holding matches reply
        (probabilistic termination: cheaper, no completeness proof).
        """
        scan_id = self._next_request()
        self._scan_replies[scan_id] = []
        payload = {
            "scan": scan_id,
            "client": self.node_id,
            "predicate": predicate,
            "deterministic": deterministic,
            "image": (self.image.n, self.image.i),
        }
        targets = [
            self._data_node(m) for m in range(self.image.bucket_count_estimate)
        ]
        _, unavailable = self._net().multicast(
            self.node_id, targets, "scan", payload, collect_replies=False
        )
        replies = self._scan_replies.pop(scan_id)
        records = [tuple(match) for r in replies for match in r["matches"]]

        if not deterministic:
            return ScanResult(
                records=records, complete=True, buckets_heard=len(replies)
            )

        heard = {r["bucket"]: r["level"] for r in replies}
        expected = self._expected_bucket_count(heard)
        missing = (
            sorted(set(range(expected)) - set(heard)) if expected else []
        )
        complete = bool(heard) and expected is not None and not missing
        return ScanResult(
            records=records,
            complete=complete,
            buckets_heard=len(heard),
            expected_buckets=expected,
            missing=missing,
        )

    def _expected_bucket_count(self, heard: dict[int, int]) -> int | None:
        """The paper's deterministic-termination bucket count M = n + 2^i N.

        i is the minimum level heard and n the smallest bucket at that
        level (the split pointer); with any reply missing the derived M
        exposes the gap.
        """
        if not heard:
            return None
        i = min(heard.values())
        n = min(m for m, j in heard.items() if j == i)
        return addressing.file_extent(n, i, self.image.n0)
