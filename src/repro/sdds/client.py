"""The LH* client: key operations and scans from a private image.

Clients never see the true file state.  They address with their image
(A1), servers fix misdirected requests (A2), and IAMs pull the image
forward (A3).  Because simulator delivery is synchronous, a client method
returns after every consequence of its request — forwards, IAM, reply —
has been delivered, so results can be read from the client's buffers.
"""

from __future__ import annotations

import numbers
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.lh.image import ClientImage
from repro.sim.faults import RetryPolicy
from repro.sim.messages import Message
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode
from repro.sim.node import Node


class OperationFailed(RuntimeError):
    """A client operation exhausted its retry budget without confirmation.

    Raised only after the full escalation ladder ran dry: every attempt
    either hit a transient delivery fault or (with write acks) went
    unacknowledged past the backoff window.  The operation may or may
    not have taken effect — exactly the at-least-once uncertainty a real
    client faces on timeout.
    """

    def __init__(self, kind: str, key: int, attempts: int):
        super().__init__(
            f"{kind} of key {key} unconfirmed after {attempts} attempts"
        )
        self.kind = kind
        self.key = key
        self.attempts = attempts


@dataclass
class SearchOutcome:
    """Result of one key search."""

    key: int
    found: bool
    value: Any = None


@dataclass
class ScanResult:
    """Result of one scan (parallel non-key search)."""

    records: list[tuple[int, Any]]
    complete: bool
    buckets_heard: int
    expected_buckets: int | None = None
    missing: list[int] = field(default_factory=list)


class Client(Node):
    """An application's access point to one LH* file."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        n0: int = 1,
        retry: RetryPolicy | None = None,
        ack_writes: bool = False,
        coord_replicas: int = 0,
    ):
        super().__init__(node_id)
        self.file_id = file_id
        self.image = ClientImage(n0=n0)
        #: how many standby coordinator replicas exist (the whois pull
        #: path walks <file>.coord.r1 .. .rN when the primary is dark)
        self.coord_replicas = coord_replicas
        self._results: dict[int, dict] = {}
        self._scan_replies: dict[int, list[dict]] = {}
        self._request_counter = 0
        self.last_error: dict | None = None
        #: retry/backoff discipline against transient faults (None = one
        #: attempt, the papers' fault-free behaviour)
        self.retry = retry
        #: tag mutations for server acknowledgement and retry unacked ones
        self.ack_writes = ack_writes
        self._acks: set[int] = set()
        #: stable per-sender salt decorrelating jittered backoff (see
        #: RetryPolicy.delay; inert on the default no-jitter path)
        self._retry_salt = zlib.crc32(node_id.encode())

    # ------------------------------------------------------------------
    def _data_node(self, m: int) -> str:
        return f"{self.file_id}.d{m}"

    def _next_request(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _send_op(self, kind: str, payload: dict) -> None:
        """Address by image; fall back to the coordinator when needed.

        A3 images can point slightly past the real file: the node the
        client addresses then does not carry the bucket (in a deployment
        it is a hot spare or repurposed server).  Per the protocol, the
        request is resent to the coordinator, which delivers it from the
        true file state; the accepting server sends an IAM.  The same
        fallback serves when the addressed server is unavailable —
        subclasses decide what else to do then (LH*RS starts recovery).
        """
        key = payload["key"]
        if (
            not isinstance(key, numbers.Integral)
            or isinstance(key, bool)
            or key < 0
        ):
            raise ValueError(
                f"keys are non-negative integers (linear hashing domain); "
                f"got {key!r}"
            )
        target = self._data_node(self.image.address(key))
        try:
            self.send(target, kind, payload)
        except UnknownNode:
            self._route_via_coordinator(kind, payload)
        except NodeUnavailable as failure:
            self.on_unavailable(kind, payload, failure)

    def _route_via_coordinator(self, kind: str, payload: dict) -> None:
        routed = dict(payload)
        # Mark as forwarded so the acceptor sends a corrective IAM.
        routed["hops"] = routed.get("hops", 0) + 1
        self._coord_send("route", {"kind": kind, "op": routed})

    # ------------------------------------------------------------------
    # coordinator failover
    # ------------------------------------------------------------------
    def _coord_send(self, kind: str, payload: dict) -> None:
        """Send to the coordinator, failing over to a standby if dark.

        The coordinator *identity* is stable — a promoted standby
        re-registers under ``<file>.coord`` — so failover is not a
        re-address but a wait-for-succession: ask the standbys who the
        primary is (``coord.whois``), back off for the remaining lease
        when told to, and resend once one vouches for a live primary.
        """
        coord_id = f"{self.file_id}.coord"
        try:
            self.send(coord_id, kind, payload)
            return
        except (NodeUnavailable, UnknownNode):
            if not self._failover_coordinator():
                raise
        self.send(coord_id, kind, payload)

    def _failover_coordinator(self) -> bool:
        """Drive the whois pull path; True once a live primary answers.

        Bounded: each standby is asked at most a handful of times, and a
        ``retry_after`` answer advances the clock by the remaining lease
        — which is exactly what lets the standby's own lease monitor
        fire and perform the takeover.
        """
        if not self.coord_replicas:
            return False
        network = self._net()
        coord_id = f"{self.file_id}.coord"
        standbys = [
            f"{coord_id}.r{j}" for j in range(1, self.coord_replicas + 1)
        ]
        for _ in range(4 * len(standbys)):
            if network.is_available(coord_id):
                return True
            for standby_id in standbys:
                try:
                    reply = self.call(standby_id, "coord.whois")
                except (NodeUnavailable, UnknownNode, DeliveryFault):
                    continue
                if reply.get("ready"):
                    return True
                retry_after = reply.get("retry_after")
                if retry_after is not None:
                    # Sit out the remaining lease; the advance runs the
                    # standbys' lease monitors, so by the time it
                    # returns one of them has usually promoted.
                    network.advance(float(retry_after) + 0.5)
                    break
        return network.is_available(coord_id)

    def on_unavailable(self, kind: str, payload: dict,
                       failure: NodeUnavailable) -> None:
        """Hook: the addressed bucket's server is down.  Plain LH* has no
        recovery — surface the failure.  LH*RS overrides this."""
        raise failure

    # ------------------------------------------------------------------
    # incoming
    # ------------------------------------------------------------------
    def handle_iam(self, message: Message) -> None:
        self.image.adjust(message.payload["j"], message.payload["a"])

    def handle_iam_state(self, message: Message) -> None:
        """Authoritative image correction from the coordinator.

        Sent with routed deliveries; unlike server IAMs (A3, which never
        regress an image) this may shrink the image — the case after the
        file has merged buckets away beneath a stale image.
        """
        self.image.n = message.payload["n"]
        self.image.i = message.payload["i"]
        self.image.adjustments += 1

    def handle_search_result(self, message: Message) -> None:
        self._results[message.payload["request"]] = message.payload

    def handle_op_error(self, message: Message) -> None:
        self.last_error = message.payload

    def handle_op_ack(self, message: Message) -> None:
        self._acks.add(message.payload["token"])

    def handle_scan_reply(self, message: Message) -> None:
        bucket_list = self._scan_replies.get(message.payload["scan"])
        if bucket_list is not None:
            bucket_list.append(message.payload)

    # ------------------------------------------------------------------
    # key operations
    # ------------------------------------------------------------------
    def _wait(self, attempt: int) -> None:
        """Back off after a failed attempt (advances the simulated clock,
        which matures delayed messages and lets crash windows pass)."""
        delay = (
            self.retry.delay(attempt, self._retry_salt) if self.retry else 1.0
        )
        self._net().advance(delay)

    def _note_retry(self, kind: str, key: int, attempt: int) -> None:
        """Observability hook: one more attempt is about to run."""
        net = self.network
        if net is None:
            return
        if net.tracer is not None:
            net.tracer.emit("op.retry", op=kind, key=key, attempt=attempt + 1)
        if net.metrics is not None:
            net.metrics.counter(
                "retry.attempts", "client+parity retransmissions"
            ).inc()

    def _note_failed(self, kind: str, key: int, attempts: int) -> None:
        """Observability hook: the retry ladder ran dry."""
        net = self.network
        if net is not None and net.tracer is not None:
            net.tracer.emit("op.failed", op=kind, key=key, attempts=attempts)

    def _mutate(self, kind: str, payload: dict) -> None:
        """One mutation under the retry/ack discipline.

        Without acks a clean send is trusted (a silently dropped message
        is invisible to any sender); transient faults are retried.  With
        acks the accepting server confirms, so drops anywhere along the
        path are caught too, and the operation only returns once the ack
        arrived — or raises :class:`OperationFailed` after the budget.
        Retries are safe: re-applying a mutation with the same value is
        value-idempotent at the bucket, and its Δ-records are deduped by
        sequence number at the parity sites.
        """
        token = None
        if self.ack_writes:
            token = self._next_request()
            payload = dict(payload, ack=token)
        attempts = self.retry.attempts if self.retry else 1
        for attempt in range(attempts):
            delivered = True
            try:
                self._send_op(kind, dict(payload))
            except DeliveryFault:
                delivered = False
            if token is None:
                if delivered:
                    return
            elif token in self._acks:
                self._acks.discard(token)
                return
            if attempt + 1 < attempts:
                self._note_retry(kind, payload["key"], attempt)
                self._wait(attempt)
                if token is not None and token in self._acks:
                    self._acks.discard(token)
                    return
        self._note_failed(kind, payload["key"], attempts)
        raise OperationFailed(kind, payload["key"], attempts)

    def insert(self, key: int, value: Any) -> None:
        """Insert a record; fire-and-forget as in the papers (1 message
        in the typical no-forwarding case)."""
        self._mutate("insert", {"key": key, "value": value, "client": self.node_id})

    def update(self, key: int, value: Any) -> None:
        """Update (upsert) the non-key data of a record."""
        self._mutate("update", {"key": key, "value": value, "client": self.node_id})

    def delete(self, key: int) -> None:
        """Delete a record (idempotent)."""
        self._mutate("delete", {"key": key, "client": self.node_id})

    def search(self, key: int) -> SearchOutcome:
        """Key search: request + record back (2 messages when the image
        is accurate; at most 4 plus one IAM otherwise).

        Under a retry policy an unanswered search — its request or reply
        lost — is retried after a backoff; one request id spans the
        attempts, so a late reply maturing during the backoff satisfies
        the search.
        """
        request = self._next_request()
        payload = {"key": key, "client": self.node_id, "request": request}
        attempts = self.retry.attempts if self.retry else 1
        for attempt in range(attempts):
            try:
                self._send_op("search", dict(payload))
            except DeliveryFault:
                pass
            reply = self._results.pop(request, None)
            if reply is None and attempt + 1 < attempts:
                self._note_retry("search", key, attempt)
                self._wait(attempt)
                reply = self._results.pop(request, None)
            if reply is not None:
                return SearchOutcome(
                    key=key, found=reply["found"], value=reply["value"]
                )
        self._note_failed("search", key, attempts)
        raise OperationFailed("search", key, attempts)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan(
        self,
        predicate: Callable[[int, Any], bool] | None = None,
        deterministic: bool = True,
    ) -> ScanResult:
        """Parallel search of every bucket for records matching
        ``predicate`` (None selects everything).

        With ``deterministic=True`` every bucket replies (address and
        level included) and the client verifies it heard the whole file —
        the termination protocol the recovery algorithms rely on.  With
        ``deterministic=False`` only buckets holding matches reply
        (probabilistic termination: cheaper, no completeness proof).
        """
        scan_id = self._next_request()
        self._scan_replies[scan_id] = []
        payload = {
            "scan": scan_id,
            "client": self.node_id,
            "predicate": predicate,
            "deterministic": deterministic,
            "image": (self.image.n, self.image.i),
        }
        targets = [
            self._data_node(m) for m in range(self.image.bucket_count_estimate)
        ]
        _, unavailable = self._net().multicast(
            self.node_id, targets, "scan", payload, collect_replies=False
        )
        replies = self._scan_replies.pop(scan_id)
        records = [tuple(match) for r in replies for match in r["matches"]]

        if not deterministic:
            return ScanResult(
                records=records, complete=True, buckets_heard=len(replies)
            )

        heard = {r["bucket"]: r["level"] for r in replies}
        expected = self._expected_bucket_count(heard)
        missing = (
            sorted(set(range(expected)) - set(heard)) if expected else []
        )
        complete = bool(heard) and expected is not None and not missing
        return ScanResult(
            records=records,
            complete=complete,
            buckets_heard=len(heard),
            expected_buckets=expected,
            missing=missing,
        )

    def _expected_bucket_count(self, heard: dict[int, int]) -> int | None:
        """The paper's deterministic-termination bucket count M = n + 2^i N.

        i is the minimum level heard and n the smallest bucket at that
        level (the split pointer); with any reply missing the derived M
        exposes the gap.
        """
        if not heard:
            return None
        i = min(heard.values())
        n = min(m for m, j in heard.items() if j == i)
        return n + (1 << i) * self.image.n0
