"""The LH* data-bucket server.

Each server carries one bucket.  Incoming key operations run Algorithm
(A2): accept if ``h_j(c)`` lands here, otherwise forward — at most two
hops ever happen.  When a forwarded operation is finally accepted, the
acceptor sends the client an IAM with its own level and address so the
client's image converges (A3 on the client side).

Splits arrive as coordinator commands: the server partitions its records
with ``h_{j+1}``, ships the movers to the new bucket in one bulk
message, and bumps its level.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any

from repro.lh import addressing
from repro.lh.bucket import Bucket
from repro.sim.messages import Message
from repro.sim.network import DeliveryFault, NodeUnavailable, UnknownNode
from repro.sim.node import Node


class DataServer(Node):
    """One LH* data bucket at one server node."""

    def __init__(self, node_id: str, file_id: str, number: int, level: int,
                 capacity: int, n0: int):
        super().__init__(node_id)
        self.file_id = file_id
        self.bucket = Bucket(number=number, level=level, capacity=capacity)
        self.n0 = n0
        #: messages this server forwarded (A2 second/third hops)
        self.forwards = 0
        #: dedup: last bucket size reported as overflowing (-1 = none)
        self._last_reported_size = -1
        #: dedup: last size reported as underflowing (huge = none)
        self._last_underflow_size = 1 << 30

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @property
    def number(self) -> int:
        return self.bucket.number

    @property
    def level(self) -> int:
        return self.bucket.level

    def _data_node(self, m: int) -> str:
        return f"{self.file_id}.d{m}"

    def _coordinator(self) -> str:
        return f"{self.file_id}.coord"

    def _verify(self, key: int) -> int | None:
        """A2: return None to accept, else the forward address."""
        accept, forward = addressing.server_action(
            key, self.number, self.level, self.n0
        )
        return None if accept else forward

    def _forward(self, message: Message) -> None:
        target = self._verify(message.payload["key"])
        assert target is not None
        self.forwards += 1
        payload = dict(message.payload)
        payload["hops"] = payload.get("hops", 0) + 1
        try:
            self.send(self._data_node(target), message.kind, payload)
        except (UnknownNode, NodeUnavailable):
            # Forwarding bucket unavailable or address stale: per the
            # protocol, resend the query to the coordinator, which
            # delivers it from the true file state.
            try:
                self.send(
                    self._coordinator(), "route",
                    {"kind": message.kind, "op": payload},
                )
            except (UnknownNode, NodeUnavailable) as failure:
                failed = getattr(failure, "node_id", None) or (
                    failure.args[0] if failure.args else None
                )
                if failed != self._coordinator():
                    # The coordinator answered; some downstream bucket is
                    # dead — surface that verbatim (A2 fallback contract).
                    raise
                # Coordinator dark too (pre-takeover window): surface a
                # transient fault so the client's retry ladder backs off
                # and replays against the promoted primary.
                raise DeliveryFault(self._coordinator(), "request") from failure

    def _send_iam(self, client: str) -> None:
        """Image adjustment message: my level and address (A3 input)."""
        self.send(client, "iam", {"j": self.level, "a": self.number})

    #: report underflow when occupancy falls below this fraction
    UNDERFLOW_FRACTION = 0.25

    def _after_accept(self, payload: dict) -> None:
        """Common post-accept duties: IAM on forwarded ops, load reports,
        and (when the client tagged the op) an acknowledgement so the
        client's retry loop knows the mutation landed."""
        if payload.get("hops", 0) and payload.get("client"):
            self._send_iam(payload["client"])
        if payload.get("ack") and payload.get("client"):
            self.send(payload["client"], "op.ack",
                      {"token": payload["ack"], "bucket": self.number})
        self._report_overflow_if_needed()

    def _report_overflow_if_needed(self) -> None:
        """Report the bucket's size to the coordinator while overflowing.

        The report is informational: the coordinator's load-control
        policy decides whether a split actually happens (usually of a
        *different* bucket — the split pointer's).  Reports repeat while
        the overflow persists so the coordinator's load estimator stays
        fresh; dedup within one size is enough to avoid pure noise.
        """
        if self.bucket.overflowing:
            size = len(self.bucket)
            # Report only on growth: a delete that leaves the bucket
            # overflowing is not new pressure.
            if size > self._last_reported_size:
                previous = self._last_reported_size
                self._last_reported_size = size
                try:
                    self.send(
                        self._coordinator(),
                        "overflow",
                        {"bucket": self.number, "size": size},
                    )
                except (UnknownNode, NodeUnavailable, DeliveryFault):
                    # Coordinator unreachable (or it crashed while
                    # handling the report): roll the dedup marker back
                    # so the pressure is re-reported to its successor.
                    self._last_reported_size = previous
        else:
            self._last_reported_size = -1

    def _report_underflow_if_needed(self) -> None:
        """Report shrinking occupancy (feeds the merge policy).

        Only deletions call this: reports fire while the bucket sits
        below UNDERFLOW_FRACTION of capacity and its size keeps falling;
        the coordinator's policy decides whether the file shrinks.
        """
        size = len(self.bucket)
        if size < self.bucket.capacity * self.UNDERFLOW_FRACTION:
            if size < self._last_underflow_size:
                previous = self._last_underflow_size
                self._last_underflow_size = size
                try:
                    self.send(
                        self._coordinator(),
                        "underflow",
                        {"bucket": self.number, "size": size},
                    )
                except (UnknownNode, NodeUnavailable, DeliveryFault):
                    self._last_underflow_size = previous
        else:
            self._last_underflow_size = 1 << 30

    # ------------------------------------------------------------------
    # key operation handlers
    # ------------------------------------------------------------------
    def handle_insert(self, message: Message) -> None:
        payload = message.payload
        if self._verify(payload["key"]) is not None:
            self._forward(message)
            return
        self.apply_insert(payload["key"], payload["value"])
        self._after_accept(payload)

    def handle_update(self, message: Message) -> None:
        payload = message.payload
        if self._verify(payload["key"]) is not None:
            self._forward(message)
            return
        found = payload["key"] in self.bucket
        self.apply_update(payload["key"], payload["value"])
        if payload.get("client") and not found:
            self.send(payload["client"], "op.error",
                      {"key": payload["key"], "reason": "update of absent key"})
        self._after_accept(payload)

    def handle_delete(self, message: Message) -> None:
        payload = message.payload
        if self._verify(payload["key"]) is not None:
            self._forward(message)
            return
        self.apply_delete(payload["key"])
        self._after_accept(payload)
        self._report_underflow_if_needed()

    def handle_search(self, message: Message) -> None:
        payload = message.payload
        if self._verify(payload["key"]) is not None:
            self._forward(message)
            return
        key = payload["key"]
        value = self.bucket.records.get(key)
        self.send(
            payload["client"],
            "search.result",
            {
                "request": payload["request"],
                "key": key,
                "found": key in self.bucket,
                "value": value,
            },
        )
        if payload.get("hops", 0):
            self._send_iam(payload["client"])

    # ------------------------------------------------------------------
    # batched key operations (bulk scatter-gather plane)
    # ------------------------------------------------------------------
    def handle_ops_batch(self, message: Message) -> dict:
        """One scattered sub-batch: apply every op, reply per-op results.

        Unlike the scalar handlers there is no server-side forwarding —
        an op this bucket does not own (A2) is refused as ``moved`` with
        the forward address, and the *client* re-bins it; the reply's
        (j, a) doubles as the IAM, applied once per sub-batch.  Load
        reports still fire per op, so a split triggered mid-batch
        happens at exactly the point the scalar sequence would trigger
        it — the remaining ops then see the post-split bucket and are
        refused, landing at the batch boundary.
        """
        ops = message.payload["ops"]
        with self._batch_context(ops):
            results = self._apply_batch_ops(ops)
        return {"j": self.level, "a": self.number, "results": results}

    def _batch_context(self, ops: list[dict]):
        """Hook wrapping one sub-batch apply; LH*RS coalesces Δ-parity
        inside it (one ``parity.batch`` per parity target per batch)."""
        return nullcontext()

    def _apply_batch_ops(self, ops: list[dict]) -> list[dict]:
        """Hook: apply a sub-batch.  Plain LH* applies op by op; LH*RS
        overrides to vectorize runs of same-kind ops."""
        return [self._apply_batch_op(op) for op in ops]

    def _apply_batch_op(self, op: dict) -> dict:
        """Apply one batch op, mirroring the scalar handler's effects
        (same verify, same mutation primitive, same load reports)."""
        kind = op["op"]
        key = op["key"]
        forward = self._verify(key)
        if forward is not None:
            return {"status": "moved", "to": forward}
        if kind == "search":
            found = key in self.bucket
            return {
                "status": "found" if found else "not_found",
                "value": self.bucket.records.get(key),
            }
        if kind == "insert":
            self.apply_insert(key, op["value"])
            self._report_overflow_if_needed()
            return {"status": "applied"}
        if kind == "update":
            found = key in self.bucket
            self.apply_update(key, op["value"])
            self._report_overflow_if_needed()
            if not found:
                return {"status": "applied",
                        "error": "update of absent key"}
            return {"status": "applied"}
        if kind == "delete":
            self.apply_delete(key)
            self._report_overflow_if_needed()
            self._report_underflow_if_needed()
            return {"status": "applied"}
        raise ValueError(f"unknown batch op kind {kind!r}")

    # ------------------------------------------------------------------
    # record mutation primitives (overridden by LH*RS to maintain parity)
    # ------------------------------------------------------------------
    def apply_insert(self, key: int, value: Any) -> None:
        """Store a record that A2 accepted for this bucket."""
        self.bucket.put(key, value)

    def apply_update(self, key: int, value: Any) -> None:
        """Overwrite a record in place (upsert when absent)."""
        self.bucket.put(key, value)

    def apply_delete(self, key: int) -> None:
        """Remove a record; silently ignores absent keys (idempotent)."""
        if key in self.bucket:
            self.bucket.delete(key)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def handle_scan(self, message: Message) -> None:
        payload = message.payload
        assumed = payload.get("assumed_level")
        if assumed is None:
            # Direct from the client: the level my bucket has *in the
            # client's image* — buckets below the image pointer and
            # new-round buckets are at i'+1, the middle range at i'.
            n_img, i_img = payload["image"]
            assumed = addressing.bucket_level(self.number, n_img, i_img, self.n0)
        # Propagate to descendants the sender does not know (LNS96 rule):
        # each split of mine at level l spawned bucket m + 2^l N.
        for l in range(assumed, self.level):
            child = self.number + (1 << l) * self.n0
            forwarded = dict(payload)
            forwarded["assumed_level"] = l + 1
            try:
                self.send(self._data_node(child), "scan", forwarded)
            except (UnknownNode, NodeUnavailable):
                # Dead or displaced child: its silence is what the
                # deterministic-termination check detects.
                continue
        matches = self.scan_matches(payload)
        if payload["deterministic"] or matches:
            self.send(
                payload["client"],
                "scan.reply",
                {
                    "scan": payload["scan"],
                    "bucket": self.number,
                    "level": self.level,
                    "matches": matches,
                },
            )

    def scan_matches(self, payload: dict) -> list[tuple[int, Any]]:
        """Records selected by the scan's non-key predicate."""
        predicate = payload.get("predicate")
        out = []
        for key, value in self.bucket.records.items():
            if predicate is None or predicate(key, value):
                out.append((key, value))
        return out

    # ------------------------------------------------------------------
    # split protocol
    # ------------------------------------------------------------------
    def handle_split(self, message: Message) -> Any:
        """Coordinator command: split into ``target`` at ``new_level``."""
        target = message.payload["target"]
        stay, move = addressing.split_records(
            list(self.bucket.records.items()),
            lambda item: item[0],
            self.number,
            self.level,
            self.n0,
        )
        self.bucket.records = dict(stay)
        self.bucket.level += 1
        self._last_reported_size = -1
        self.send(
            self._data_node(target),
            "records.bulk",
            {"records": move, "source": self.number},
        )
        self._report_overflow_if_needed()
        return {"moved": len(move), "kept": len(stay)}

    def handle_records_bulk(self, message: Message) -> None:
        """Bulk arrival of records moved by a split."""
        for key, value in message.payload["records"]:
            self.receive_moved_record(key, value)
        self._report_overflow_if_needed()

    # ------------------------------------------------------------------
    # merge protocol (file shrink: inverse splits)
    # ------------------------------------------------------------------
    def handle_merge(self, message: Message) -> Any:
        """Coordinator command: this (last) bucket dissolves back into
        the bucket whose split created it."""
        into = message.payload["into"]
        records = list(self.bucket.records.items())
        self.bucket.records = {}
        self.send(
            self._data_node(into),
            "records.bulk",
            {"records": records, "source": self.number},
        )
        return {"moved": len(records)}

    def handle_level_set(self, message: Message) -> None:
        """Coordinator command: adopt a new bucket level (merge source
        widens its hash coverage back to the pre-split level)."""
        self.bucket.level = message.payload["level"]

    def receive_moved_record(self, key: int, value: Any) -> None:
        """Store one record that moved here through a split."""
        self.bucket.put(key, value)

    # ------------------------------------------------------------------
    # introspection (file-state recovery, tests)
    # ------------------------------------------------------------------
    def handle_status(self, message: Message) -> dict:
        return {
            "bucket": self.number,
            "level": self.level,
            "records": len(self.bucket),
        }
