"""The LH* coordinator.

A dedicated node (bucket 0's site in the papers) owning the file state
(n, i).  It receives overflow reports from data servers, applies a load
control policy, and drives splits: allocating the new bucket's server and
commanding the splitting bucket to partition itself.

The split *pointer* order is the linear-hashing order — the bucket that
splits is usually not the one that reported the overflow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lh.state import FileState
from repro.sdds.server import DataServer
from repro.sim.messages import Message
from repro.sim.node import Node


@dataclass(frozen=True)
class SplitPolicy:
    """Load control policy deciding when an overflow triggers a split.

    The coordinator "applies a load control policy to find whether it
    should trigger a split" (LH* family).  Three policies are provided:

    * ``mode="estimate"`` (default): maintain a free estimate of the
      file's load factor from overflow reports and split replies, and
      split while the estimate exceeds ``threshold``.  The estimate lags
      the truth (ordinary inserts are invisible to the coordinator), so
      the *true* load stabilizes ~0.10-0.12 above the threshold; the
      default of 0.58 lands the file at the ~70% load the papers report
      for ordinary operation.
    * ``mode="every_overflow"``: split once per overflow report — the
      most eager policy (lowest load factor, fewest overflowing buckets).
    * ``mode="poll"``: poll every bucket for its exact size (costs
      messages) and split while the true load factor exceeds
      ``threshold`` — the paper's high-load-control option (~85%).
    """

    mode: str = "estimate"
    threshold: float = 0.58
    #: merge (shrink) when the estimated load falls below this; 0 = never.
    merge_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("estimate", "every_overflow", "poll"):
            raise ValueError(f"unknown split policy mode {self.mode!r}")
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if self.merge_threshold < 0 or self.merge_threshold >= self.threshold:
            raise ValueError(
                "merge_threshold must be in [0, threshold) for hysteresis"
            )


class Coordinator(Node):
    """Coordinator node for one LH* file."""

    def __init__(
        self,
        node_id: str,
        file_id: str,
        capacity: int,
        n0: int = 1,
        policy: SplitPolicy | None = None,
    ):
        super().__init__(node_id)
        self.file_id = file_id
        self.capacity = capacity
        self.state = FileState(n0=n0)
        self.policy = policy or SplitPolicy()
        self._pending_overflows: list[dict] = []
        self._draining = False
        #: last known record count per bucket (from overflow reports and
        #: split replies) — feeds the free load-factor estimator
        self._sizes: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _data_node(self, m: int) -> str:
        return f"{self.file_id}.d{m}"

    def make_server(self, number: int, level: int) -> DataServer:
        """Server factory; LH*RS overrides to build parity-aware servers."""
        return DataServer(
            node_id=self._data_node(number),
            file_id=self.file_id,
            number=number,
            level=level,
            capacity=self.capacity,
            n0=self.state.n0,
        )

    def bootstrap(self) -> None:
        """Create the initial n0 data buckets (level 0)."""
        for m in range(self.state.n0):
            self._net().register(self.make_server(m, 0))

    # ------------------------------------------------------------------
    # split machinery
    # ------------------------------------------------------------------
    def split_once(self) -> tuple[int, int]:
        """Perform one split; returns (source, target) bucket numbers.

        The state advances *before* the split command runs: the moved
        records can re-trigger overflow handling at the target, and that
        nested handling must already see the new file extent.
        """
        source, target, new_level = self.state.next_split()
        tracer = self._net().tracer
        if tracer is not None:
            tracer.emit(
                "split.start",
                source=source,
                target=target,
                new_level=new_level,
            )
        # Group infrastructure first: the new bucket's server factory
        # reads it (LH*RS: parity buckets must exist and be known before
        # the data server is built, or its parity targets come up empty).
        self.on_new_bucket(target, new_level)
        self._net().register(self.make_server(target, new_level))
        self.state.advance_split()
        self._crash_hook("split.mid")
        result = self._structural_call(self._data_node(source), "split",
                                       {"target": target, "new_level": new_level})
        self._sizes[source] = result["kept"]
        self._sizes[target] = result["moved"]
        if tracer is not None:
            tracer.emit(
                "split.end",
                source=source,
                target=target,
                moved=result["moved"],
                kept=result["kept"],
            )
        return source, target

    def on_new_bucket(self, number: int, level: int) -> None:
        """Hook for subclasses (LH*RS grows the parity file here)."""

    def _crash_hook(self, point: str) -> None:
        """Hook for subclasses: a named mid-command crash point.

        The HA coordinator arms these for fault injection — the plain
        coordinator never crashes."""

    def _structural_call(self, node_id: str, kind: str, payload: dict):
        """A call the file's structure depends on (split/merge commands).

        The file state advances *before* these commands run, so an
        unanswered command would leave the directory and the buckets
        disagreeing.  Subclass hook: LH*RS recovers an unavailable
        addressee and retries; plain LH* has no recovery and lets the
        failure propagate.
        """
        return self.call(node_id, kind, payload)

    def merge_once(self) -> tuple[int, int]:
        """Perform one bucket merge (inverse split); returns
        ``(source, target)`` — ``target`` was reabsorbed by ``source``.

        The coordinator sets the source's level back first, so records
        arriving from the dissolving bucket pass its A2 check, then
        commands the dissolution and retires the empty server.
        """
        if self.state.bucket_count <= self.state.n0:
            raise ValueError("cannot shrink below the initial buckets")
        with self._restructure_lock():
            before = len(self._pending_overflows)
            source, target, level = self.state.retreat_merge()
            self.send(self._data_node(source), "level.set", {"level": level})
            self._structural_call(self._data_node(target), "merge",
                                  {"into": source})
            self._net().unregister(self._data_node(target))
            self.on_bucket_removed(target)
            self._sizes.pop(target, None)
            # Overflow reports raised by the merge's own record movement
            # are dropped: acting on them would split right back
            # (ping-pong).  The absorber re-reports on its next insert.
            del self._pending_overflows[before:]
        return source, target

    def on_bucket_removed(self, number: int) -> None:
        """Hook for subclasses (LH*RS retires empty groups' parity)."""

    def handle_underflow(self, message: Message) -> None:
        """A bucket reported running nearly empty after deletions.

        Merging is the load-control mirror image of splitting: shrink
        while the estimated load is below ``merge_threshold`` (disabled
        by default — the papers note deletions are rare in scalable
        files).  Hysteresis versus the split threshold avoids thrash.
        """
        self._sizes[message.payload["bucket"]] = message.payload["size"]
        if self.policy.merge_threshold <= 0:
            return
        while (
            self.state.bucket_count > self.state.n0
            and self._estimated_load_factor() < self.policy.merge_threshold
        ):
            self.merge_once()

    def _global_load_factor(self) -> float:
        """Poll every bucket for its size (costs messages) and average."""
        replies, _ = self._net().multicast(
            self.node_id,
            [self._data_node(m) for m in self.state.buckets()],
            "status",
        )
        total = sum(r["records"] for r in replies.values())
        return total / (self.capacity * self.state.bucket_count)

    def handle_overflow(self, message: Message) -> None:
        """A bucket reported exceeding its capacity.

        Reports queue up and drain one at a time: a split (or merge)
        moves records, which can raise new overflow reports mid-move,
        and those must not interleave with the restructuring in
        progress.
        """
        self._pending_overflows.append(message.payload)
        self._drain_pending()

    def _drain_pending(self) -> None:
        if self._draining:
            return
        self._draining = True
        try:
            while self._pending_overflows:
                report = self._pending_overflows.pop(0)
                self._handle_one_overflow(report)
        finally:
            self._draining = False

    def _restructure_lock(self):
        """Context holding back overflow handling during a merge."""
        from contextlib import contextmanager

        @contextmanager
        def lock():
            already = self._draining
            self._draining = True
            try:
                yield
            finally:
                self._draining = already

        return lock()

    def _estimated_load_factor(self) -> float:
        """Free load estimate: known sizes, mean-imputed for the rest."""
        m = self.state.bucket_count
        if not self._sizes:
            return 1.0  # first report ever: assume full
        known = {b: s for b, s in self._sizes.items() if b < m}
        if not known:
            return 1.0
        mean = sum(known.values()) / len(known)
        total = sum(known.values()) + mean * (m - len(known))
        return total / (self.capacity * m)

    def _handle_one_overflow(self, report: dict) -> None:
        self._sizes[report["bucket"]] = report["size"]
        if self.policy.mode == "every_overflow":
            self.split_once()
            return
        load = (
            self._estimated_load_factor
            if self.policy.mode == "estimate"
            else self._global_load_factor
        )
        while load() > self.policy.threshold:
            self.split_once()

    # ------------------------------------------------------------------
    # queries from clients/servers that lost track of the file
    # ------------------------------------------------------------------
    def handle_state(self, message: Message) -> dict:
        """The file-state — requested by recovery and by lost clients."""
        return {"n": self.state.n, "i": self.state.i, "n0": self.state.n0}

    def handle_route(self, message: Message) -> None:
        """Deliver an operation on behalf of a sender whose addressing
        failed (image past the file, or a forwarding bucket down).

        The coordinator knows the true state, so A1 gives the correct
        bucket directly, bypassing forwarding.  The op is marked as
        forwarded so the acceptor sends a corrective IAM to the client.
        """
        kind = message.payload["kind"]
        op = dict(message.payload["op"])
        op["hops"] = op.get("hops", 0) + 1
        target = self.state.address(op["key"])
        self.deliver_routed(kind, op, target)
        if op.get("client"):
            # Authoritative image fix — unlike A3 IAMs it may shrink the
            # image (needed after merges removed buckets it points at).
            self.send(
                op["client"], "iam.state",
                {"n": self.state.n, "i": self.state.i},
            )

    def deliver_routed(self, kind: str, op: dict, target: int) -> None:
        """Send a routed operation to its correct bucket.  Subclass hook:
        LH*RS intercepts delivery to unavailable buckets and recovers."""
        self.send(self._data_node(target), kind, op)
