"""LH*: the Scalable Distributed Data Structure substrate.

This subpackage realizes the LH* scheme on the simulator: data-bucket
servers that verify and forward requests (A2), a coordinator owning the
file state and the split sequence, clients with private images corrected
by IAMs (A3), and scans with deterministic or probabilistic termination.

LH*RS (`repro.core`) extends these classes; the baselines reuse them.

Naming: a file with id ``F`` places its coordinator at node ``F.coord``,
data bucket m at node ``F.d<m>``, and clients at ``F.client<n>``.  When a
bucket is recovered onto a hot spare, the spare assumes the failed
bucket's logical node id — physical re-addressing after recovery (which
the paper shows costs a few extra messages, once, via coordinator
forwarding and IAMs) is modelled as transparent.  DESIGN.md records this
substitution.
"""

from repro.sdds.client import Client, ScanResult, SearchOutcome
from repro.sdds.coordinator import Coordinator, SplitPolicy
from repro.sdds.file import LHStarFile
from repro.sdds.server import DataServer

__all__ = [
    "Client",
    "SearchOutcome",
    "ScanResult",
    "Coordinator",
    "SplitPolicy",
    "DataServer",
    "LHStarFile",
]
