"""MDS generator construction for the LH*RS parity calculus.

Two constructions are provided:

``cauchy`` (default)
    A k x m Cauchy matrix, row- and column-normalized so that the first
    row *and* the first column are all ones.  Row/column scaling by
    nonzero constants preserves the Cauchy property that **every square
    submatrix is nonsingular**, which is exactly what makes any ≤ k
    erasures per record group recoverable.  The all-ones first row makes
    parity bucket 0 pure XOR; the all-ones first column makes the first
    data position's contribution to every parity bucket a free XOR.

``vandermonde``
    The classic construction: column-reduce an (m+k) x m Vandermonde so
    its top block is the identity; the bottom k x m block is MDS but has
    no all-ones structure.  Kept as the ablation arm for experiment E13.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.gf.field import GF
from repro.gf.matrix import GFMatrix

KINDS = ("cauchy", "vandermonde")


@lru_cache(maxsize=None)
def _parity_matrix_cached(width: int, m: int, k: int, kind: str) -> GFMatrix:
    field = GF(width)
    if m < 1 or k < 0:
        raise ValueError("need m >= 1 data positions and k >= 0 parity positions")
    if m + k > field.order:
        raise ValueError(
            f"m + k = {m + k} exceeds the {field.order} elements of "
            f"GF(2^{width}); use a wider field"
        )
    if kind == "cauchy":
        ys = list(range(m))
        xs = list(range(m, m + k))
        p = GFMatrix.cauchy(field, xs, ys)
        # Normalize: first scale each row so column 0 becomes all ones,
        # then scale each column so row 0 becomes all ones.  Column 0 is
        # scaled by inv(1) = 1, so both normalizations hold at once.
        for i in range(k):
            p = p.scale_row(i, field.inv(p[i, 0]))
        for j in range(m):
            p = p.scale_col(j, field.inv(p[0, j]))
        return p
    if kind == "vandermonde":
        tall = GFMatrix.vandermonde(field, m + k, m).systematize()
        return tall.take_rows(range(m, m + k))
    raise ValueError(f"unknown generator kind {kind!r}; choose from {KINDS}")


def parity_matrix(field: GF, m: int, k: int, kind: str = "cauchy") -> GFMatrix:
    """The k x m parity coefficient matrix P.

    Parity record i of a group holds, symbol-wise,
    ``p_i = XOR_j P[i][j] * d_j`` where ``d_j`` is the payload of the data
    record at group position j.  Results are cached per (field, m, k,
    kind) since the matrices are reused for every record group in a file.
    """
    return _parity_matrix_cached(field.width, m, k, kind)


def generator_matrix(field: GF, m: int, k: int, kind: str = "cauchy") -> GFMatrix:
    """The stacked (m+k) x m generator G = [I_m ; P].

    ``codeword = G @ data``: rows 0..m-1 are the data symbols themselves,
    rows m..m+k-1 the parity symbols.  Decoding selects any m available
    rows and inverts the square system.
    """
    identity = GFMatrix.identity(field, m).data
    parity = parity_matrix(field, m, k, kind).data
    return GFMatrix(field, np.vstack([identity, parity]))
