"""Stripe encoding and Δ-record computation.

Two styles of encoding exist in an LH*RS file and both are here:

* **Full-stripe encoding** (:func:`encode_symbols`) computes all k parity
  payloads of a record group from scratch — used when a parity bucket is
  (re)built, and by tests as the ground truth for incremental updates.
* **Δ-record folding** (:func:`fold_delta`) is the steady-state path: an
  insert/update/delete at group position j ships ``Δ = old XOR new`` to
  each parity bucket, which folds ``P[i][j] * Δ`` into its stored parity.
  For parity bucket 0, and for position 0 at every parity bucket, the
  coefficient is one and the fold degenerates to plain XOR.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.gf.field import GF
from repro.gf.matrix import GFMatrix


def delta_payload(old: bytes, new: bytes) -> bytes:
    """The Δ-record payload ``old XOR new`` (shorter side zero-padded).

    An insert uses ``old = b""``, a delete uses ``new = b""``; in both
    cases the Δ degenerates to the record payload itself, as in the paper.
    Sits on the per-mutation hot path, so the XOR runs as one C-level
    big-int pass (little-endian zero-extends the shorter side for free).
    """
    if len(old) < len(new):
        old, new = new, old
    if not new:
        return bytes(old)
    return (
        int.from_bytes(old, "little") ^ int.from_bytes(new, "little")
    ).to_bytes(len(old), "little")


def encode_symbols(
    field: GF,
    parity: GFMatrix,
    payloads: Sequence[bytes | None],
    symbol_length: int,
) -> list[np.ndarray]:
    """Compute all parity symbol arrays for one record group.

    ``payloads[j]`` is the payload of the data record at group position j,
    or ``None`` for an empty slot.  All parity arrays have
    ``symbol_length`` symbols (callers size it to the longest payload).
    """
    if len(payloads) > parity.cols:
        raise ValueError(
            f"{len(payloads)} payloads exceed the m={parity.cols} group slots"
        )
    out = [np.zeros(symbol_length, dtype=field.symbol_dtype) for _ in range(parity.rows)]
    for j, payload in enumerate(payloads):
        if not payload:
            continue
        if field.symbol_length_for_bytes(len(payload)) > symbol_length:
            raise ValueError("payload longer than the stripe symbol length")
        for i in range(parity.rows):
            field.scale_accumulate(out[i], parity[i, j], payload)
    return out


def encode_stripes(
    field: GF,
    parity: GFMatrix,
    stacked: np.ndarray,
) -> np.ndarray:
    """All parity symbols for *many* record groups in one kernel call.

    ``stacked`` is an ``(m', nranks, L)`` tensor — axis 0 is the group
    position (``m' <= m`` positions supplied; missing trailing positions
    are treated as empty slots), axis 1 the record group (rank), axis 2
    the symbol within the stripe.  Returns the ``(k, nranks, L)`` parity
    tensor.  This is the batch counterpart of :func:`encode_symbols`
    (which remains the scalar oracle): one table gather + XOR-reduce per
    generator coefficient instead of per record, with the XOR fast path
    for unit coefficients preserved inside the kernel.
    """
    stacked = np.asarray(stacked, dtype=field.symbol_dtype)
    if stacked.ndim != 3:
        raise ValueError("encode_stripes expects an (m, nranks, L) tensor")
    if stacked.shape[0] > parity.cols:
        raise ValueError(
            f"{stacked.shape[0]} positions exceed the m={parity.cols} group slots"
        )
    return field.gf_matmul(parity.data[:, : stacked.shape[0]], stacked)


def fold_delta(
    field: GF,
    acc: np.ndarray,
    coefficient: int,
    delta: bytes,
) -> np.ndarray:
    """Fold one Δ-record into a stored parity array, growing it if needed.

    Returns the (possibly reallocated) accumulator; parity buckets store
    the return value.  Growth happens when a record longer than any seen
    so far joins the group — the paper's zero-padding rule means existing
    parity symbols beyond the old length are implicitly zero.
    """
    needed = field.symbol_length_for_bytes(len(delta))
    if needed > len(acc):
        grown = np.zeros(needed, dtype=field.symbol_dtype)
        grown[: len(acc)] = acc
        acc = grown
    field.scale_accumulate(acc, coefficient, delta)
    return acc
