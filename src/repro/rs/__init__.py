"""Reed-Solomon erasure coding for LH*RS record groups.

A record group with up to ``m`` data records and ``k`` parity records is
one codeword of a systematic (m+k, m) MDS code, applied symbol-wise over
GF(2^w) across the record payloads.  The generator's parity submatrix P
has an all-ones first row and first column:

* parity bucket 0 computes plain XOR parity (so 1-availability costs what
  the XOR-based predecessor scheme LH*g charges), and
* a record that is alone in its group is stored verbatim in every parity
  record's payload slot.

Public API
----------
``RSCodec(m, k, field)``
    Encode a group, apply Δ-record updates, and recover any ≤ k lost
    members.
``parity_matrix`` / ``generator_matrix``
    The underlying MDS constructions (normalized Cauchy by default,
    systematic Vandermonde available for the ablation experiment).
"""

from repro.rs.codec import RSCodec
from repro.rs.decoder import DecodeError, decode_stripes, decode_symbols
from repro.rs.encoder import delta_payload, encode_stripes, encode_symbols
from repro.rs.generator import generator_matrix, parity_matrix

__all__ = [
    "RSCodec",
    "DecodeError",
    "decode_stripes",
    "decode_symbols",
    "encode_stripes",
    "encode_symbols",
    "delta_payload",
    "generator_matrix",
    "parity_matrix",
]
