"""High-level (m+k, m) erasure codec over byte payloads.

:class:`RSCodec` is the interface the LH*RS parity buckets and the
recovery orchestrator use, and the unit that experiment E9 benchmarks.
It hides symbol/byte conversions and padding: callers hand in byte
payloads of arbitrary (per-record) lengths and get byte payloads back.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.gf.field import GF
from repro.rs.decoder import DecodeError, decode_stripes, decode_symbols
from repro.rs.encoder import delta_payload, encode_stripes, encode_symbols, fold_delta
from repro.rs.generator import parity_matrix


class RSCodec:
    """Systematic Reed-Solomon erasure codec with m data and k parity slots.

    Parameters
    ----------
    m:
        Number of data positions per record group (the bucket-group size).
    k:
        Number of parity positions (the availability level).
    field:
        The GF(2^w) to compute over; defaults to GF(2^8).
    kind:
        Parity matrix construction, ``"cauchy"`` (normalized, default) or
        ``"vandermonde"`` (ablation).
    """

    def __init__(self, m: int, k: int, field: GF | None = None, kind: str = "cauchy"):
        if m < 1:
            raise ValueError("m must be at least 1")
        if k < 0:
            raise ValueError("k cannot be negative")
        self.field = field or GF(8)
        self.m = m
        self.k = k
        self.kind = kind
        self.parity = parity_matrix(self.field, m, k, kind) if k else None

    # ------------------------------------------------------------------
    def coefficient(self, parity_index: int, data_index: int) -> int:
        """P[parity_index][data_index]; the Δ-fold multiplier."""
        if not 0 <= parity_index < self.k:
            raise IndexError(f"parity index {parity_index} out of range 0..{self.k - 1}")
        if not 0 <= data_index < self.m:
            raise IndexError(f"data index {data_index} out of range 0..{self.m - 1}")
        assert self.parity is not None
        return self.parity[parity_index, data_index]

    def stripe_symbol_length(self, payloads: Sequence[bytes | None]) -> int:
        """Symbols needed to carry the longest payload in the group."""
        longest = max((len(p) for p in payloads if p), default=0)
        return self.field.symbol_length_for_bytes(longest)

    # ------------------------------------------------------------------
    # whole-stripe paths
    # ------------------------------------------------------------------
    def encode(self, payloads: Sequence[bytes | None]) -> list[bytes]:
        """All k parity payloads for a group of data payloads.

        ``payloads[j]`` sits at group position j; ``None`` marks an empty
        slot (groups fill up gradually as records arrive).  Parity
        payloads all have the length of the longest data payload.
        """
        if self.k == 0:
            return []
        assert self.parity is not None
        length = self.stripe_symbol_length(payloads)
        arrays = encode_symbols(self.field, self.parity, payloads, length)
        # Parity payloads are symbol-aligned: truncating to the longest
        # data byte length would drop the tail bits of the last symbol
        # for multi-byte-symbol fields (GF(2^16)).
        return [self.field.bytes_from_symbols(a) for a in arrays]

    def recover(
        self,
        shares: dict[int, bytes],
        lost: list[int] | None = None,
        payload_lengths: dict[int, int] | None = None,
    ) -> dict[int, bytes]:
        """Rebuild lost positions from surviving byte payloads.

        Positions 0..m-1 are data, m..m+k-1 parity.  ``payload_lengths``
        optionally gives the original byte length of each lost position so
        zero-padding can be stripped (LH*RS parity records track member
        record structure for exactly this purpose).
        """
        if not shares:
            raise DecodeError("no surviving shares")
        longest = max(len(p) for p in shares.values())
        length = self.field.symbol_length_for_bytes(longest)
        symbol_shares = {
            pos: self.field.symbols_from_bytes(data, length)
            for pos, data in shares.items()
        }
        decoded = decode_symbols(
            self.field, self.m, self.k, symbol_shares, lost, self.kind
        )
        out: dict[int, bytes] = {}
        for pos, symbols in decoded.items():
            if payload_lengths and pos in payload_lengths:
                out[pos] = self.field.bytes_from_symbols(
                    symbols, payload_lengths[pos]
                )
            else:
                # Without the original length, return the symbol-aligned
                # payload (may carry the stripe's zero padding).
                out[pos] = self.field.bytes_from_symbols(symbols)
        return out

    # ------------------------------------------------------------------
    # stacked-stripe batch paths (the 2D kernels)
    # ------------------------------------------------------------------
    def pack_stripes(
        self,
        groups: Sequence[Sequence[bytes | None]],
        length: int | None = None,
    ) -> np.ndarray:
        """Pack many record groups into one (m x ngroups x L) tensor.

        ``groups[r]`` is the payload sequence of the r-th record group
        (up to m entries; ``None`` marks an empty slot).  ``length``
        defaults to the longest payload's symbol length across *all*
        groups — every stripe is zero-padded to it, which the paper's
        padding rule makes exact.
        """
        if length is None:
            length = max(
                (self.stripe_symbol_length(g) for g in groups), default=0
            )
        columns = [
            self.field.stack_payloads(
                [g[j] if j < len(g) else None for g in groups], length
            )
            for j in range(self.m)
        ]
        return np.stack(columns) if columns else np.zeros(
            (0, len(groups), length), dtype=self.field.symbol_dtype
        )

    def encode_stripes(self, stacked: np.ndarray) -> np.ndarray:
        """Parity tensor (k x ngroups x L) for a packed stripe tensor."""
        if self.k == 0:
            return np.zeros(
                (0,) + np.asarray(stacked).shape[1:], dtype=self.field.symbol_dtype
            )
        assert self.parity is not None
        return encode_stripes(self.field, self.parity, stacked)

    def encode_batch(
        self, groups: Sequence[Sequence[bytes | None]]
    ) -> list[list[bytes]]:
        """All parity payloads for many groups in one kernel pass.

        Bit-exact with calling :meth:`encode` per group (each group's
        parity is trimmed back to its own stripe length), but the GF
        work is dispatched once per generator coefficient instead of
        once per record.
        """
        if self.k == 0 or not groups:
            return [[] for _ in groups]
        field = self.field
        stripes = [self.stripe_symbol_length(g) for g in groups]
        stacked = self.pack_stripes(groups, max(stripes))
        parity = self.encode_stripes(stacked)
        if field.width in (8, 16):
            # Whole-byte symbols: render each parity plane as one blob
            # and slice per group (prefix trims are byte-aligned).
            itemsize = np.dtype(field.symbol_dtype).itemsize
            stride = parity.shape[2] * itemsize
            wire = "<u2" if field.width == 16 else np.uint8
            blobs = [
                parity[i].astype(wire, copy=False).tobytes()
                for i in range(self.k)
            ]
            return [
                [
                    blobs[i][r * stride : r * stride + stripes[r] * itemsize]
                    for i in range(self.k)
                ]
                for r in range(len(groups))
            ]
        return [
            [
                field.bytes_from_symbols(parity[i, r, : stripes[r]])
                for i in range(self.k)
            ]
            for r in range(len(groups))
        ]

    def recover_stripes(
        self,
        shares: dict[int, np.ndarray],
        lost: list[int] | None = None,
    ) -> dict[int, np.ndarray]:
        """Rebuild lost positions for many groups in one kernel pass.

        ``shares`` maps surviving codeword positions to stacked
        ``(ngroups, L)`` symbol matrices (see :func:`decode_stripes`);
        the result maps each lost position to its rebuilt matrix.
        """
        return decode_stripes(self.field, self.m, self.k, shares, lost, self.kind)

    # ------------------------------------------------------------------
    # incremental path (the steady-state insert/update/delete protocol)
    # ------------------------------------------------------------------
    @staticmethod
    def delta(old: bytes, new: bytes) -> bytes:
        """Δ-record payload for a change at one data position."""
        return delta_payload(old, new)

    def new_parity_accumulator(self, symbol_length: int = 0) -> np.ndarray:
        """Fresh all-zero parity symbol array (an empty group's parity)."""
        return np.zeros(symbol_length, dtype=self.field.symbol_dtype)

    def fold(
        self, acc: np.ndarray, parity_index: int, data_index: int, delta: bytes
    ) -> np.ndarray:
        """Fold a Δ-record into parity ``parity_index``'s accumulator.

        Returns the (possibly grown) accumulator.  Cost model note: the
        coefficient is 1 — pure XOR — whenever ``parity_index == 0`` or
        ``data_index == 0``, thanks to the normalized generator.
        """
        coeff = self.coefficient(parity_index, data_index)
        return fold_delta(self.field, acc, coeff, delta)

    def parity_bytes(self, acc: np.ndarray, byte_length: int) -> bytes:
        """Render a parity accumulator as a byte payload of given length."""
        needed = self.field.symbol_length_for_bytes(byte_length)
        if needed > len(acc):
            grown = np.zeros(needed, dtype=self.field.symbol_dtype)
            grown[: len(acc)] = acc
            acc = grown
        return self.field.bytes_from_symbols(acc, byte_length)

    def __repr__(self) -> str:
        return (
            f"RSCodec(m={self.m}, k={self.k}, field={self.field!r}, "
            f"kind={self.kind!r})"
        )
