"""Erasure decoding: rebuild lost record-group members.

Codeword positions are numbered 0..m-1 for the data slots and m..m+k-1
for the parity slots.  Given any m surviving positions, decoding builds
the m x m matrix of the corresponding generator rows, inverts it once per
failure pattern (cached), and reconstructs the data symbol-wise; lost
parity positions are then re-encoded from the recovered data.

The single-data-loss fast path — XOR the surviving data with parity 0 —
falls out naturally because parity row 0 is all ones; it is implemented
explicitly so the cost difference is measurable (experiment E7).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.gf.field import GF
from repro.gf.matrix import GFMatrix
from repro.rs.generator import generator_matrix, parity_matrix


class DecodeError(ValueError):
    """Raised when the surviving positions cannot determine the data."""


@lru_cache(maxsize=4096)
def _decode_matrix(
    width: int, m: int, k: int, kind: str, rows: tuple[int, ...]
) -> GFMatrix:
    """Inverse of the m x m generator-row submatrix for chosen positions."""
    field = GF(width)
    gen = generator_matrix(field, m, k, kind)
    return gen.take_rows(rows).inverse()


def select_rows(available: set[int], m: int) -> tuple[int, ...]:
    """Pick m positions to decode from, preferring data positions.

    Data rows of the generator are unit vectors, so favoring them keeps
    the decode matrix close to the identity and the symbol work minimal.
    """
    data = sorted(p for p in available if p < m)
    parity = sorted(p for p in available if p >= m)
    chosen = (data + parity)[:m]
    if len(chosen) < m:
        raise DecodeError(
            f"only {len(chosen)} of the required {m} positions survive"
        )
    return tuple(chosen)


def decode_symbols(
    field: GF,
    m: int,
    k: int,
    shares: dict[int, np.ndarray],
    lost: list[int] | None = None,
    kind: str = "cauchy",
) -> dict[int, np.ndarray]:
    """Reconstruct lost codeword positions from surviving symbol arrays.

    ``shares`` maps surviving positions to equal-length symbol arrays;
    ``lost`` lists the positions to rebuild (default: all missing ones).
    Returns ``{position: symbols}`` for each requested lost position.
    Raises :class:`DecodeError` when fewer than m positions survive.
    """
    all_positions = set(range(m + k))
    available = set(shares)
    if not available <= all_positions:
        raise ValueError(f"share positions {available - all_positions} out of range")
    if lost is None:
        lost = sorted(all_positions - available)
    if not lost:
        return {}
    if set(lost) & available:
        raise ValueError("a position cannot be both lost and available")

    lengths = {len(v) for v in shares.values()}
    if len(lengths) != 1:
        raise ValueError("all shares must have the same symbol length")
    (length,) = lengths

    lost_data = [p for p in lost if p < m]
    lost_parity = [p for p in lost if p >= m]

    # Fast path: exactly one data position lost and parity 0 available —
    # plain XOR, no matrix inversion (parity row 0 is all ones).
    data_present = [p for p in sorted(available) if p < m]
    if (
        len(lost_data) == 1
        and m in available
        and len(data_present) == m - 1
    ):
        acc = shares[m].astype(field.symbol_dtype, copy=True)
        for p in data_present:
            acc ^= shares[p].astype(field.symbol_dtype, copy=False)
        recovered = {lost_data[0]: acc}
    elif lost_data:
        rows = select_rows(available, m)
        inverse = _decode_matrix(field.width, m, k, kind, rows)
        data = _solve(field, inverse, [shares[r] for r in rows], lost_data, length)
        recovered = data
    else:
        recovered = {}

    if lost_parity:
        # Re-encoding parity needs the full data vector; decode any data
        # positions that are neither available nor already recovered.
        missing = [j for j in range(m) if j not in shares and j not in recovered]
        if missing:
            rows = select_rows(available, m)
            inverse = _decode_matrix(field.width, m, k, kind, rows)
            recovered.update(
                _solve(field, inverse, [shares[r] for r in rows], missing, length)
            )
        full_data = [shares.get(j, recovered.get(j)) for j in range(m)]
        p_matrix = parity_matrix(field, m, k, kind)
        for p in lost_parity:
            acc = np.zeros(length, dtype=field.symbol_dtype)
            for j in range(m):
                coeff = p_matrix[p - m, j]
                if coeff == 1:
                    acc ^= full_data[j].astype(field.symbol_dtype, copy=False)
                elif coeff:
                    acc ^= field.mul_symbols(full_data[j], coeff)
            recovered[p] = acc

    return {p: recovered[p] for p in lost}


def decode_stripes(
    field: GF,
    m: int,
    k: int,
    shares: dict[int, np.ndarray],
    lost: list[int] | None = None,
    kind: str = "cauchy",
) -> dict[int, np.ndarray]:
    """Reconstruct lost positions for *many* record groups at once.

    The batch counterpart of :func:`decode_symbols` (which remains the
    scalar oracle).  ``shares`` maps each surviving codeword position to
    a stacked ``(nranks, L)`` matrix — row r is that position's symbols
    for the r-th record group, zero-padded to the common stripe length L.
    Returns ``{position: (nranks, L) matrix}`` for each requested lost
    position.  The whole rebuild costs O(matrix coefficients) kernel
    dispatches instead of O(ranks): the decode matrix is inverted once
    per failure pattern (cached) and applied to the stacked tensor with
    :meth:`GF.gf_matmul`; the single-data-loss XOR fast path reduces the
    stack with one ``bitwise_xor.reduce`` pass.
    """
    all_positions = set(range(m + k))
    available = set(shares)
    if not available <= all_positions:
        raise ValueError(f"share positions {available - all_positions} out of range")
    if lost is None:
        lost = sorted(all_positions - available)
    if not lost:
        return {}
    if set(lost) & available:
        raise ValueError("a position cannot be both lost and available")

    shares = {
        pos: np.asarray(matrix, dtype=field.symbol_dtype)
        for pos, matrix in shares.items()
    }
    shapes = {matrix.shape for matrix in shares.values()}
    if len(shapes) != 1:
        raise ValueError("all stacked shares must have the same shape")
    (shape,) = shapes
    if len(shape) != 2:
        raise ValueError("decode_stripes expects (nranks, L) share matrices")

    lost_data = [p for p in lost if p < m]
    lost_parity = [p for p in lost if p >= m]

    # Fast path: exactly one data position lost and parity 0 available —
    # one XOR-reduce over the stacked survivors, no matrix inversion.
    data_present = [p for p in sorted(available) if p < m]
    if (
        len(lost_data) == 1
        and m in available
        and len(data_present) == m - 1
    ):
        stack = np.stack([shares[m]] + [shares[p] for p in data_present])
        recovered = {lost_data[0]: np.bitwise_xor.reduce(stack, axis=0)}
    elif lost_data:
        rows = select_rows(available, m)
        inverse = _decode_matrix(field.width, m, k, kind, rows)
        rhs = np.stack([shares[r] for r in rows])
        solved = field.gf_matmul(inverse.data[lost_data, :], rhs)
        recovered = dict(zip(lost_data, solved))
    else:
        recovered = {}

    if lost_parity:
        missing = [j for j in range(m) if j not in shares and j not in recovered]
        if missing:
            rows = select_rows(available, m)
            inverse = _decode_matrix(field.width, m, k, kind, rows)
            rhs = np.stack([shares[r] for r in rows])
            solved = field.gf_matmul(inverse.data[missing, :], rhs)
            recovered.update(dict(zip(missing, solved)))
        full_data = np.stack(
            [shares.get(j, recovered.get(j)) for j in range(m)]
        )
        p_matrix = parity_matrix(field, m, k, kind)
        wanted_rows = [p - m for p in lost_parity]
        solved = field.gf_matmul(p_matrix.data[wanted_rows, :], full_data)
        recovered.update(dict(zip(lost_parity, solved)))

    return {p: recovered[p] for p in lost}


def _solve(
    field: GF,
    inverse: GFMatrix,
    rhs: list[np.ndarray],
    wanted: list[int],
    length: int,
) -> dict[int, np.ndarray]:
    """Compute ``data[w] = sum_j inverse[w][j] * rhs[j]`` for wanted rows."""
    out: dict[int, np.ndarray] = {}
    for w in wanted:
        acc = np.zeros(length, dtype=field.symbol_dtype)
        for j in range(inverse.cols):
            coeff = inverse[w, j]
            if coeff == 1:
                acc ^= rhs[j].astype(field.symbol_dtype, copy=False)
            elif coeff:
                acc ^= field.mul_symbols(rhs[j], coeff)
        out[w] = acc
    return out
