"""Log/antilog table construction for GF(2^w).

The multiplicative group of GF(2^w) is cyclic of order 2^w - 1, generated
by alpha = x (the class of the polynomial x modulo the primitive
polynomial).  We tabulate

* ``exp[i] = alpha^i``   for i in [0, 2^w - 2]  (duplicated once so that
  ``exp[log[a] + log[b]]`` needs no modulo when both logs are in range), and
* ``log[alpha^i] = i``   with ``log[0]`` left as a sentinel.

These tables make multiplication two lookups and one addition, which is
how the paper's C implementation works and what we vectorize with numpy.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any

import numpy as np
import numpy.typing as npt

#: Primitive polynomials (with the x^w term included) for the supported
#: widths.  These are the conventional choices used by most RS codecs.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    4: 0x13,      # x^4 + x + 1
    8: 0x11D,     # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,  # x^16 + x^12 + x^3 + x + 1
}

#: Sentinel stored at ``log[0]``; any arithmetic that would consult it is a
#: bug, so it is chosen large enough to index out of the exp table's valid
#: doubled range and fail loudly in tests.
LOG_ZERO_SENTINEL = 1 << 30


@lru_cache(maxsize=None)
def build_mul_tables(width: int) -> tuple[npt.NDArray[Any], npt.NDArray[Any]]:
    """Return the branch-free ``(exp_mul, log_mul)`` multiplication tables.

    The scalar tables from :func:`build_tables` leave ``log[0]`` as a
    loud out-of-range sentinel, which forces every vectorized multiply to
    mask zeros in and out (two ``np.where`` passes).  This layout instead
    makes zero *algebraically safe* in a single gather:

    * ``log_mul[0] = 2 * (2^w - 1) - 1`` — larger than any sum of two
      genuine logs (each at most ``2^w - 2``), and
    * ``exp_mul`` is extended so every index reachable with at least one
      zero operand (``>= 2^w - 1 + (2^w - 1) - 1``) holds 0.

    ``exp_mul[log_mul[a] + log_mul[b]]`` is then ``a * b`` for *all*
    field elements, zeros included — one fancy-index per multiply.
    ``exp_mul`` is stored in the field's symbol dtype so kernel outputs
    need no cast; ``log_mul`` is int32 (max value fits comfortably).
    """
    exp, log = build_tables(width)
    group = (1 << width) - 1
    log_zero = 2 * group - 1
    exp_mul = np.zeros(2 * log_zero + 1, dtype=np.uint8 if width <= 8 else np.uint16)
    exp_mul[: 2 * group - 1] = exp[: 2 * group - 1]
    log_mul = log.astype(np.int32)
    log_mul[0] = log_zero
    return exp_mul, log_mul


@lru_cache(maxsize=None)
def build_tables(width: int) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Return ``(exp, log)`` tables for GF(2^width).

    ``exp`` has length ``2 * (2^w - 1)`` (the cycle repeated twice) so that
    products of two valid logs index it directly.  ``log`` has length
    ``2^w`` with ``log[0] = LOG_ZERO_SENTINEL``.

    Raises ``ValueError`` for unsupported widths.
    """
    if width not in PRIMITIVE_POLYNOMIALS:
        raise ValueError(
            f"unsupported field width {width!r}; supported: "
            f"{sorted(PRIMITIVE_POLYNOMIALS)}"
        )
    poly = PRIMITIVE_POLYNOMIALS[width]
    order = 1 << width
    group = order - 1

    exp = np.zeros(2 * group, dtype=np.int64)
    log = np.full(order, LOG_ZERO_SENTINEL, dtype=np.int64)

    value = 1
    for i in range(group):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & order:
            value ^= poly
    if value != 1:  # pragma: no cover - sanity check on the polynomial
        raise AssertionError(f"polynomial {poly:#x} is not primitive for w={width}")
    exp[group:] = exp[:group]
    return exp, log
