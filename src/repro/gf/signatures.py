"""Algebraic signatures over GF(2^w).

The LH*RS authors' follow-on work (Litwin & Schwarz) introduced
*algebraic signatures* for cheap integrity checking of distributed
data: the signature of a symbol string ``d_0..d_{n-1}`` is

    sig_alpha(d) = XOR_i  d_i * alpha^i

for a primitive element alpha.  Two properties make them ideal for
auditing an RS-coded store:

* **GF-linearity** — ``sig(x XOR y) = sig(x) XOR sig(y)`` and
  ``sig(λ·x) = λ·sig(x)`` — so signatures *commute with the parity
  calculus*: for parity ``p_i = XOR_j λ_{ij} d_j`` (symbol-wise),
  ``sig(p_i) = XOR_j λ_{ij} sig(d_j)``.  A coordinator can verify a
  whole record group by collecting one w-bit signature per member
  instead of the payloads.
* **Error sensitivity** — any change confined to fewer than 2^w - 1
  trailing symbols changes the signature; random corruption escapes
  detection with probability 2^-w per signature symbol.

``signature_vector`` computes several signatures (alpha, alpha^2, ...)
for stronger detection, as the original papers recommend.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

from repro.gf.field import GF


def signature(field: GF, data: bytes, alpha: int | None = None,
              length: int | None = None) -> int:
    """The algebraic signature of a byte payload (one field symbol).

    ``alpha`` defaults to the field generator.  ``length`` (in symbols)
    pads the payload with zeros first — signatures of record-group
    members must be computed over the stripe length so the linear
    relation with the parity signature holds exactly.
    """
    symbols = field.symbols_from_bytes(data, length)
    if alpha is None:
        alpha = field.exp(1)
    field.check(alpha)
    if alpha == 0:
        raise ValueError("alpha must be a nonzero field element")
    # sig = XOR_i d_i alpha^i, vectorized through the log table:
    # d_i alpha^i = exp((log d_i + i*log alpha) mod (2^w - 1)) for d_i != 0.
    log_alpha = field.log(alpha)
    nonzero = np.nonzero(symbols)[0]
    if len(nonzero) == 0:
        return 0
    logs = field._log[symbols[nonzero]]
    powers = (logs + log_alpha * nonzero.astype(np.int64)) % field.group_order
    terms = field._exp[powers]
    return int(np.bitwise_xor.reduce(terms))


def signature_vector(field: GF, data: bytes, count: int = 2,
                     length: int | None = None) -> tuple[int, ...]:
    """Signatures at alpha, alpha^2, ..., alpha^count (stronger check)."""
    if count < 1:
        raise ValueError("need at least one signature symbol")
    return tuple(
        signature(field, data, alpha=field.exp(power), length=length)
        for power in range(1, count + 1)
    )


def signature_matrix(field: GF, matrix: npt.ArrayLike, count: int = 2,
                     ) -> list[tuple[int, ...]]:
    """Signature vectors for every row of a stacked symbol matrix.

    The batch counterpart of :func:`signature_vector` for contiguous
    stripe stores: one zero-safe table gather + XOR-reduce per signature
    symbol covers the whole bucket.  Trailing zero padding contributes
    nothing to a signature, so rows may be padded to a common width.
    Bit-exact with :func:`signature_vector` per row (the scalar oracle).
    """
    if count < 1:
        raise ValueError("need at least one signature symbol")
    matrix = np.asarray(matrix, dtype=field.symbol_dtype)
    if matrix.ndim != 2:
        raise ValueError("signature_matrix expects an (n, L) symbol matrix")
    n, length = matrix.shape
    if n == 0 or length == 0:
        return [(0,) * count for _ in range(n)]
    indices = np.arange(length, dtype=np.int64)
    out: list[tuple[int, ...]] = []
    columns: list[npt.NDArray[Any]] = []
    for power in range(1, count + 1):
        # alpha^power at position i is exp((power * i) mod (2^w - 1));
        # mul_arrays broadcasts it across every row in one gather.
        alpha_powers = field._exp[(power * indices) % field.group_order]
        terms = field.mul_arrays(matrix, alpha_powers[None, :])
        columns.append(np.bitwise_xor.reduce(terms, axis=1))
    for row in zip(*columns):
        out.append(tuple(int(x) for x in row))
    return out


def combine(field: GF, coefficients: list[int], signatures: list[int]) -> int:
    """``XOR_j λ_j · sig_j`` — what a parity signature must equal."""
    if len(coefficients) != len(signatures):
        raise ValueError("one coefficient per signature")
    out = 0
    for coefficient, sig in zip(coefficients, signatures):
        out ^= field.mul(coefficient, sig)
    return out
