"""Dense matrices over GF(2^w).

The RS generator construction, the per-failure-pattern decode matrices,
and the MDS verification all live on top of this module.  Matrices are
small (m+k is at most a few dozen), so clarity wins over asymptotics:
multiplication and Gauss-Jordan inversion are written directly against the
field's scalar ops, with numpy holding the element grid.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.gf.field import GF, Symbols


class GFMatrix:
    """An immutable-by-convention dense matrix over a :class:`GF`."""

    __slots__ = ("field", "data")

    def __init__(
        self, field: GF, data: "Sequence[Sequence[int]] | npt.NDArray[Any]"
    ) -> None:
        self.field = field
        array = np.array(data, dtype=np.int64)
        if array.ndim != 2:
            raise ValueError("GFMatrix requires a 2-D element grid")
        if array.size and (array.min() < 0 or array.max() >= field.order):
            raise ValueError(f"matrix entries outside GF(2^{field.width})")
        self.data = array

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, field: GF, n: int) -> "GFMatrix":
        """The n x n identity matrix."""
        return cls(field, np.eye(n, dtype=np.int64))

    @classmethod
    def zeros(cls, field: GF, rows: int, cols: int) -> "GFMatrix":
        """The all-zero rows x cols matrix."""
        return cls(field, np.zeros((rows, cols), dtype=np.int64))

    @classmethod
    def vandermonde(cls, field: GF, rows: int, cols: int) -> "GFMatrix":
        """Vandermonde matrix V[i][j] = x_i^j with x_i = i.

        Any ``cols`` rows are linearly independent as long as the x_i are
        distinct, which holds for rows <= field order.
        """
        if rows > field.order:
            raise ValueError("not enough distinct field elements for rows")
        grid = [[field.pow(i, j) for j in range(cols)] for i in range(rows)]
        return cls(field, grid)

    @classmethod
    def cauchy(cls, field: GF, xs: Sequence[int], ys: Sequence[int]) -> "GFMatrix":
        """Cauchy matrix C[i][j] = 1 / (x_i + y_j).

        Requires the x_i distinct, the y_j distinct, and x_i != y_j for all
        pairs (in characteristic 2, x + y = 0 iff x = y).  Every square
        submatrix of a Cauchy matrix is nonsingular — the property LH*RS
        needs from its parity coefficients.
        """
        if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
            raise ValueError("Cauchy points must be distinct within xs and ys")
        if set(xs) & set(ys):
            raise ValueError("Cauchy xs and ys must not intersect")
        grid = [[field.inv(field.add(x, y)) for y in ys] for x in xs]
        return cls(field, grid)

    # ------------------------------------------------------------------
    # shape and access
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def cols(self) -> int:
        return int(self.data.shape[1])

    def __getitem__(self, index: Any) -> "int | GFMatrix":
        value = self.data[index]
        if np.isscalar(value) or value.ndim == 0:
            return int(value)
        return GFMatrix(self.field, np.atleast_2d(value))

    def row(self, i: int) -> list[int]:
        """Row ``i`` as a list of ints."""
        return [int(v) for v in self.data[i]]

    def col(self, j: int) -> list[int]:
        """Column ``j`` as a list of ints."""
        return [int(v) for v in self.data[:, j]]

    def take_rows(self, indices: Sequence[int]) -> "GFMatrix":
        """New matrix made of the given rows, in the given order."""
        return GFMatrix(self.field, self.data[list(indices), :])

    def take_cols(self, indices: Sequence[int]) -> "GFMatrix":
        """New matrix made of the given columns, in the given order."""
        return GFMatrix(self.field, self.data[:, list(indices)])

    def hstack(self, other: "GFMatrix") -> "GFMatrix":
        """Concatenate columns: ``[self | other]``."""
        self._check_field(other)
        return GFMatrix(self.field, np.hstack([self.data, other.data]))

    def transpose(self) -> "GFMatrix":
        return GFMatrix(self.field, self.data.T)

    def copy(self) -> "GFMatrix":
        return GFMatrix(self.field, self.data.copy())

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _check_field(self, other: "GFMatrix") -> None:
        if other.field != self.field:
            raise ValueError("matrices belong to different fields")

    def __add__(self, other: "GFMatrix") -> "GFMatrix":
        self._check_field(other)
        if self.data.shape != other.data.shape:
            raise ValueError("shape mismatch in GF matrix addition")
        return GFMatrix(self.field, self.data ^ other.data)

    def __matmul__(self, other: "GFMatrix") -> "GFMatrix":
        self._check_field(other)
        if self.cols != other.rows:
            raise ValueError(
                f"shape mismatch: ({self.rows}x{self.cols}) @ "
                f"({other.rows}x{other.cols})"
            )
        f = self.field
        out = np.zeros((self.rows, other.cols), dtype=np.int64)
        for i in range(self.rows):
            for j in range(other.cols):
                acc = 0
                for t in range(self.cols):
                    acc ^= f.mul(int(self.data[i, t]), int(other.data[t, j]))
                out[i, j] = acc
        return GFMatrix(f, out)

    def mul_stacked(self, stacked: npt.ArrayLike) -> Symbols:
        """This matrix times a stacked share tensor via the batch kernel.

        ``stacked`` has shape ``(cols, ...)`` — e.g. all ranks of a
        record group as one ``(cols, nranks, L)`` tensor — and the result
        has shape ``(rows, ...)``.  One table gather + XOR per matrix
        entry; see :meth:`GF.gf_matmul`.
        """
        return self.field.gf_matmul(self.data, stacked)

    def mul_vector(self, vector: Sequence[int]) -> list[int]:
        """Matrix-vector product over the field."""
        if len(vector) != self.cols:
            raise ValueError("vector length does not match column count")
        f = self.field
        out: list[int] = []
        for i in range(self.rows):
            acc = 0
            for t in range(self.cols):
                acc ^= f.mul(int(self.data[i, t]), int(vector[t]))
            out.append(acc)
        return out

    def scale_row(self, i: int, scalar: int) -> "GFMatrix":
        """New matrix with row i multiplied by a nonzero scalar."""
        if scalar == 0:
            raise ValueError("row scaling by zero destroys rank")
        grid = self.data.copy()
        f = self.field
        grid[i] = [f.mul(int(v), scalar) for v in grid[i]]
        return GFMatrix(f, grid)

    def scale_col(self, j: int, scalar: int) -> "GFMatrix":
        """New matrix with column j multiplied by a nonzero scalar."""
        if scalar == 0:
            raise ValueError("column scaling by zero destroys rank")
        grid = self.data.copy()
        f = self.field
        grid[:, j] = [f.mul(int(v), scalar) for v in grid[:, j]]
        return GFMatrix(f, grid)

    # ------------------------------------------------------------------
    # elimination
    # ------------------------------------------------------------------
    def inverse(self) -> "GFMatrix":
        """Gauss-Jordan inverse; raises ``ValueError`` if singular."""
        if self.rows != self.cols:
            raise ValueError("only square matrices are invertible")
        f = self.field
        n = self.rows
        a = self.data.copy()
        inv = np.eye(n, dtype=np.int64)
        for col in range(n):
            pivot = next((r for r in range(col, n) if a[r, col]), None)
            if pivot is None:
                raise ValueError("matrix is singular over GF(2^w)")
            if pivot != col:
                a[[col, pivot]] = a[[pivot, col]]
                inv[[col, pivot]] = inv[[pivot, col]]
            scale = f.inv(int(a[col, col]))
            for j in range(n):
                a[col, j] = f.mul(int(a[col, j]), scale)
                inv[col, j] = f.mul(int(inv[col, j]), scale)
            for r in range(n):
                if r == col or not a[r, col]:
                    continue
                factor = int(a[r, col])
                for j in range(n):
                    a[r, j] ^= f.mul(factor, int(a[col, j]))
                    inv[r, j] ^= f.mul(factor, int(inv[col, j]))
        return GFMatrix(f, inv)

    def rank(self) -> int:
        """Rank over the field via row echelon reduction."""
        f = self.field
        a = self.data.copy()
        rank = 0
        for col in range(self.cols):
            pivot = next((r for r in range(rank, self.rows) if a[r, col]), None)
            if pivot is None:
                continue
            if pivot != rank:
                a[[rank, pivot]] = a[[pivot, rank]]
            scale = f.inv(int(a[rank, col]))
            a[rank] = [f.mul(int(v), scale) for v in a[rank]]
            for r in range(self.rows):
                if r == rank or not a[r, col]:
                    continue
                factor = int(a[r, col])
                for j in range(self.cols):
                    a[r, j] ^= f.mul(factor, int(a[rank, j]))
            rank += 1
            if rank == self.rows:
                break
        return rank

    def is_nonsingular(self) -> bool:
        """True iff square and full-rank."""
        return self.rows == self.cols and self.rank() == self.rows

    def systematize(self) -> "GFMatrix":
        """Column-reduce so the top square block becomes the identity.

        For a tall ``(m+k) x m`` Vandermonde this yields a systematic MDS
        generator whose bottom ``k x m`` block is the parity submatrix.
        """
        if self.rows < self.cols:
            raise ValueError("systematize expects rows >= cols")
        f = self.field
        a = self.data.copy()
        n = self.cols
        for col in range(n):
            pivot = next((c for c in range(col, n) if a[col, c]), None)
            if pivot is None:
                raise ValueError("top block is singular; cannot systematize")
            if pivot != col:
                a[:, [col, pivot]] = a[:, [pivot, col]]
            scale = f.inv(int(a[col, col]))
            a[:, col] = [f.mul(int(v), scale) for v in a[:, col]]
            for c in range(n):
                if c == col or not a[col, c]:
                    continue
                factor = int(a[col, c])
                for r in range(self.rows):
                    a[r, c] ^= f.mul(factor, int(a[r, col]))
        return GFMatrix(f, a)

    # ------------------------------------------------------------------
    # MDS verification
    # ------------------------------------------------------------------
    def all_square_submatrices_nonsingular(self) -> bool:
        """Exhaustively verify every square submatrix is nonsingular.

        This is the defining property of an LH*RS parity matrix: it makes
        [I | P^T] MDS, i.e. any k losses recoverable.  Exponential in the
        matrix size — use on the small parity matrices only (tests do).
        """
        from itertools import combinations

        for size in range(1, min(self.rows, self.cols) + 1):
            for rsel in combinations(range(self.rows), size):
                for csel in combinations(range(self.cols), size):
                    if not self.take_rows(rsel).take_cols(csel).is_nonsingular():
                        return False
        return True

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GFMatrix)
            and other.field == self.field
            and other.data.shape == self.data.shape
            and bool((other.data == self.data).all())
        )

    def __hash__(self) -> int:  # pragma: no cover - matrices rarely hashed
        return hash((self.field, self.data.tobytes(), self.data.shape))

    def __repr__(self) -> str:
        return f"GFMatrix({self.field!r}, {self.data.tolist()!r})"
