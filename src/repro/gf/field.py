"""The GF(2^w) field object: scalar and vectorized payload arithmetic.

Record payloads in LH*RS are byte strings.  The RS calculus views a payload
as a vector of field symbols: one byte per symbol for GF(2^8), two bytes
(little-endian) for GF(2^16), and two symbols per byte for GF(2^4).  All
per-payload operations are numpy-vectorized; the per-call overhead is paid
once per record, not once per symbol, mirroring the table-driven C codec
of the paper.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.gf.tables import PRIMITIVE_POLYNOMIALS, build_mul_tables, build_tables

#: Symbol arrays carry uint8 or uint16 elements depending on the field
#: width; the dtype is a per-instance property, so the static type stays
#: width-generic.
Symbols = npt.NDArray[Any]

_SYMBOL_DTYPES: dict[int, type[np.generic]] = {
    4: np.uint8, 8: np.uint8, 16: np.uint16,
}


class GF:
    """Finite field GF(2^width) for width in {4, 8, 16}.

    Instances are cheap, stateless beyond cached tables, and safe to share.
    Elements are plain Python ints (or numpy integer arrays) in
    ``[0, 2^width)``.
    """

    __slots__ = (
        "width", "order", "group_order", "_exp", "_log",
        "_exp_mul", "_log_mul", "_mul_rows", "_pair_rows",
    )

    def __init__(self, width: int = 8) -> None:
        if width not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(
                f"unsupported field width {width!r}; supported: "
                f"{sorted(PRIMITIVE_POLYNOMIALS)}"
            )
        self.width = width
        self.order = 1 << width
        self.group_order = self.order - 1
        self._exp, self._log = build_tables(width)
        self._exp_mul, self._log_mul = build_mul_tables(width)
        # Per-scalar full multiplication rows (lazy); only worthwhile for
        # small fields where a row is tiny (16 or 256 entries).
        self._mul_rows: dict[int, Symbols] = {}
        # Per-scalar byte-*pair* rows for GF(2^8): 65536 uint16 entries
        # mapping a little-endian symbol pair to its scaled pair, so the
        # batch kernels gather half as many elements per coefficient.
        self._pair_rows: dict[int, Symbols] = {}

    # ------------------------------------------------------------------
    # scalar arithmetic
    # ------------------------------------------------------------------
    def check(self, a: int) -> int:
        """Validate that ``a`` is a field element and return it."""
        if not 0 <= a < self.order:
            raise ValueError(f"{a!r} is not an element of GF(2^{self.width})")
        return a

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR); identical to subtraction."""
        return self.check(a) ^ self.check(b)

    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        self.check(a)
        self.check(b)
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ``ZeroDivisionError`` on b=0."""
        self.check(a)
        self.check(b)
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^w)")
        if a == 0:
            return 0
        return int(self._exp[self._log[a] - self._log[b] + self.group_order])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ``ZeroDivisionError`` on a=0."""
        self.check(a)
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^w)")
        return int(self._exp[self.group_order - self._log[a]])

    def pow(self, a: int, e: int) -> int:
        """``a`` raised to integer power ``e`` (e may be negative)."""
        self.check(a)
        if a == 0:
            if e < 0:
                raise ZeroDivisionError("0 has no negative powers in GF(2^w)")
            return 0 if e else 1
        return int(self._exp[(self._log[a] * e) % self.group_order])

    def exp(self, e: int) -> int:
        """``alpha^e`` for the field generator alpha."""
        return int(self._exp[e % self.group_order])

    def log(self, a: int) -> int:
        """Discrete log base alpha; raises on a=0."""
        self.check(a)
        if a == 0:
            raise ValueError("log(0) is undefined in GF(2^w)")
        return int(self._log[a])

    # ------------------------------------------------------------------
    # vectorized symbol arithmetic
    # ------------------------------------------------------------------
    @property
    def symbol_dtype(self) -> type[np.generic]:
        """numpy dtype used for symbol arrays of this field."""
        return _SYMBOL_DTYPES[self.width]

    def mul_row(self, scalar: int) -> Symbols:
        """Full product row ``[scalar * x for x in field]`` (w <= 8 only).

        Cached per scalar; turns scalar-vector multiplication into a single
        fancy-indexing lookup, the fastest path for GF(2^8) payload work.
        """
        self.check(scalar)
        if self.width > 8:
            raise ValueError("mul_row is only sensible for widths <= 8")
        row = self._mul_rows.get(scalar)
        if row is None:
            xs = np.arange(self.order, dtype=np.int64)
            row = self._mul_symbols_log(xs, scalar).astype(self.symbol_dtype)
            self._mul_rows[scalar] = row
        return row

    def mul_pair_row(self, scalar: int) -> Symbols:
        """Product table over byte *pairs* for GF(2^8) (65536 uint16 entries).

        ``mul_pair_row(a)[x0 | (x1 << 8)] == (a*x0) | ((a*x1) << 8)``, so
        a contiguous even-length uint8 symbol block viewed as ``<u2``
        multiplies with half the gathered elements of :meth:`mul_row` —
        the per-coefficient kernel of :meth:`gf_matmul`.
        """
        if self.width != 8:
            raise ValueError("mul_pair_row is specific to GF(2^8)")
        pair = self._pair_rows.get(scalar)
        if pair is None:
            row = self.mul_row(scalar).astype(np.uint16)
            pair = ((row << 8)[:, None] | row[None, :]).reshape(-1)
            self._pair_rows[scalar] = pair
        return pair

    def _mul_symbols_log(self, symbols: Symbols, scalar: int) -> Symbols:
        """Multiply a symbol array by a scalar via log tables (any width)."""
        if scalar == 0:
            return np.zeros_like(symbols)
        # log[0] is a huge sentinel; substitute 0 to keep indexing in
        # bounds, then mask products of zero inputs back to zero.
        safe = np.where(symbols == 0, 0, self._log[symbols])
        out = self._exp[safe + self._log[scalar]]
        return np.where(symbols == 0, 0, out)

    def mul_symbols(self, symbols: npt.ArrayLike, scalar: int) -> Symbols:
        """Return ``scalar * symbols`` as a new symbol-dtype array.

        Works on arrays of any shape (the table gathers are elementwise).
        Wide fields use the zero-safe table layout from
        :func:`~repro.gf.tables.build_mul_tables`: a single
        ``exp_mul[log_mul[x] + log_mul[s]]`` gather, no masking passes.
        """
        self.check(scalar)
        symbols = np.asarray(symbols)
        if scalar == 0:
            return np.zeros(symbols.shape, dtype=self.symbol_dtype)
        if scalar == 1:
            return symbols.astype(self.symbol_dtype, copy=True)
        if self.width <= 8:
            return self.mul_row(scalar)[symbols]
        return self._exp_mul[self._log_mul[symbols] + self._log_mul[scalar]]

    def mul_matrix(self, symbols_2d: npt.ArrayLike, scalar: int) -> Symbols:
        """``scalar * symbols_2d`` for a stacked (rows x length) matrix.

        The batch counterpart of :meth:`mul_symbols`: one table gather
        covers every row, so the per-call dispatch cost is paid once per
        *matrix*, not once per record.
        """
        symbols_2d = np.asarray(symbols_2d)
        if symbols_2d.ndim != 2:
            raise ValueError("mul_matrix expects a 2-D (rows x length) matrix")
        return self.mul_symbols(symbols_2d, scalar)

    def mul_arrays(self, a: npt.ArrayLike, b: npt.ArrayLike) -> Symbols:
        """Elementwise field product of two symbol arrays (any shape).

        Enabled by the zero-safe table layout: one gather handles zeros
        in either operand.  Used by the vectorized signature scans.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        return self._exp_mul[self._log_mul[a] + self._log_mul[b]]

    def gf_matmul(self, coefficients: Any, stacked: npt.ArrayLike) -> Symbols:
        """Multiply a coefficient matrix against a stacked share tensor.

        ``coefficients`` is an (r x c) grid of field scalars (a nested
        list, numpy array, or a :class:`~repro.gf.matrix.GFMatrix`'s
        ``.data``); ``stacked`` is a (c, ...) symbol tensor whose leading
        axis indexes shares — typically ``(c, nranks, L)`` with one row
        per record group.  Returns the (r, ...) tensor

            ``out[i] = XOR_j coefficients[i][j] * stacked[j]``

        computed with one table gather + XOR per *coefficient* instead of
        per record: the 2D batch kernel every bulk encode/decode path
        rides on.  Zero coefficients are skipped and unit coefficients
        degrade to plain XOR, so the normalized generator's XOR row stays
        a pure-XOR pass.
        """
        coeff = np.asarray(
            getattr(coefficients, "data", coefficients), dtype=np.int64
        )
        if coeff.ndim != 2:
            raise ValueError("gf_matmul expects a 2-D coefficient matrix")
        stacked = np.asarray(stacked, dtype=self.symbol_dtype)
        if stacked.ndim < 1 or stacked.shape[0] != coeff.shape[1]:
            raise ValueError(
                f"stacked tensor has {stacked.shape[0] if stacked.ndim else 0} "
                f"shares but the coefficient matrix has {coeff.shape[1]} columns"
            )
        out = np.zeros((coeff.shape[0],) + stacked.shape[1:], dtype=self.symbol_dtype)
        # GF(2^8) blocks with an even trailing axis gather two symbols
        # per table lookup through the uint16 pair rows.
        pairs = (
            self.width == 8
            and stacked.ndim >= 2
            and stacked.shape[-1] % 2 == 0
            and stacked.flags.c_contiguous
        )
        # np.take(..., mode="clip") skips the bounds check a fancy index
        # pays (indices are in range by construction: symbols index full
        # product tables, log sums stay inside the extended exp table).
        for i in range(coeff.shape[0]):
            for j in range(coeff.shape[1]):
                a = int(coeff[i, j])
                if a == 0:
                    continue
                if a == 1:
                    out[i] ^= stacked[j]
                elif pairs:
                    target = out[i].view("<u2")
                    target ^= np.take(
                        self.mul_pair_row(a), stacked[j].view("<u2"),
                        mode="clip",
                    )
                elif self.width <= 8:
                    out[i] ^= np.take(self.mul_row(a), stacked[j], mode="clip")
                else:
                    logs = np.take(self._log_mul, stacked[j], mode="clip")
                    out[i] ^= np.take(
                        self._exp_mul, logs + int(self._log_mul[a]),
                        mode="clip",
                    )
        return out

    # ------------------------------------------------------------------
    # byte payload arithmetic
    # ------------------------------------------------------------------
    def symbols_per_byte(self) -> float:
        """How many field symbols one payload byte carries."""
        return 8.0 / self.width

    def symbols_from_bytes(self, data: bytes, length: int | None = None) -> Symbols:
        """View ``data`` as a symbol array, zero-padded to ``length`` symbols.

        GF(2^16) payloads of odd byte length are padded with a zero byte;
        GF(2^4) bytes split into (low, high) nibble pairs.
        """
        raw = np.frombuffer(data, dtype=np.uint8)
        if self.width == 8:
            symbols = raw
        elif self.width == 16:
            if len(raw) % 2:
                raw = np.concatenate([raw, np.zeros(1, dtype=np.uint8)])
            symbols = raw.view("<u2")
        else:  # width == 4: two symbols per byte, low nibble first
            symbols = np.empty(2 * len(raw), dtype=np.uint8)
            symbols[0::2] = raw & 0x0F
            symbols[1::2] = raw >> 4
        if length is not None:
            if length < len(symbols):
                raise ValueError("target length shorter than payload")
            padded = np.zeros(length, dtype=self.symbol_dtype)
            padded[: len(symbols)] = symbols
            return padded
        return symbols.astype(self.symbol_dtype, copy=True)

    def bytes_from_symbols(self, symbols: npt.ArrayLike, byte_length: int | None = None) -> bytes:
        """Inverse of :meth:`symbols_from_bytes`, truncated to ``byte_length``."""
        symbols = np.ascontiguousarray(symbols, dtype=self.symbol_dtype)
        if self.width == 8:
            raw = symbols.view(np.uint8)
        elif self.width == 16:
            raw = symbols.astype("<u2").view(np.uint8)
        else:
            if len(symbols) % 2:
                symbols = np.concatenate(
                    [symbols, np.zeros(1, dtype=self.symbol_dtype)]
                )
            raw = (symbols[0::2] | (symbols[1::2] << 4)).astype(np.uint8)
        data = raw.tobytes()
        if byte_length is not None:
            data = data[:byte_length]
        return data

    def symbol_length_for_bytes(self, nbytes: int) -> int:
        """Number of symbols needed to carry ``nbytes`` payload bytes."""
        if self.width == 8:
            return nbytes
        if self.width == 16:
            return (nbytes + 1) // 2
        return 2 * nbytes

    def add_bytes(self, a: bytes, b: bytes) -> bytes:
        """XOR two payloads, the shorter zero-padded (paper's padding rule).

        Runs through arbitrary-precision int XOR: little-endian conversion
        zero-extends the shorter payload for free and the XOR itself is a
        single C-level pass instead of a Python byte loop.
        """
        if len(a) < len(b):
            a, b = b, a
        if not b:
            return bytes(a)
        return (
            int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
        ).to_bytes(len(a), "little")

    def stack_payloads(
        self, payloads: Sequence[bytes | None], length: int
    ) -> Symbols:
        """Pack byte payloads into one (n x length) zero-padded symbol matrix.

        ``None`` (or empty) entries become all-zero rows — the padding
        rule for unoccupied group slots.  This is the packing step in
        front of every 2D kernel: one contiguous allocation for the whole
        batch instead of one array per record.  The result may be
        read-only (it can alias the joined input bytes); the kernels only
        read their stacked operands.
        """
        bytes_per_row = length if self.width == 8 else (
            2 * length if self.width == 16 else (length + 1) // 2
        )
        uniform = [
            p for p in payloads
            if p is not None and len(p) == bytes_per_row
        ]
        if self.width in (8, 16) and payloads and len(uniform) == len(payloads):
            # Uniform full-width payloads (bulk encodes of fixed-size
            # records): one join + one memcpy instead of a per-row loop.
            raw = np.frombuffer(b"".join(uniform), dtype=np.uint8).reshape(
                len(payloads), bytes_per_row
            )
        else:
            raw = np.zeros((len(payloads), bytes_per_row), dtype=np.uint8)
            for row, payload in enumerate(payloads):
                if not payload:
                    continue
                if self.symbol_length_for_bytes(len(payload)) > length:
                    raise ValueError(
                        "payload longer than the stripe symbol length"
                    )
                raw[row, : len(payload)] = np.frombuffer(payload, dtype=np.uint8)
        if self.width == 8:
            return raw
        if self.width == 16:
            return raw.view("<u2")
        symbols = np.empty((len(payloads), length), dtype=np.uint8)
        symbols[:, 0::2] = (raw & 0x0F)[:, : (length + 1) // 2]
        symbols[:, 1::2] = (raw >> 4)[:, : length // 2]
        return symbols

    def scale_accumulate(self, acc: Symbols, scalar: int, data: bytes) -> None:
        """In-place ``acc ^= scalar * symbols(data)`` (the Δ-record fold).

        ``acc`` must be a symbol array at least as long as the payload.
        This is the hot inner operation of parity maintenance: one call per
        (record, parity bucket) pair.
        """
        if scalar == 0 or not data:
            return
        symbols = self.symbols_from_bytes(data)
        if len(symbols) > len(acc):
            raise ValueError(
                f"payload of {len(symbols)} symbols exceeds accumulator "
                f"of {len(acc)}"
            )
        if scalar == 1:
            acc[: len(symbols)] ^= symbols
        else:
            acc[: len(symbols)] ^= self.mul_symbols(symbols, scalar)

    def __repr__(self) -> str:
        return f"GF(2^{self.width})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("GF", self.width))
