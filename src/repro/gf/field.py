"""The GF(2^w) field object: scalar and vectorized payload arithmetic.

Record payloads in LH*RS are byte strings.  The RS calculus views a payload
as a vector of field symbols: one byte per symbol for GF(2^8), two bytes
(little-endian) for GF(2^16), and two symbols per byte for GF(2^4).  All
per-payload operations are numpy-vectorized; the per-call overhead is paid
once per record, not once per symbol, mirroring the table-driven C codec
of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.gf.tables import PRIMITIVE_POLYNOMIALS, build_tables

_SYMBOL_DTYPES = {4: np.uint8, 8: np.uint8, 16: np.uint16}


class GF:
    """Finite field GF(2^width) for width in {4, 8, 16}.

    Instances are cheap, stateless beyond cached tables, and safe to share.
    Elements are plain Python ints (or numpy integer arrays) in
    ``[0, 2^width)``.
    """

    __slots__ = ("width", "order", "group_order", "_exp", "_log", "_mul_rows")

    def __init__(self, width: int = 8):
        if width not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(
                f"unsupported field width {width!r}; supported: "
                f"{sorted(PRIMITIVE_POLYNOMIALS)}"
            )
        self.width = width
        self.order = 1 << width
        self.group_order = self.order - 1
        self._exp, self._log = build_tables(width)
        # Per-scalar full multiplication rows (lazy); only worthwhile for
        # small fields where a row is tiny (16 or 256 entries).
        self._mul_rows: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # scalar arithmetic
    # ------------------------------------------------------------------
    def check(self, a: int) -> int:
        """Validate that ``a`` is a field element and return it."""
        if not 0 <= a < self.order:
            raise ValueError(f"{a!r} is not an element of GF(2^{self.width})")
        return a

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR); identical to subtraction."""
        return self.check(a) ^ self.check(b)

    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        self.check(a)
        self.check(b)
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ``ZeroDivisionError`` on b=0."""
        self.check(a)
        self.check(b)
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^w)")
        if a == 0:
            return 0
        return int(self._exp[self._log[a] - self._log[b] + self.group_order])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ``ZeroDivisionError`` on a=0."""
        self.check(a)
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^w)")
        return int(self._exp[self.group_order - self._log[a]])

    def pow(self, a: int, e: int) -> int:
        """``a`` raised to integer power ``e`` (e may be negative)."""
        self.check(a)
        if a == 0:
            if e < 0:
                raise ZeroDivisionError("0 has no negative powers in GF(2^w)")
            return 0 if e else 1
        return int(self._exp[(self._log[a] * e) % self.group_order])

    def exp(self, e: int) -> int:
        """``alpha^e`` for the field generator alpha."""
        return int(self._exp[e % self.group_order])

    def log(self, a: int) -> int:
        """Discrete log base alpha; raises on a=0."""
        self.check(a)
        if a == 0:
            raise ValueError("log(0) is undefined in GF(2^w)")
        return int(self._log[a])

    # ------------------------------------------------------------------
    # vectorized symbol arithmetic
    # ------------------------------------------------------------------
    @property
    def symbol_dtype(self) -> type:
        """numpy dtype used for symbol arrays of this field."""
        return _SYMBOL_DTYPES[self.width]

    def mul_row(self, scalar: int) -> np.ndarray:
        """Full product row ``[scalar * x for x in field]`` (w <= 8 only).

        Cached per scalar; turns scalar-vector multiplication into a single
        fancy-indexing lookup, the fastest path for GF(2^8) payload work.
        """
        self.check(scalar)
        if self.width > 8:
            raise ValueError("mul_row is only sensible for widths <= 8")
        row = self._mul_rows.get(scalar)
        if row is None:
            xs = np.arange(self.order, dtype=np.int64)
            row = self._mul_symbols_log(xs, scalar).astype(self.symbol_dtype)
            self._mul_rows[scalar] = row
        return row

    def _mul_symbols_log(self, symbols: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply a symbol array by a scalar via log tables (any width)."""
        if scalar == 0:
            return np.zeros_like(symbols)
        # log[0] is a huge sentinel; substitute 0 to keep indexing in
        # bounds, then mask products of zero inputs back to zero.
        safe = np.where(symbols == 0, 0, self._log[symbols])
        out = self._exp[safe + self._log[scalar]]
        return np.where(symbols == 0, 0, out)

    def mul_symbols(self, symbols: np.ndarray, scalar: int) -> np.ndarray:
        """Return ``scalar * symbols`` as a new symbol-dtype array."""
        self.check(scalar)
        symbols = np.asarray(symbols)
        if scalar == 0:
            return np.zeros(symbols.shape, dtype=self.symbol_dtype)
        if scalar == 1:
            return symbols.astype(self.symbol_dtype, copy=True)
        if self.width <= 8:
            return self.mul_row(scalar)[symbols]
        logs = self._log[symbols]
        # Replace the zero sentinel with 0 before the add so indexing stays
        # in-bounds, then mask products of zeros back to zero.
        safe = np.where(symbols == 0, 0, logs)
        out = self._exp[safe + self._log[scalar]]
        return np.where(symbols == 0, 0, out).astype(self.symbol_dtype)

    # ------------------------------------------------------------------
    # byte payload arithmetic
    # ------------------------------------------------------------------
    def symbols_per_byte(self) -> float:
        """How many field symbols one payload byte carries."""
        return 8.0 / self.width

    def symbols_from_bytes(self, data: bytes, length: int | None = None) -> np.ndarray:
        """View ``data`` as a symbol array, zero-padded to ``length`` symbols.

        GF(2^16) payloads of odd byte length are padded with a zero byte;
        GF(2^4) bytes split into (low, high) nibble pairs.
        """
        raw = np.frombuffer(data, dtype=np.uint8)
        if self.width == 8:
            symbols = raw
        elif self.width == 16:
            if len(raw) % 2:
                raw = np.concatenate([raw, np.zeros(1, dtype=np.uint8)])
            symbols = raw.view("<u2")
        else:  # width == 4: two symbols per byte, low nibble first
            symbols = np.empty(2 * len(raw), dtype=np.uint8)
            symbols[0::2] = raw & 0x0F
            symbols[1::2] = raw >> 4
        if length is not None:
            if length < len(symbols):
                raise ValueError("target length shorter than payload")
            padded = np.zeros(length, dtype=self.symbol_dtype)
            padded[: len(symbols)] = symbols
            return padded
        return symbols.astype(self.symbol_dtype, copy=True)

    def bytes_from_symbols(self, symbols: np.ndarray, byte_length: int | None = None) -> bytes:
        """Inverse of :meth:`symbols_from_bytes`, truncated to ``byte_length``."""
        symbols = np.ascontiguousarray(symbols, dtype=self.symbol_dtype)
        if self.width == 8:
            raw = symbols.view(np.uint8)
        elif self.width == 16:
            raw = symbols.astype("<u2").view(np.uint8)
        else:
            if len(symbols) % 2:
                symbols = np.concatenate(
                    [symbols, np.zeros(1, dtype=self.symbol_dtype)]
                )
            raw = (symbols[0::2] | (symbols[1::2] << 4)).astype(np.uint8)
        data = raw.tobytes()
        if byte_length is not None:
            data = data[:byte_length]
        return data

    def symbol_length_for_bytes(self, nbytes: int) -> int:
        """Number of symbols needed to carry ``nbytes`` payload bytes."""
        if self.width == 8:
            return nbytes
        if self.width == 16:
            return (nbytes + 1) // 2
        return 2 * nbytes

    def add_bytes(self, a: bytes, b: bytes) -> bytes:
        """XOR two payloads, the shorter zero-padded (paper's padding rule)."""
        if len(a) < len(b):
            a, b = b, a
        out = bytearray(a)
        for i, byte in enumerate(b):
            out[i] ^= byte
        return bytes(out)

    def scale_accumulate(self, acc: np.ndarray, scalar: int, data: bytes) -> None:
        """In-place ``acc ^= scalar * symbols(data)`` (the Δ-record fold).

        ``acc`` must be a symbol array at least as long as the payload.
        This is the hot inner operation of parity maintenance: one call per
        (record, parity bucket) pair.
        """
        if scalar == 0 or not data:
            return
        symbols = self.symbols_from_bytes(data)
        if len(symbols) > len(acc):
            raise ValueError(
                f"payload of {len(symbols)} symbols exceeds accumulator "
                f"of {len(acc)}"
            )
        if scalar == 1:
            acc[: len(symbols)] ^= symbols
        else:
            acc[: len(symbols)] ^= self.mul_symbols(symbols, scalar)

    def __repr__(self) -> str:
        return f"GF(2^{self.width})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("GF", self.width))
