"""Galois field arithmetic over GF(2^w).

This subpackage is the lowest substrate of the LH*RS reproduction: the
Reed-Solomon parity calculus of the paper is symbol-wise arithmetic over a
finite field GF(2^w).  The paper's implementation uses log/antilog tables;
we do the same, vectorized with numpy so whole record payloads are encoded
per call.

Public API
----------
``GF(width)``
    A field object for ``w`` in {4, 8, 16}; exposes scalar arithmetic
    (``add``/``mul``/``div``/``inv``/``pow``) and vectorized payload
    arithmetic (``mul_bytes``/``add_bytes``/``scale_accumulate``).
``GFMatrix``
    Dense matrices over a ``GF``; multiplication, Gauss-Jordan inversion,
    Vandermonde and Cauchy constructions, MDS checks.

The 2D batch kernels (``GF.mul_matrix``, ``GF.gf_matmul``,
``GF.stack_payloads``, ``GFMatrix.mul_stacked``) operate on whole
stacked-stripe matrices at once: one table gather + XOR per generator
*coefficient* instead of per record, which is where the bulk
encode/decode/recovery paths get their throughput.
"""

from repro.gf.field import GF
from repro.gf.matrix import GFMatrix
from repro.gf.tables import PRIMITIVE_POLYNOMIALS, build_mul_tables, build_tables

__all__ = [
    "GF",
    "GFMatrix",
    "PRIMITIVE_POLYNOMIALS",
    "build_mul_tables",
    "build_tables",
]
