"""LH*m-style mirroring baseline.

Every data bucket has a full replica (mirror) on a distinct node.  Each
mutation is applied at the primary and forwarded to the mirror — 2
messages per insert against LH*RS's 1 + k — and the storage overhead is
100%.  The payoff is the simplest and fastest recovery there is: copy
the surviving replica.  1-availability per bucket pair; losing both
members of a pair loses data.

The forwarding discipline mirrors (sic) the LH*RS parity rule: the
primary mutates its own store *first*, so a mirror recovered mid-send is
rebuilt from current state and the lost forward needs no resend.
"""

from __future__ import annotations

from typing import Any

from repro.lh import addressing
from repro.sdds.client import Client
from repro.sdds.coordinator import Coordinator, SplitPolicy
from repro.sdds.file import LHStarFile
from repro.sdds.server import DataServer
from repro.sim.messages import Message
from repro.sim.network import NodeUnavailable
from repro.sim.node import Node


def mirror_node(file_id: str, bucket: int) -> str:
    """Node id of the mirror of data bucket ``bucket``."""
    return f"{file_id}.m{bucket}"


class MirrorServer(Node):
    """The replica: applies commanded operations, never decides routing."""

    def __init__(self, node_id: str, file_id: str, number: int, level: int,
                 n0: int):
        super().__init__(node_id)
        self.file_id = file_id
        self.number = number
        self.level = level
        self.n0 = n0
        self.records: dict[int, Any] = {}

    def handle_mirror_insert(self, message: Message) -> None:
        self.records[message.payload["key"]] = message.payload["value"]

    handle_mirror_update = handle_mirror_insert

    def handle_mirror_delete(self, message: Message) -> None:
        self.records.pop(message.payload["key"], None)

    def handle_mirror_bulk(self, message: Message) -> None:
        for key, value in message.payload["records"]:
            self.records[key] = value

    def handle_mirror_split(self, message: Message) -> None:
        """Drop the movers (the target's mirror receives them via the
        target primary's bulk forward) and bump the level."""
        stay, _ = addressing.split_records(
            list(self.records.items()),
            lambda item: item[0],
            self.number,
            self.level,
            self.n0,
        )
        self.records = dict(stay)
        self.level += 1

    def handle_mirror_search(self, message: Message) -> None:
        """Serve a read while the primary is down (degraded mode)."""
        payload = message.payload
        key = payload["key"]
        self.send(
            payload["client"],
            "search.result",
            {
                "request": payload["request"],
                "key": key,
                "found": key in self.records,
                "value": self.records.get(key),
            },
        )

    def handle_mirror_dump(self, message: Message) -> dict:
        return {
            "records": list(self.records.items()),
            "level": self.level,
        }

    def handle_mirror_load(self, message: Message) -> None:
        self.records = dict(message.payload["records"])
        self.level = message.payload["level"]


class MirroredDataServer(DataServer):
    """A primary that forwards every mutation to its mirror."""

    @property
    def _mirror(self) -> str:
        return mirror_node(self.file_id, self.number)

    def _forward_mirror(self, kind: str, payload: dict) -> None:
        try:
            self.send(self._mirror, kind, payload)
        except NodeUnavailable:
            # Rebuilt mirrors copy current primary state; no resend.
            self.send(
                self._coordinator(), "report.unavailable",
                {"node": self._mirror, "kind": None, "op": None},
            )

    def apply_insert(self, key: int, value: Any) -> None:
        super().apply_insert(key, value)
        self._forward_mirror("mirror.insert", {"key": key, "value": value})

    def apply_update(self, key: int, value: Any) -> None:
        super().apply_update(key, value)
        self._forward_mirror("mirror.update", {"key": key, "value": value})

    def apply_delete(self, key: int) -> None:
        super().apply_delete(key)
        self._forward_mirror("mirror.delete", {"key": key})

    def handle_split(self, message: Message) -> Any:
        result = super().handle_split(message)
        self._forward_mirror("mirror.split", {})
        return result

    def handle_records_bulk(self, message: Message) -> None:
        super().handle_records_bulk(message)
        self._forward_mirror(
            "mirror.bulk", {"records": message.payload["records"]}
        )

    def handle_bucket_dump(self, message: Message) -> dict:
        return {
            "records": list(self.bucket.records.items()),
            "level": self.level,
        }

    def handle_bucket_load(self, message: Message) -> None:
        """Recovery: adopt the mirror's dump."""
        self.bucket.records = dict(message.payload["records"])
        self.bucket.level = message.payload["level"]


class LHMCoordinator(Coordinator):
    """Coordinator creating mirror pairs and recovering either member."""

    def make_server(self, number: int, level: int) -> MirroredDataServer:
        return MirroredDataServer(
            node_id=self._data_node(number),
            file_id=self.file_id,
            number=number,
            level=level,
            capacity=self.capacity,
            n0=self.state.n0,
        )

    def _make_mirror(self, number: int, level: int) -> MirrorServer:
        return MirrorServer(
            node_id=mirror_node(self.file_id, number),
            file_id=self.file_id,
            number=number,
            level=level,
            n0=self.state.n0,
        )

    def bootstrap(self) -> None:
        for m in range(self.state.n0):
            self._net().register(self._make_mirror(m, 0))
        super().bootstrap()

    def on_new_bucket(self, number: int, level: int) -> None:
        self._net().register(self._make_mirror(number, level))

    def merge_once(self) -> tuple[int, int]:
        raise NotImplementedError(
            "file shrink for the mirrored baseline would need the merge "
            "protocol replicated on mirrors; out of scope here"
        )

    # ------------------------------------------------------------------
    def handle_report_unavailable(self, message: Message) -> None:
        payload = message.payload
        kind, op = payload.get("kind"), payload.get("op")
        node_id = payload["node"]

        if kind == "search" and op:
            # Degraded read from the mirror while we recover.
            bucket = self.state.address(op["key"])
            self.send(mirror_node(self.file_id, bucket), "mirror.search", op)
            op = None
        if not self._net().is_available(node_id):
            self.recover_node(node_id)
        if op is not None:
            self.deliver_routed(
                kind, dict(op, hops=op.get("hops", 0) + 1),
                self.state.address(op["key"]),
            )

    def recover_node(self, node_id: str) -> None:
        """Copy the surviving pair member onto a spare."""
        prefix = f"{self.file_id}."
        rest = node_id[len(prefix):]
        bucket = int(rest[1:])
        net = self._net()
        if rest.startswith("d"):
            dump = self.call(mirror_node(self.file_id, bucket), "mirror.dump")
            net.unregister(node_id)
            net.register(self.make_server(bucket, dump["level"]))
            self.send(node_id, "bucket.load", dump)
        elif rest.startswith("m"):
            status = self.call(self._data_node(bucket), "bucket.dump")
            net.unregister(node_id)
            net.register(self._make_mirror(bucket, status["level"]))
            self.send(node_id, "mirror.load", status)
        else:
            raise ValueError(f"cannot recover node {node_id!r}")


class LHMClient(Client):
    """Client that reports failures for mirror failover."""

    def on_unavailable(self, kind: str, payload: dict,
                       failure: NodeUnavailable) -> None:
        self.send(
            f"{self.file_id}.coord",
            "report.unavailable",
            {"kind": kind, "op": payload, "node": failure.node_id},
        )


class LHMFile(LHStarFile):
    """A running mirrored LH* file."""

    coordinator_class = LHMCoordinator
    client_class = LHMClient
    availability_level = 1

    def mirror_servers(self) -> list[MirrorServer]:
        return [
            self.network.nodes[mirror_node(self.file_id, m)]
            for m in range(self.bucket_count)
        ]

    def storage_overhead(self) -> float:
        """Mirror bytes / data bytes: 1.0 by construction."""
        data = sum(
            len(v) for s in self.data_servers() for v in s.bucket.records.values()
        )
        mirrored = sum(
            len(v) for s in self.mirror_servers() for v in s.records.values()
        )
        return mirrored / data if data else 0.0

    def redundancy_bucket_count(self) -> int:
        return self.bucket_count

    def fail_data_bucket(self, bucket: int) -> str:
        node_id = f"{self.file_id}.d{bucket}"
        self.network.fail(node_id)
        return node_id

    def fail_mirror(self, bucket: int) -> str:
        node_id = mirror_node(self.file_id, bucket)
        self.network.fail(node_id)
        return node_id

    def recover(self, node_ids: list[str]) -> None:
        for node_id in node_ids:
            self.coordinator.recover_node(node_id)

    def verify_mirror_consistency(self) -> list[str]:
        """Oracle: every pair must hold identical records."""
        problems = []
        for primary, mirror in zip(self.data_servers(), self.mirror_servers()):
            if primary.bucket.records != mirror.records:
                problems.append(f"bucket {primary.number} differs from mirror")
            if primary.level != mirror.level:
                problems.append(f"bucket {primary.number} level differs")
        return problems
