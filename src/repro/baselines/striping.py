"""LH*s-style record striping baseline.

Every record is cut into ``stripes`` fragments plus one XOR parity
fragment; fragment j lives in *segment file* j (its own LH* file on the
shared network), all under the record's key.  Storage overhead is
1/stripes and any single fragment is recoverable — but a key search must
gather ``stripes`` fragments (≈ 2·stripes messages), the published
weakness LH*g/LH*RS were designed to avoid.
"""

from __future__ import annotations

from repro.sdds.client import SearchOutcome
from repro.sdds.coordinator import SplitPolicy
from repro.sdds.file import LHStarFile
from repro.sim.network import Network, NodeUnavailable


def split_into_stripes(payload: bytes, stripes: int) -> list[bytes]:
    """Cut a payload into ``stripes`` equal fragments (last zero-padded)."""
    size = (len(payload) + stripes - 1) // stripes if payload else 0
    return [payload[i * size:(i + 1) * size].ljust(size, b"\0") if size else b""
            for i in range(stripes)]


def xor_parity(fragments: list[bytes]) -> bytes:
    """XOR of equal-length fragments."""
    if not fragments:
        return b""
    out = bytearray(len(fragments[0]))
    for fragment in fragments:
        for i, byte in enumerate(fragment):
            out[i] ^= byte
    return bytes(out)


class LHSFile:
    """A striped store: ``stripes`` data segments plus one parity segment.

    Not an ``LHStarFile`` subclass — it *owns* several of them.  The
    public surface matches the other schemes where meaningful.
    """

    availability_level = 1

    def __init__(
        self,
        stripes: int = 4,
        capacity: int = 32,
        file_id: str = "s",
        policy: SplitPolicy | None = None,
    ):
        if stripes < 2:
            raise ValueError("striping needs at least 2 data stripes")
        self.stripes = stripes
        self.file_id = file_id
        self.network = Network()
        self.segments = [
            LHStarFile(
                file_id=f"{file_id}{j}",
                capacity=capacity,
                policy=policy,
                network=self.network,
            )
            for j in range(stripes + 1)  # last one is the parity segment
        ]

    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self.network.stats

    @property
    def parity_segment(self) -> LHStarFile:
        return self.segments[self.stripes]

    # ------------------------------------------------------------------
    def insert(self, key: int, payload: bytes) -> None:
        """Store: stripes fragments + parity fragment, length-tagged."""
        fragments = split_into_stripes(payload, self.stripes)
        for j, fragment in enumerate(fragments):
            self.segments[j].insert(key, (len(payload), fragment))
        self.parity_segment.insert(key, (len(payload), xor_parity(fragments)))

    def update(self, key: int, payload: bytes) -> None:
        fragments = split_into_stripes(payload, self.stripes)
        for j, fragment in enumerate(fragments):
            self.segments[j].update(key, (len(payload), fragment))
        self.parity_segment.update(key, (len(payload), xor_parity(fragments)))

    def delete(self, key: int) -> None:
        for segment in self.segments:
            segment.delete(key)

    def search(self, key: int) -> SearchOutcome:
        """Gather every data fragment (2·stripes messages); reconstruct a
        single unavailable fragment from the others plus parity."""
        fragments: list[bytes | None] = [None] * self.stripes
        length = None
        missing = []
        for j in range(self.stripes):
            try:
                outcome = self.segments[j].search(key)
            except NodeUnavailable:
                missing.append(j)
                continue
            if not outcome.found:
                return SearchOutcome(key=key, found=False)
            length, fragments[j] = outcome.value
        if missing:
            if len(missing) > 1:
                raise NodeUnavailable(f"{len(missing)} stripes of key {key}")
            parity_outcome = self.parity_segment.search(key)
            if not parity_outcome.found:
                return SearchOutcome(key=key, found=False)
            length, parity = parity_outcome.value
            known = [f for f in fragments if f is not None]
            fragments[missing[0]] = xor_parity(known + [parity])
        payload = b"".join(fragments)[:length]  # type: ignore[arg-type]
        return SearchOutcome(key=key, found=True, value=payload)

    # ------------------------------------------------------------------
    def total_records(self) -> int:
        return self.segments[0].total_records()

    def storage_overhead(self) -> float:
        """Parity fragment bytes / data fragment bytes ≈ 1/stripes."""
        data = sum(
            len(v[1])
            for j in range(self.stripes)
            for s in self.segments[j].data_servers()
            for v in s.bucket.records.values()
        )
        parity = sum(
            len(v[1])
            for s in self.parity_segment.data_servers()
            for v in s.bucket.records.values()
        )
        return parity / data if data else 0.0

    def redundancy_bucket_count(self) -> int:
        return self.parity_segment.bucket_count

    @property
    def bucket_count(self) -> int:
        return sum(segment.bucket_count for segment in self.segments)

    def fail_segment_bucket(self, segment: int, bucket: int) -> str:
        node_id = f"{self.file_id}{segment}.d{bucket}"
        self.network.fail(node_id)
        return node_id

    def recover_segment_bucket(self, segment: int, bucket: int) -> int:
        """Rebuild one lost segment bucket, record by record.

        LH*s recovery cost: scan a surviving segment for the key census
        (which keys map to the lost bucket), then gather stripes + parity
        per record — messages ∝ records, unlike mirroring's single copy.
        """
        reference = self.segments[0 if segment != 0 else 1]
        census = reference.scan()
        target_file = self.segments[segment]
        state = target_file.coordinator.state
        keys = [k for k, _ in census.records if state.address(k) == bucket]

        rebuilt = []
        for key in keys:
            fragments = []
            for j in range(self.stripes):
                if j == segment:
                    continue
                length, fragment = self.segments[j].search(key).value
                fragments.append(fragment)
            if segment == self.stripes:
                value = xor_parity(fragments)  # rebuilding parity itself
            else:
                length, parity = self.parity_segment.search(key).value
                value = xor_parity(fragments + [parity])
            rebuilt.append((key, (length, value)))

        net = self.network
        node_id = f"{self.file_id}{segment}.d{bucket}"
        level = state.level_of(bucket)
        net.unregister(node_id)
        net.register(target_file.coordinator.make_server(bucket, level))
        server = net.nodes[node_id]
        for key, value in rebuilt:
            server.bucket.put(key, value)
        server.bucket.level = level
        return len(rebuilt)
