"""Baseline high-availability schemes LH*RS is evaluated against.

* ``LHStarBaseline`` — plain LH* (0-availability): the cost floor.
* ``LHMFile`` — LH*m-style mirroring: every bucket fully replicated;
  1-availability at 100% storage overhead, fastest recovery (a copy).
* ``LHSFile`` — LH*s-style record striping: each record split into s
  stripes plus one XOR parity stripe, each stripe in its own segment
  file; 1-availability at 1/s overhead, but every key search must
  gather s stripes (the scheme's published weakness).
* ``LHGFile`` — LH*g record grouping with invariant group keys and a
  separate LH* parity file: 1-availability at ~1/group-size overhead,
  LH*-cost searches, zero parity traffic on splits, but recovery must
  scan the parity file.

LH*RS generalizes LH*g: same failure-free profile, but k-availability
and direct group-to-parity addressing.
"""

from repro.baselines.lh_star import LHStarBaseline
from repro.baselines.lhg import LHGConfig, LHGFile
from repro.baselines.mirroring import LHMFile
from repro.baselines.striping import LHSFile

__all__ = ["LHStarBaseline", "LHMFile", "LHSFile", "LHGFile", "LHGConfig"]
