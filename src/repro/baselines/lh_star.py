"""Plain LH* as the 0-availability baseline.

A thin alias with the comparison-harness conveniences, so experiment E10
can treat every scheme uniformly.
"""

from __future__ import annotations

from repro.sdds.file import LHStarFile


class LHStarBaseline(LHStarFile):
    """LH* without any availability machinery: the cost floor."""

    #: survivable simultaneous bucket failures (per group; LH* has none)
    availability_level = 0

    def storage_overhead(self) -> float:
        """Redundant bytes / data bytes: none."""
        return 0.0

    def redundancy_bucket_count(self) -> int:
        """Extra buckets beyond the data buckets: none."""
        return 0
