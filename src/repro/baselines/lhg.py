"""LH*g: high availability by record grouping (the LH*RS predecessor).

The scheme LH*RS generalizes: primary records carry an invariant *record
group key* (g, r) — g the bucket group where the record was inserted, r
the inserting bucket's counter — and a separate LH* **parity file** F2
holds one XOR parity record per record group, keyed by (g, r).

Hallmarks reproduced here, as contrasts for experiment E10:

* splits move primary records with their group keys unchanged → **zero
  parity traffic on splits** (LH*RS pays Δ-deletes/inserts instead, but
  gains direct group→parity addressing);
* 1-availability only — a second loss in a group is unrecoverable;
* recovery must **scan the whole parity file** (its location for a given
  bucket is not computable), ~M/group_size messages, where LH*RS reads
  exactly its group's m−1+k survivors.

Primary buckets act as LH* clients of F2: they address parity records
through their own images of F2's state and converge via IAMs, and F2
grows by its own splits — both LH* mechanisms reused verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lh import addressing
from repro.lh.image import ClientImage
from repro.sdds.client import Client, SearchOutcome
from repro.sdds.coordinator import Coordinator, SplitPolicy
from repro.sdds.file import LHStarFile
from repro.sdds.server import DataServer
from repro.sim.messages import Message
from repro.sim.network import Network, NodeUnavailable

#: rank space per bucket group in the encoded parity key
RANK_BITS = 24


def encode_group_key(group: int, rank: int) -> int:
    """The parity file's integer key for record group (g, r)."""
    if rank >= (1 << RANK_BITS):
        raise ValueError("rank exceeds the encodable space")
    return (group << RANK_BITS) | rank


def decode_group_key(gkey: int) -> tuple[int, int]:
    """Inverse of :func:`encode_group_key`."""
    return gkey >> RANK_BITS, gkey & ((1 << RANK_BITS) - 1)


def xor_into(acc: bytearray, data: bytes) -> bytearray:
    """acc ^= data, growing acc to fit (the paper's zero-padding rule)."""
    if len(data) > len(acc):
        acc.extend(b"\0" * (len(data) - len(acc)))
    for i, byte in enumerate(data):
        acc[i] ^= byte
    return acc


@dataclass
class GParityRecord:
    """One XOR parity record of F2: key directory + parity bits."""

    gkey: int
    keys: dict[int, int]      # primary key -> payload length
    parity: bytearray

    def wire_size(self) -> int:
        return 24 * len(self.keys) + len(self.parity)


class GParityServer(DataServer):
    """An F2 bucket: stores parity records, folds XOR deltas.

    Inherits the LH* server machinery (A2 verification on the encoded
    group key, forwarding, splits, overflow reports) — F2 *is* an LH*
    file, exactly as the paper specifies.
    """

    def handle_gparity_apply(self, message: Message) -> None:
        payload = message.payload
        gkey = payload["gkey"]
        forward_to = self._verify(gkey)
        if forward_to is not None:
            self.forwards += 1
            hopped = dict(payload)
            hopped["hops"] = hopped.get("hops", 0) + 1
            self.send(self._data_node(forward_to), "gparity.apply", hopped)
            return
        record: GParityRecord | None = self.bucket.records.get(gkey)
        action = payload["op"]
        if record is None:
            record = GParityRecord(gkey=gkey, keys={}, parity=bytearray())
            self.bucket.put(gkey, record)
        xor_into(record.parity, payload["delta"])
        key = payload["key"]
        if action == "insert":
            record.keys[key] = payload["length"]
        elif action == "update":
            record.keys[key] = payload["length"]
        elif action == "delete":
            record.keys.pop(key, None)
            if not record.keys:
                self.bucket.delete(gkey)
        else:
            raise ValueError(f"unknown parity op {action!r}")
        if payload.get("hops") and payload.get("sender"):
            # IAM back to the primary server acting as our client.
            self.send(
                payload["sender"], "gparity.iam",
                {"j": self.level, "a": self.number},
            )
        self._report_overflow_if_needed()

    # ------------------------------------------------------------------
    # recovery queries
    # ------------------------------------------------------------------
    def handle_gparity_scan_for_bucket(self, message: Message) -> list[dict]:
        """A4 step: parity records with a member currently at bucket m."""
        n, i = message.payload["state"]
        n0 = message.payload["n0"]
        target = message.payload["bucket"]
        out = []
        for record in self.bucket.records.values():
            members = [
                key for key in record.keys
                if addressing.lh_address(key, n, i, n0) == target
            ]
            if members:
                out.append(self._snapshot(record))
        return out

    def handle_gparity_locate(self, message: Message) -> dict | None:
        """A7 step: the parity record containing a primary key."""
        key = message.payload["key"]
        for record in self.bucket.records.values():
            if key in record.keys:
                return self._snapshot(record)
        return None

    @staticmethod
    def _snapshot(record: GParityRecord) -> dict:
        return {
            "gkey": record.gkey,
            "keys": dict(record.keys),
            "parity": bytes(record.parity),
        }

    def handle_gparity_load(self, message: Message) -> None:
        for snap in message.payload["records"]:
            self.bucket.put(
                snap["gkey"],
                GParityRecord(
                    gkey=snap["gkey"],
                    keys=dict(snap["keys"]),
                    parity=bytearray(snap["parity"]),
                ),
            )


class LHGDataServer(DataServer):
    """A primary (F1) bucket: stamps group keys, maintains F2 parity."""

    def __init__(self, node_id: str, file_id: str, number: int, level: int,
                 capacity: int, n0: int, group_size: int, parity_file_id: str):
        super().__init__(node_id, file_id, number, level, capacity, n0)
        self.group_size = group_size
        self.parity_file_id = parity_file_id
        self.group = number // group_size
        self.counter = 0
        #: this server's LH* image of the parity file's state
        self.parity_image = ClientImage(n0=1)

    # ------------------------------------------------------------------
    def _parity_send(self, op: dict) -> None:
        address = self.parity_image.address(op["gkey"])
        op = dict(op, sender=self.node_id)
        try:
            self.send(f"{self.parity_file_id}.d{address}", "gparity.apply", op)
        except NodeUnavailable as failure:
            # Parity bucket down — possibly a forwarding hop beyond the
            # image-addressed one, hence failure.node_id, not address.
            # The coordinator rebuilds it from the primary file (A5);
            # current primary state already includes this mutation, so
            # no resend (same rule as LH*RS).
            self.send(
                self._coordinator(), "report.unavailable",
                {"node": failure.node_id, "kind": None, "op": None},
            )

    def handle_gparity_iam(self, message: Message) -> None:
        self.parity_image.adjust(message.payload["j"], message.payload["a"])

    # ------------------------------------------------------------------
    def apply_insert(self, key: int, value: bytes) -> None:
        if key in self.bucket:
            self.apply_update(key, value)
            return
        self.counter += 1
        gkey = encode_group_key(self.group, self.counter)
        self.bucket.put(key, (gkey, value))
        self._parity_send(
            {"gkey": gkey, "op": "insert", "key": key,
             "delta": value, "length": len(value)}
        )

    def apply_update(self, key: int, value: bytes) -> None:
        if key not in self.bucket:
            self.apply_insert(key, value)
            return
        gkey, old = self.bucket.get(key)
        delta = bytes(
            a ^ b for a, b in zip(old.ljust(len(value), b"\0"),
                                  value.ljust(len(old), b"\0"))
        )
        self.bucket.put(key, (gkey, value))
        self._parity_send(
            {"gkey": gkey, "op": "update", "key": key,
             "delta": delta, "length": len(value)}
        )

    def apply_delete(self, key: int) -> None:
        if key not in self.bucket:
            return
        gkey, payload = self.bucket.delete(key)
        self._parity_send(
            {"gkey": gkey, "op": "delete", "key": key,
             "delta": payload, "length": 0}
        )

    # Splits: base handle_split moves (key, (gkey, payload)) items with
    # group keys untouched — the scheme's zero-parity-traffic hallmark.

    # ------------------------------------------------------------------
    def handle_search(self, message: Message) -> None:
        payload = message.payload
        if self._verify(payload["key"]) is not None:
            self._forward(message)
            return
        key = payload["key"]
        stored = self.bucket.records.get(key)
        self.send(
            payload["client"],
            "search.result",
            {
                "request": payload["request"],
                "key": key,
                "found": stored is not None,
                "value": stored[1] if stored is not None else None,
            },
        )
        if payload.get("hops", 0):
            self._send_iam(payload["client"])

    def scan_matches(self, payload: dict) -> list[tuple[int, Any]]:
        predicate = payload.get("predicate")
        out = []
        for key, (gkey, value) in self.bucket.records.items():
            if predicate is None or predicate(key, value):
                out.append((key, value))
        return out

    def handle_record_fetch(self, message: Message) -> dict:
        key = message.payload["key"]
        if key in self.bucket:
            return {"found": True, "payload": self.bucket.get(key)[1]}
        return {"found": False, "payload": None}

    def handle_contributions_for_parity_bucket(self, message: Message) -> list:
        """A5 step: my records whose parity record lives at F2 bucket m."""
        n, i = message.payload["state"]
        target = message.payload["bucket"]
        out = []
        for key, (gkey, payload) in self.bucket.records.items():
            if addressing.lh_address(gkey, n, i, 1) == target:
                out.append((gkey, key, payload))
        return out

    def handle_bucket_load(self, message: Message) -> None:
        self.bucket.records = dict(message.payload["records"])
        self.bucket.level = message.payload["level"]
        self.counter = message.payload["counter"]

    def handle_status(self, message: Message) -> dict:
        status = super().handle_status(message)
        status["counter"] = self.counter
        return status


class LHGParityCoordinator(Coordinator):
    """Coordinator of the parity file F2 (its buckets store parity records)."""

    def make_server(self, number: int, level: int) -> GParityServer:
        return GParityServer(
            node_id=self._data_node(number),
            file_id=self.file_id,
            number=number,
            level=level,
            capacity=self.capacity,
            n0=self.state.n0,
        )


class LHGCoordinator(Coordinator):
    """Coordinator of the primary file F1; also drives LH*g recovery.

    The paper keeps a single coordinator managing both files' states; we
    model F2's split bookkeeping as a sub-coordinator object on the same
    logical node group, reached by counted messages like everything else.
    """

    def __init__(self, node_id: str, file_id: str, capacity: int,
                 n0: int = 1, policy: SplitPolicy | None = None,
                 group_size: int = 4, parity_capacity: int | None = None):
        super().__init__(node_id, file_id, capacity=capacity, n0=n0,
                         policy=policy)
        self.group_size = group_size
        self.parity_capacity = parity_capacity or capacity
        self.parity_file_id = f"{file_id}q"

    def make_server(self, number: int, level: int) -> LHGDataServer:
        return LHGDataServer(
            node_id=self._data_node(number),
            file_id=self.file_id,
            number=number,
            level=level,
            capacity=self.capacity,
            n0=self.state.n0,
            group_size=self.group_size,
            parity_file_id=self.parity_file_id,
        )

    def merge_once(self) -> tuple[int, int]:
        raise NotImplementedError(
            "LH*g merges need the §4.3 re-grouping of records merging back "
            "into their insert bucket (else one bucket could hold two "
            "members of a record group, breaking 1-availability); the "
            "paper sketches it, this baseline does not implement it"
        )

    # ------------------------------------------------------------------
    @property
    def parity_coordinator(self) -> "LHGParityCoordinator":
        return self._net().nodes[f"{self.parity_file_id}.coord"]

    def parity_state(self):
        return self.parity_coordinator.state

    def _parity_nodes(self) -> list[str]:
        return [
            f"{self.parity_file_id}.d{m}"
            for m in self.parity_state().buckets()
        ]

    # ------------------------------------------------------------------
    # unavailability handling (1-availability)
    # ------------------------------------------------------------------
    def handle_report_unavailable(self, message: Message) -> None:
        payload = message.payload
        kind, op = payload.get("kind"), payload.get("op")
        if kind == "search" and op:
            found, value = self.recover_record(op["key"])
            self.send(
                op["client"], "search.result",
                {"request": op["request"], "key": op["key"],
                 "found": found, "value": value},
            )
            op = None
        node_id = payload["node"]
        if not self._net().is_available(node_id):
            self.recover_node(node_id)
        if op is not None:
            self.deliver_routed(
                kind, dict(op, hops=op.get("hops", 0) + 1),
                self.state.address(op["key"]),
            )

    def recover_node(self, node_id: str) -> None:
        if node_id.startswith(f"{self.parity_file_id}.d"):
            self.recover_parity_bucket(int(node_id.rsplit("d", 1)[1]))
        elif node_id.startswith(f"{self.file_id}.d"):
            self.recover_primary_bucket(int(node_id.rsplit("d", 1)[1]))
        else:
            raise ValueError(f"cannot recover node {node_id!r}")

    # ------------------------------------------------------------------
    # Algorithm A4: primary bucket recovery
    # ------------------------------------------------------------------
    def recover_primary_bucket(self, bucket: int) -> int:
        """Scan F2 for members currently addressed to ``bucket``, fetch
        each record group's other members, XOR-reconstruct, install."""
        net = self._net()
        replies, missing = net.multicast(
            self.node_id,
            self._parity_nodes(),
            "gparity.scan_for_bucket",
            {
                "bucket": bucket,
                "state": self.state.as_tuple(),
                "n0": self.state.n0,
            },
        )
        if missing:
            raise RuntimeError(
                f"LH*g is 1-available: parity buckets {missing} are also down"
            )
        records: list[tuple[int, int, bytes]] = []  # (key, gkey, payload)
        max_rank = 0
        level = self.state.level_of(bucket)
        for snaps in replies.values():
            for snap in snaps:
                member_keys = [
                    key for key in snap["keys"]
                    if self.state.address(key) == bucket
                ]
                # Proposition 1: members sit in distinct buckets, so at
                # most one member of a group can live at ``bucket``.
                assert len(member_keys) <= 1
                acc = bytearray(snap["parity"])
                for other in snap["keys"]:
                    if other in member_keys:
                        continue
                    reply = net.call(
                        self.node_id,
                        f"{self.file_id}.d{self.state.address(other)}",
                        "record.fetch",
                        {"key": other},
                    )
                    xor_into(acc, reply["payload"])
                group, rank = decode_group_key(snap["gkey"])
                # A4 counter rule: ranks of groups in this bucket's own
                # bucket group that could have been stamped here.
                if group == bucket // self.group_size and any(
                    addressing.h(l, key) == bucket
                    for key in snap["keys"]
                    for l in range(level + 1)
                ):
                    max_rank = max(max_rank, rank)
                if member_keys:
                    key = member_keys[0]
                    payload = bytes(acc[: snap["keys"][key]])
                    records.append((key, snap["gkey"], payload))

        node_id = f"{self.file_id}.d{bucket}"
        net.unregister(node_id)
        net.register(self.make_server(bucket, level))
        net.send(
            self.node_id, node_id, "bucket.load",
            {
                "records": [(key, (gkey, payload)) for key, gkey, payload in records],
                "level": level,
                "counter": max_rank,
            },
        )
        return len(records)

    # ------------------------------------------------------------------
    # Algorithm A5: parity bucket recovery
    # ------------------------------------------------------------------
    def recover_parity_bucket(self, bucket: int) -> int:
        """Scan F1 for records whose parity record belongs at ``bucket``;
        re-encode and install a spare."""
        net = self._net()
        parity_state = self.parity_state()
        targets = [f"{self.file_id}.d{m}" for m in self.state.buckets()]
        replies, missing = net.multicast(
            self.node_id,
            targets,
            "contributions.for_parity_bucket",
            {"bucket": bucket, "state": parity_state.as_tuple()},
        )
        if missing:
            raise RuntimeError(
                f"LH*g is 1-available: primary buckets {missing} are also down"
            )
        rebuilt: dict[int, dict] = {}
        for contributions in replies.values():
            for gkey, key, payload in contributions:
                snap = rebuilt.setdefault(
                    gkey, {"gkey": gkey, "keys": {}, "parity": bytearray()}
                )
                snap["keys"][key] = len(payload)
                xor_into(snap["parity"], payload)

        node_id = f"{self.parity_file_id}.d{bucket}"
        level = parity_state.level_of(bucket)
        net.unregister(node_id)
        net.register(self.parity_coordinator.make_server(bucket, level))
        net.send(
            self.node_id, node_id, "gparity.load",
            {"records": [
                {"gkey": s["gkey"], "keys": s["keys"], "parity": bytes(s["parity"])}
                for s in rebuilt.values()
            ]},
        )
        return len(rebuilt)

    # ------------------------------------------------------------------
    # Algorithm A7: record recovery (degraded reads)
    # ------------------------------------------------------------------
    def recover_record(self, key: int) -> tuple[bool, bytes | None]:
        """Scan F2 for the parity record holding ``key``; XOR it out."""
        net = self._net()
        replies, missing = net.multicast(
            self.node_id, self._parity_nodes(), "gparity.locate", {"key": key}
        )
        if missing:
            raise RuntimeError(
                f"LH*g is 1-available: parity buckets {missing} are also down"
            )
        snap = next((s for s in replies.values() if s is not None), None)
        if snap is None:
            return False, None  # certain miss: F2 is authoritative
        acc = bytearray(snap["parity"])
        for other in snap["keys"]:
            if other == key:
                continue
            reply = net.call(
                self.node_id,
                f"{self.file_id}.d{self.state.address(other)}",
                "record.fetch",
                {"key": other},
            )
            xor_into(acc, reply["payload"])
        return True, bytes(acc[: snap["keys"][key]])


class LHGClient(Client):
    """Client reporting failures to the coordinator (degraded reads)."""

    def on_unavailable(self, kind, payload, failure):
        self.send(
            f"{self.file_id}.coord",
            "report.unavailable",
            {"kind": kind, "op": payload, "node": failure.node_id},
        )


@dataclass(frozen=True)
class LHGConfig:
    """Tunables of an LH*g file (the paper's k is ``group_size``)."""

    group_size: int = 4
    bucket_capacity: int = 32
    parity_capacity: int | None = None


class LHGFile(LHStarFile):
    """A running LH*g file: primary file F1 plus XOR parity file F2."""

    coordinator_class = LHGCoordinator
    client_class = LHGClient
    availability_level = 1

    def __init__(self, config: LHGConfig | None = None, file_id: str = "g",
                 split_policy: SplitPolicy | None = None, network=None):
        self.config = config or LHGConfig()
        network = network or Network()
        # F2 first: primary servers address it from their first insert.
        parity_coordinator = LHGParityCoordinator(
            node_id=f"{file_id}q.coord",
            file_id=f"{file_id}q",
            capacity=self.config.parity_capacity or self.config.bucket_capacity,
            n0=1,
        )
        network.register(parity_coordinator)
        parity_coordinator.bootstrap()
        self.parity_coordinator = parity_coordinator
        super().__init__(
            file_id=file_id,
            capacity=self.config.bucket_capacity,
            n0=self.config.group_size,
            policy=split_policy,
            network=network,
            group_size=self.config.group_size,
            parity_capacity=self.config.parity_capacity,
        )

    # ------------------------------------------------------------------
    def parity_servers(self) -> list[GParityServer]:
        state = self.parity_coordinator.state
        return [
            self.network.nodes[f"{self.file_id}q.d{m}"]
            for m in state.buckets()
        ]

    def storage_overhead(self) -> float:
        """Parity bytes / data bytes ≈ 1/group_size (for full groups)."""
        data = sum(
            len(value[1])
            for s in self.data_servers()
            for value in s.bucket.records.values()
        )
        parity = sum(
            len(record.parity)
            for s in self.parity_servers()
            for record in s.bucket.records.values()
        )
        return parity / data if data else 0.0

    def redundancy_bucket_count(self) -> int:
        return self.parity_coordinator.state.bucket_count

    # ------------------------------------------------------------------
    def fail_data_bucket(self, bucket: int) -> str:
        node_id = f"{self.file_id}.d{bucket}"
        self.network.fail(node_id)
        return node_id

    def fail_parity_bucket(self, bucket: int) -> str:
        node_id = f"{self.file_id}q.d{bucket}"
        self.network.fail(node_id)
        return node_id

    def recover(self, node_ids: list[str]) -> None:
        for node_id in node_ids:
            self.coordinator.recover_node(node_id)

    def recover_record(self, key: int) -> tuple[bool, bytes | None]:
        return self.coordinator.recover_record(key)

    # ------------------------------------------------------------------
    def verify_parity_consistency(self) -> list[str]:
        """Oracle: recompute every record group's XOR from primary data."""
        expected: dict[int, dict] = {}
        for server in self.data_servers():
            for key, (gkey, payload) in server.bucket.records.items():
                snap = expected.setdefault(
                    gkey, {"keys": {}, "parity": bytearray()}
                )
                snap["keys"][key] = len(payload)
                xor_into(snap["parity"], payload)
        actual: dict[int, GParityRecord] = {}
        for server in self.parity_servers():
            for gkey, record in server.bucket.records.items():
                actual[gkey] = record
        problems = []
        if set(expected) != set(actual):
            problems.append(
                f"group keys differ: {len(expected)} expected, {len(actual)} stored"
            )
            return problems
        for gkey, snap in expected.items():
            record = actual[gkey]
            if record.keys != snap["keys"]:
                problems.append(f"gkey {gkey}: key directory mismatch")
            length = max(len(record.parity), len(snap["parity"]))
            if (bytes(record.parity).ljust(length, b"\0")
                    != bytes(snap["parity"]).ljust(length, b"\0")):
                problems.append(f"gkey {gkey}: parity bits mismatch")
        return problems

    def split_parity_message_count(self) -> int:
        """Parity messages caused by splits: zero by design (the scheme's
        hallmark, contrasted with LH*RS in E10/E11)."""
        return 0
