"""Checksummed write-ahead log frames and checkpoints over a SimDisk.

Frame format (little-endian)::

    <u32 body length> <u32 crc32(body)> <body ...>

The body is canonical JSON (sorted keys, compact separators) with
``bytes`` values encoded as ``{"__b__": <base64>}`` — deterministic, so
identical records serialize to identical bytes.  Every frame carries an
``lsn`` (apply-LSN): replay skips frames at or below the checkpoint's
LSN high-water, which closes the checkpoint/truncate crash window
(a crash between checkpoint fsync and log truncate must not double-
apply the tail).

Replay stops at the *first* frame that is short, torn or fails its
checksum — everything before it is the durable prefix, everything after
is untrusted.  :meth:`BucketLog.recover` reports whether the stop was a
clean end-of-log or a torn/rotted tail so the caller can decide between
delta catch-up and a full rebuild.
"""

from __future__ import annotations

import base64
import json
import struct
import zlib
from typing import Any

from repro.store.simdisk import SimDisk

_HEADER = struct.Struct("<II")

#: sanity cap — a rotted length field must not make replay allocate GBs
_MAX_FRAME = 1 << 26


# ----------------------------------------------------------------------
# body codec (canonical JSON with bytes support)
# ----------------------------------------------------------------------
def _encode(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__b__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__b__"}:
            return base64.b64decode(value["__b__"])
        return {
            (int(k) if k.lstrip("-").isdigit() else k): _decode(v)
            for k, v in value.items()
        }
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def encode_frame(record: dict[str, Any]) -> bytes:
    """One checksummed frame: header + canonical-JSON body."""
    body = json.dumps(
        _encode(record), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_frames(data: bytes) -> tuple[list[dict[str, Any]], bool]:
    """``(records, clean)`` — the durable prefix, never beyond.

    ``clean`` is False when the scan stopped at a torn or corrupt frame
    rather than the exact end of the log.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            return records, False  # torn header
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_FRAME or offset + _HEADER.size + length > total:
            return records, False  # torn / rotted length
        body = data[offset + _HEADER.size:offset + _HEADER.size + length]
        if zlib.crc32(body) != crc:
            return records, False  # rotted body
        try:
            records.append(_decode(json.loads(body.decode("utf-8"))))
        except (ValueError, UnicodeDecodeError):
            return records, False
        offset += _HEADER.size + length
    return records, True


def encode_blob(state: dict[str, Any]) -> bytes:
    """A whole-file checksummed blob (checkpoints): one frame."""
    return encode_frame(state)


def decode_blob(data: bytes) -> dict[str, Any] | None:
    """Inverse of :func:`encode_blob`; None when torn/rotted/absent."""
    if not data:
        return None
    records, clean = decode_frames(data)
    if len(records) != 1 or not clean:
        return None
    return records[0]


# ----------------------------------------------------------------------
# per-bucket log
# ----------------------------------------------------------------------
class BucketLog:
    """WAL + checkpoint discipline for one bucket over a SimDisk.

    ``append(record)`` stamps a monotonically increasing ``lsn`` into
    the record and fsyncs every ``fsync_interval`` appends (1 = every
    append, the strict default).  ``checkpoint(state)`` stages an
    atomic whole-file replace carrying the current LSN high-water and
    truncates the log in the same fsync barrier.  ``recover()`` replays
    checkpoint + log to the last durable prefix.
    """

    LOG = "wal"
    CHECKPOINT = "checkpoint"

    def __init__(self, disk: SimDisk, fsync_interval: int = 1) -> None:
        self.disk = disk
        self.fsync_interval = max(1, int(fsync_interval))
        self.lsn = 0
        self._unsynced_appends = 0

    def append(self, record: dict[str, Any]) -> int:
        """Log one record; returns the LSN it was stamped with."""
        self.lsn += 1
        framed = dict(record)
        framed["lsn"] = self.lsn
        self.disk.append(self.LOG, encode_frame(framed))
        self._unsynced_appends += 1
        if self._unsynced_appends >= self.fsync_interval:
            self.sync()
        return self.lsn

    def sync(self) -> None:
        """Explicit fsync barrier on the log."""
        if self._unsynced_appends:
            self.disk.fsync(self.LOG)
            self._unsynced_appends = 0

    def checkpoint(self, state: dict[str, Any]) -> None:
        """Atomically persist ``state`` and truncate the log.

        The blob carries ``lsn`` (high-water of everything folded into
        the state) so replay can skip already-applied frames if a crash
        lands between the two fsync barriers below.
        """
        self.sync()
        blob = dict(state)
        blob["lsn"] = self.lsn
        self.disk.write_file(self.CHECKPOINT, encode_blob(blob))
        self.disk.fsync(self.CHECKPOINT)
        # A crash exactly here leaves checkpoint *and* full log; the
        # LSN skip in recover() makes the overlap harmless.
        self.disk.truncate(self.LOG)
        self.disk.fsync(self.LOG)

    def recover(self) -> "tuple[dict[str, Any] | None, list[dict[str, Any]], bool]":
        """``(checkpoint_state, tail_records, clean)`` after a crash.

        ``checkpoint_state`` is None when no checkpoint survived (or it
        was torn/rotted).  ``tail_records`` are the WAL frames after the
        checkpoint's LSN high-water, in order.  ``clean`` is False when
        the WAL scan hit a torn or corrupt frame — the durable prefix
        is still trustworthy, but the caller knows bytes were lost in a
        way fsync accounting alone does not explain.
        """
        state = decode_blob(self.disk.read(self.CHECKPOINT))
        base_lsn = int(state["lsn"]) if state is not None else 0
        records, clean = decode_frames(self.disk.read(self.LOG))
        tail = [rec for rec in records if int(rec.get("lsn", 0)) > base_lsn]
        top = max(
            [base_lsn] + [int(rec.get("lsn", 0)) for rec in records]
        )
        self.lsn = top
        self._unsynced_appends = 0
        return state, tail, clean
