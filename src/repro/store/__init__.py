"""Durable bucket storage: simulated disk + write-ahead log.

``repro.store`` gives every bucket a local, fault-injectable storage
plane: :class:`~repro.store.simdisk.SimDisk` models a disk with
explicit fsync barriers and crash-at-any-unsynced-point semantics, and
:class:`~repro.store.wal.BucketLog` layers a checksummed write-ahead
log plus periodic checkpoints on top of it.  Both are deterministic:
every fault decision (torn write, bit rot, io-error) comes from a
seeded per-node generator, so crash/restart schedules replay exactly.

See ``docs/durability.md`` for the disk model, the WAL frame format
and the restart-with-delta-catch-up protocol built on top.
"""

from repro.store.simdisk import DiskError, SimDisk, disk_rng
from repro.store.wal import (
    BucketLog,
    decode_blob,
    decode_frames,
    encode_blob,
    encode_frame,
)

__all__ = [
    "BucketLog",
    "DiskError",
    "SimDisk",
    "decode_blob",
    "decode_frames",
    "disk_rng",
    "encode_blob",
    "encode_frame",
]
