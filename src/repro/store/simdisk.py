"""A deterministic simulated disk with explicit fsync barriers.

The model is the smallest one that captures the crash semantics real
storage engines defend against:

* ``append(name, data)`` buffers bytes in an *unsynced* tail; only
  ``fsync(name)`` moves them to the durable image.  A crash drops every
  unsynced append — and, under a ``torn_write`` fault rule, may leave a
  seeded *prefix* of the first dropped append behind (a torn frame the
  WAL checksum must catch).
* ``write_file(name, data)`` stages an atomic whole-file replace that
  takes effect at the next ``fsync`` — the checkpoint primitive.  A
  crash before the fsync leaves the old image untouched.
* ``read(name)`` at restart may return a bit-rotted image under a
  ``bitrot`` rule: a seeded handful of byte flips in the durable bytes,
  applied once per crash (again: the per-frame checksum's job).
* ``append``/``fsync`` may raise :class:`DiskError` under a transient
  ``io_error`` rule; callers treat it as fail-stop for the node.

Every fault draw comes from a seeded per-node generator
(:func:`disk_rng`), *not* from the shared network RNG, so disk
decisions are independent of message interleaving and replay exactly.
"""

from __future__ import annotations

import zlib
from typing import Callable

import numpy as np

#: Neutral fault profile: crashes still lose the unsynced tail (that is
#: the core semantics, not a fault), but writes never tear, bits never
#: rot, io never errors and the disk is full speed.
NEUTRAL_PROFILE: dict[str, float] = {
    "torn_write": 0.0,
    "bitrot": 0.0,
    "bitrot_flips": 1,
    "io_error": 0.0,
    "slow_factor": 1.0,
}


class DiskError(Exception):
    """A transient io-error injected by the fault plane."""


def disk_rng(seed: int, node_id: str) -> np.random.Generator:
    """Per-node disk generator: seeded by ``(seed, crc32(node_id))``.

    Keyed off the node id so each disk's fault stream is independent of
    every other disk and of the shared network RNG draw order.
    """
    return np.random.default_rng(
        [int(seed) & 0xFFFFFFFF, zlib.crc32(node_id.encode("utf-8"))]
    )


class SimDisk:
    """Named byte files with a durable image and an unsynced tail."""

    def __init__(
        self,
        node_id: str,
        rng: np.random.Generator | None = None,
        profile: Callable[[], dict[str, float]] | None = None,
    ) -> None:
        self.node_id = node_id
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: callable returning the current fault profile (merged disk
        #: rules from the fault plane); None = NEUTRAL_PROFILE.
        self.profile = profile
        self._durable: dict[str, bytes] = {}
        self._unsynced: dict[str, list[bytes]] = {}
        self._staged: dict[str, bytes] = {}
        # counters (benchmarks and metrics read these)
        self.fsyncs = 0
        self.appends = 0
        self.bytes_written = 0
        #: virtual io time: bytes fsynced x slow_factor (a slow-disk
        #: rule makes the same durability work "cost" more).
        self.io_time = 0.0

    # ------------------------------------------------------------------
    # fault profile
    # ------------------------------------------------------------------
    def _profile(self) -> dict[str, float]:
        if self.profile is None:
            return NEUTRAL_PROFILE
        merged = dict(NEUTRAL_PROFILE)
        merged.update(self.profile() or {})
        return merged

    def _maybe_io_error(self, op: str) -> None:
        prob = self._profile()["io_error"]
        if prob > 0.0 and float(self.rng.random()) < prob:
            raise DiskError(f"{self.node_id}: injected io-error on {op}")

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, name: str, data: bytes) -> None:
        """Buffer ``data`` at the end of ``name`` (durable after fsync)."""
        self._maybe_io_error(f"append:{name}")
        self._unsynced.setdefault(name, []).append(bytes(data))
        self.appends += 1
        self.bytes_written += len(data)

    def write_file(self, name: str, data: bytes) -> None:
        """Stage an atomic whole-file replace (applied at fsync).

        Supersedes any appends buffered so far — the replace rewrites
        the whole file, so an older unsynced tail must not resurface
        behind it.  Appends issued *after* the stage accumulate on top
        of the new image.
        """
        self._maybe_io_error(f"write:{name}")
        self._staged[name] = bytes(data)
        self._unsynced.pop(name, None)
        self.bytes_written += len(data)

    def truncate(self, name: str) -> None:
        """Stage an atomic truncate-to-empty (applied at fsync)."""
        self.write_file(name, b"")

    def fsync(self, name: str) -> None:
        """Make every staged/unsynced byte of ``name`` durable."""
        self._maybe_io_error(f"fsync:{name}")
        profile = self._profile()
        synced = 0
        if name in self._staged:
            self._durable[name] = self._staged.pop(name)
            # a staged replace supersedes appends buffered before it
            synced += len(self._durable[name])
        tail = self._unsynced.pop(name, [])
        if tail:
            self._durable[name] = self._durable.get(name, b"") + b"".join(tail)
            synced += sum(len(chunk) for chunk in tail)
        self.fsyncs += 1
        self.io_time += synced * float(profile["slow_factor"])

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, name: str) -> bytes:
        """Current contents: durable image plus the unsynced tail."""
        staged = self._staged.get(name)
        base = staged if staged is not None else self._durable.get(name, b"")
        tail = self._unsynced.get(name, [])
        return base + b"".join(tail) if tail else base

    def exists(self, name: str) -> bool:
        return (
            name in self._durable
            or name in self._staged
            or name in self._unsynced
        )

    def unsynced_bytes(self, name: str) -> int:
        return sum(len(chunk) for chunk in self._unsynced.get(name, ()))

    # ------------------------------------------------------------------
    # crash semantics
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose everything that was never fsynced; maybe tear / rot.

        Always: staged replaces vanish, unsynced appends vanish.  Under
        a ``torn_write`` rule, the *first* dropped append may survive as
        a seeded-length prefix glued onto the durable image — exactly
        the torn frame a WAL checksum exists to reject.  Under a
        ``bitrot`` rule, a seeded handful of bytes in one durable file
        flip — the at-rest corruption a per-frame checksum catches at
        replay.
        """
        profile = self._profile()
        self._staged.clear()
        for name in sorted(self._unsynced):
            dropped = self._unsynced[name]
            if (
                dropped
                and profile["torn_write"] > 0.0
                and float(self.rng.random()) < profile["torn_write"]
            ):
                first = dropped[0]
                if len(first) > 1:
                    keep = 1 + int(self.rng.integers(len(first) - 1))
                    self._durable[name] = (
                        self._durable.get(name, b"") + first[:keep]
                    )
        self._unsynced.clear()
        if profile["bitrot"] > 0.0 and float(self.rng.random()) < profile["bitrot"]:
            victims = sorted(
                name for name, data in self._durable.items() if data
            )
            if victims:
                name = victims[int(self.rng.integers(len(victims)))]
                image = bytearray(self._durable[name])
                flips = max(1, int(profile["bitrot_flips"]))
                for _ in range(flips):
                    pos = int(self.rng.integers(len(image)))
                    image[pos] ^= 1 << int(self.rng.integers(8))
                self._durable[name] = bytes(image)
