"""Node base class: handler dispatch and sending conveniences."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.messages import Message
    from repro.sim.network import Network


class Node:
    """A network participant; subclasses implement ``handle_<kind>``.

    Message kinds map to methods by replacing non-identifier characters
    with underscores: a ``"key.search"`` message dispatches to
    ``handle_key_search(message)``.
    """

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.network: "Network | None" = None
        #: bounded inbound queue (None = unbounded).  With a service
        #: model installed, sheddable messages arriving while this
        #: node's backlog is at the bound are refused with
        #: :class:`~repro.sim.network.NodeBusy` — backpressure.
        self.inbound_queue_limit: int | None = None

    # ------------------------------------------------------------------
    def receive(self, message: "Message") -> Any:
        handler_name = "handle_" + "".join(
            ch if ch.isalnum() else "_" for ch in message.kind
        )
        handler = getattr(self, handler_name, None)
        if handler is None:
            raise NotImplementedError(
                f"{type(self).__name__} {self.node_id!r} has no handler for "
                f"message kind {message.kind!r}"
            )
        return handler(message)

    # ------------------------------------------------------------------
    def _net(self) -> "Network":
        if self.network is None:
            raise RuntimeError(f"node {self.node_id!r} is not attached to a network")
        return self.network

    def send(self, recipient: str, kind: str, payload: Any = None,
             size: int = 0) -> None:
        """Fire-and-forget to another node (1 message).

        ``size`` optionally pre-computes the wire size (header included)
        for payloads whose shape the sender knows — batch senders size
        hundreds of uniform op dicts arithmetically instead of having
        the envelope walk them.  It must equal what
        :func:`~repro.sim.messages.estimate_size` would produce; 0 means
        "estimate for me".
        """
        self._net().send(self.node_id, recipient, kind, payload, size=size)

    def call(self, recipient: str, kind: str, payload: Any = None,
             size: int = 0) -> Any:
        """Request/reply to another node (2 messages).  ``size`` as in
        :meth:`send` (applies to the request; the reply is estimated)."""
        return self._net().call(self.node_id, recipient, kind, payload,
                                size=size)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.node_id!r})"
