"""Message-level fault injection: the network's fault plane.

The crash model (`Network.fail`) covers hard node loss; real deployments
also face a hostile *message* plane: requests vanish, retransmissions
duplicate them, switch queues delay them, and links flap without any
node being down.  :class:`FaultPlane` injects exactly those faults into
the simulated network, deterministically (every draw comes from one
seeded generator) and selectively (rules match on sender, recipient and
message kind, so an experiment can batter the Δ-parity channel while
leaving, say, scans alone).

Semantics in a synchronous simulator:

* **drop** — a fire-and-forget ``send`` is silently lost (the sender has
  no way to know: the UDP case).  A ``call``'s request or reply loss
  surfaces as :class:`~repro.sim.network.DeliveryFault` at the sender —
  its timeout fires.  A lost *reply* means the handler DID run: the
  at-least-once hazard the Δ sequence numbers exist for.
* **duplicate** — delivered twice (a retransmission after a lost ack).
* **delay** — held and re-delivered after a bounded number of later
  network operations.  Delivery order is FIFO *per (sender, recipient)
  channel* (the TCP guarantee); messages on other channels overtake
  freely.
* **fail** — a transient, sender-visible delivery failure
  (:class:`DeliveryFault`), distinct from ``drop`` in that the sender
  learns about it immediately and can back off and retry.

Structural control messages (splits, merges, bulk transfers, recovery
dumps/loads) ride a protected channel by default — modelling the
coordinator's TCP-with-retries control connections — because replaying
half a split is not a fault any protocol is expected to survive.  Tests
may override ``protected_kinds`` to explore exactly that.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.sim.rng import DEFAULT_SEED, make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.messages import Message

#: Kinds exempt from fault injection unless explicitly overridden:
#: file-structure and recovery control traffic (the reliable channel).
DEFAULT_PROTECTED_KINDS = frozenset(
    {
        "split",
        "merge",
        "records.bulk",
        "level.set",
        "config.parity",
        "bucket.dump",
        "bucket.load",
        "parity.dump",
        "parity.load",
        "parity.reset",
        "route",
        "report.unavailable",
        "report.stale",
        # coordinator HA control plane: journal replication and
        # checkpoints are the reliable channel takeover correctness
        # rests on (heartbeats/pings/whois stay fault-prone — their
        # consumers tolerate loss by design).
        "coord.journal.append",
        "coord.journal.fetch",
        "coord.checkpoint",
        "coord.checkpoint.fetch",
        # restart/catch-up control plane: a rejoining bucket's tail
        # fetch and state transfer ride the reliable channel, like the
        # recovery dumps/loads above (the rejoin request itself stays
        # fault-prone — its sender retries).
        "wal.tail",
        "delta.tail",
        "catchup.load",
        "catchup.parity",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff (simulated time).

    ``delay(attempt)`` is the wait after the attempt of that index:
    ``backoff_base * backoff_factor**attempt`` capped at ``backoff_max``.
    Waiting advances the network's logical clock, which matures delayed
    messages and lets scheduled crash windows pass — backing off is how
    a sender *outlives* a transient fault.

    With ``jitter`` enabled the deterministic schedule becomes the
    *envelope* of a decorrelated-jitter draw: the wait after attempt a
    is uniform in ``[backoff_base, 3 * delay(a-1)]``, capped at
    ``backoff_max``.  Senders that failed together then retry spread
    out instead of thundering-herding the bucket the instant it
    restores.  The draw is a pure function of ``(jitter_seed, salt,
    attempt)`` — no shared generator state — so every simulation stays
    replayable and each sender decorrelates by salting with its own
    node id.  Off by default: the pinned backoff tests (and the paper's
    message accounting) use the exact exponential schedule.
    """

    attempts: int = 4
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 16.0
    jitter: bool = False
    jitter_seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("retry attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1 (non-shrinking)")

    def delay(self, attempt: int, salt: int = 0) -> float:
        """Backoff after the ``attempt``-th failure (0-based).

        ``salt`` decorrelates independent senders under ``jitter`` (pass
        a stable per-sender value, e.g. a CRC of the node id); it is
        ignored on the exact no-jitter path.
        """
        exact = min(
            self.backoff_base * self.backoff_factor**attempt, self.backoff_max
        )
        if not self.jitter or exact <= 0:
            return exact
        prev = self.backoff_base if attempt == 0 else min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        rng = np.random.default_rng(
            [self.jitter_seed & 0xFFFFFFFF, salt & 0xFFFFFFFF, attempt]
        )
        lo = self.backoff_base
        hi = max(lo, 3.0 * prev)
        return min(lo + (hi - lo) * float(rng.random()), self.backoff_max)


@dataclass(frozen=True)
class FaultRule:
    """One fault-injection rule; the first matching rule decides.

    ``kinds`` is an exact set (None = every kind); ``sender`` and
    ``recipient`` are glob patterns (None = anyone).  The probabilities
    are cumulative-exclusive: a single uniform draw picks drop, else
    fail, else duplicate, else corrupt, else delay, else clean delivery.
    """

    kinds: frozenset[str] | None = None
    sender: str | None = None
    recipient: str | None = None
    drop: float = 0.0
    fail: float = 0.0
    duplicate: float = 0.0
    #: delivered with seeded byte-flips in bytes-valued payload fields
    #: (an in-flight corruption the algebraic-signature scrub must catch)
    corrupt: float = 0.0
    delay: float = 0.0
    #: a delayed message matures within (0, delay_window] clock units
    delay_window: float = 4.0
    #: rule expires at this simulation time (None = never)
    until: float | None = None

    def __post_init__(self) -> None:
        for name in ("drop", "fail", "duplicate", "corrupt", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        if (
            self.drop + self.fail + self.duplicate + self.corrupt + self.delay
            > 1.0
        ):
            raise ValueError("fault probabilities must sum to <= 1")
        if self.delay_window <= 0:
            raise ValueError("delay_window must be positive")

    def matches(self, message: "Message", now: float) -> bool:
        if self.until is not None and now >= self.until:
            return False
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.sender is not None and not fnmatchcase(
            message.sender, self.sender
        ):
            return False
        if self.recipient is not None and not fnmatchcase(
            message.recipient, self.recipient
        ):
            return False
        return True


@dataclass(frozen=True)
class SlowRule:
    """Gray failure: a node stays alive but its service slows down.

    Where :class:`FaultRule` kills or loses messages, a slow rule only
    *stretches* them — the straggler case the crash model cannot
    express.  ``node`` is a glob over node ids; every matching rule
    multiplies the node's service time in the network's
    :class:`~repro.sim.network.ServiceModel`.

    ``factor`` is the multiplier when the rule starts; ``ramp`` adds to
    it per clock unit elapsed since ``start`` (a degrading NIC or a
    filling disk worsens over time — the canonical gray failure).
    ``jitter`` perturbs each query by a uniform ± fraction drawn from
    the plane's seeded generator, so slowness is noisy yet replayable.
    ``until`` expires the rule (the straggler recovers on its own).
    """

    node: str = "*"
    factor: float = 1.0
    ramp: float = 0.0
    jitter: float = 0.0
    start: float = 0.0
    until: float | None = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("slow factor must be >= 1 (a speedup is not a fault)")
        if self.ramp < 0:
            raise ValueError("ramp cannot be negative (rules only degrade)")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.until is not None and self.until <= self.start:
            raise ValueError("until must come after start")

    def applies(self, node_id: str, now: float) -> bool:
        if now < self.start:
            return False
        if self.until is not None and now >= self.until:
            return False
        return fnmatchcase(node_id, self.node)


@dataclass(frozen=True)
class DiskRule:
    """Storage-plane faults for a node's :class:`~repro.store.SimDisk`.

    Where :class:`FaultRule` batters messages in flight, a disk rule
    batters bytes at rest: ``torn_write`` is the probability a crash
    leaves a prefix of the first unsynced append behind (a torn WAL
    frame), ``bitrot`` the probability a crash flips ``bitrot_flips``
    seeded bytes in one durable file, ``io_error`` the per-operation
    probability of a transient :class:`~repro.store.DiskError`, and
    ``slow_factor`` stretches the virtual io time of every fsync.
    Matching rules merge: probabilities take the max, slow factors
    multiply.  Crashing always loses the unsynced tail — that is the
    disk model itself, not a fault rule.
    """

    node: str = "*"
    torn_write: float = 0.0
    bitrot: float = 0.0
    bitrot_flips: int = 1
    io_error: float = 0.0
    slow_factor: float = 1.0
    until: float | None = None

    def __post_init__(self) -> None:
        for name in ("torn_write", "bitrot", "io_error"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        if self.bitrot_flips < 1:
            raise ValueError("bitrot_flips must be >= 1")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1 (a speedup is not a fault)")

    def applies(self, node_id: str, now: float) -> bool:
        if self.until is not None and now >= self.until:
            return False
        return fnmatchcase(node_id, self.node)


class FaultPlane:
    """Per-message fault decisions plus the delayed-message hold queues."""

    def __init__(
        self,
        rng: np.random.Generator | None = None,
        protected_kinds: Iterable[str] = DEFAULT_PROTECTED_KINDS,
    ):
        self.rng = rng or make_rng()
        self.rules: list[FaultRule] = []
        self.slow_rules: list[SlowRule] = []
        self.disk_rules: list[DiskRule] = []
        self.protected_kinds = frozenset(protected_kinds)
        #: (sender, recipient) -> FIFO of (release_at, Message)
        self._held: dict[tuple[str, str], deque] = {}
        self.counters: Counter = Counter()
        #: tracer to announce injected faults on (set by the network's
        #: install_tracer/install_fault_plane; None = silent)
        self.tracer = None

    def _trace(self, message: "Message", outcome: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "fault.injected",
                outcome=outcome,
                kind=message.kind,
                to=message.recipient,
            )

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_rule(self, **kwargs) -> FaultRule:
        """Append a :class:`FaultRule` (keyword arguments as its fields)."""
        kinds = kwargs.get("kinds")
        if kinds is not None:
            kwargs["kinds"] = frozenset(kinds)
        rule = FaultRule(**kwargs)
        self.rules.append(rule)
        return rule

    def add_slow_rule(self, **kwargs) -> SlowRule:
        """Append a :class:`SlowRule` (keyword arguments as its fields)."""
        rule = SlowRule(**kwargs)
        self.slow_rules.append(rule)
        return rule

    def add_disk_rule(self, **kwargs) -> DiskRule:
        """Append a :class:`DiskRule` (keyword arguments as its fields)."""
        rule = DiskRule(**kwargs)
        self.disk_rules.append(rule)
        return rule

    def disk_profile(self, node_id: str, now: float) -> dict:
        """Merged disk-fault profile for one node at one instant.

        Probabilities take the max across matching rules, slow factors
        multiply; an empty dict means the neutral profile.
        """
        profile: dict = {}
        slow = 1.0
        for rule in self.disk_rules:
            if not rule.applies(node_id, now):
                continue
            for name in ("torn_write", "bitrot", "io_error"):
                value = getattr(rule, name)
                if value > profile.get(name, 0.0):
                    profile[name] = value
            if rule.bitrot > 0.0:
                profile["bitrot_flips"] = max(
                    profile.get("bitrot_flips", 1), rule.bitrot_flips
                )
            slow *= rule.slow_factor
        if slow != 1.0:
            profile["slow_factor"] = slow
        return profile

    def clear_rules(self) -> None:
        """Drop every rule (fault, slow and disk); held messages stay
        queued until released."""
        self.rules.clear()
        self.slow_rules.clear()
        self.disk_rules.clear()

    # ------------------------------------------------------------------
    # gray failure: service slowdown
    # ------------------------------------------------------------------
    def slowdown(self, node_id: str, now: float) -> float:
        """Combined service-time multiplier for a node (1.0 = healthy).

        Matching slow rules compose multiplicatively (a ramping disk
        *and* an overloaded NIC).  Jittered rules draw from the plane's
        seeded generator: deterministic given the simulation's message
        order, like every other fault decision.
        """
        if not self.slow_rules:
            return 1.0
        total = 1.0
        for rule in self.slow_rules:
            if not rule.applies(node_id, now):
                continue
            factor = rule.factor + rule.ramp * (now - rule.start)
            if rule.jitter:
                factor *= (
                    1.0 + rule.jitter * (2.0 * float(self.rng.random()) - 1.0)
                )
            total *= max(factor, 1.0)
            self.counters["slowed"] += 1
        return total

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def outcome_for(
        self, message: "Message", now: float, can_delay: bool = True
    ) -> tuple[str, float]:
        """Fate of one message: ``(outcome, release_at)``.

        Outcomes: ``deliver``, ``drop``, ``fail``, ``duplicate``,
        ``delay`` (with its maturity time).  A message on a channel with
        held traffic is forced to ``delay`` behind it — per-channel FIFO,
        so a delayed mutation can never be overtaken by a later one from
        the same sender.  ``can_delay=False`` (request/reply legs of a
        ``call``, multicast) converts ``delay`` into clean delivery.
        """
        if message.kind in self.protected_kinds:
            return "deliver", now
        channel = (message.sender, message.recipient)
        queue = self._held.get(channel)
        if can_delay and queue:
            release_at = max(queue[-1][0], now)
            self._trace(message, "delay")
            return "delay", release_at
        for rule in self.rules:
            if not rule.matches(message, now):
                continue
            draw = float(self.rng.random())
            if draw < rule.drop:
                self._trace(message, "drop")
                return "drop", now
            draw -= rule.drop
            if draw < rule.fail:
                self._trace(message, "fail")
                return "fail", now
            draw -= rule.fail
            if draw < rule.duplicate:
                self._trace(message, "duplicate")
                return "duplicate", now
            draw -= rule.duplicate
            if draw < rule.corrupt:
                self._trace(message, "corrupt")
                return "corrupt", now
            draw -= rule.corrupt
            if draw < rule.delay and can_delay:
                jitter = float(self.rng.random()) * rule.delay_window
                self._trace(message, "delay")
                return "delay", now + max(jitter, 1e-9)
            return "deliver", now
        return "deliver", now

    # ------------------------------------------------------------------
    # hold queues (delayed messages)
    # ------------------------------------------------------------------
    def hold(self, message: "Message", release_at: float) -> None:
        """Queue a delayed message for later release."""
        channel = (message.sender, message.recipient)
        queue = self._held.setdefault(channel, deque())
        if queue:
            release_at = max(release_at, queue[-1][0])  # keep FIFO maturity
        queue.append((release_at, message))
        self.counters["delayed"] += 1

    def requeue(self, message: "Message", release_at: float) -> None:
        """Re-hold an already-matured message (scheduler deferral).

        Same queue discipline as :meth:`hold`, but counted separately:
        a deferral is a *scheduling* decision, not a new injected fault.
        """
        self.hold(message, release_at)
        self.counters["delayed"] -= 1
        self.counters["deferred"] += 1

    def held_count(self, sender: str, recipient: str) -> int:
        """Messages currently held on one channel (schedulers consult
        this: a channel with held traffic must not be deferred past it,
        or per-channel FIFO would break)."""
        queue = self._held.get((sender, recipient))
        return len(queue) if queue else 0

    def release_due(self, now: float) -> list["Message"]:
        """Matured messages, globally ordered by maturity, FIFO per channel."""
        released: list["Message"] = []
        while True:
            best_channel, best_at = None, None
            for channel, queue in self._held.items():
                if queue and queue[0][0] <= now:
                    if best_at is None or queue[0][0] < best_at:
                        best_channel, best_at = channel, queue[0][0]
            if best_channel is None:
                return released
            _, message = self._held[best_channel].popleft()
            if not self._held[best_channel]:
                del self._held[best_channel]
            self.counters["released"] += 1
            released.append(message)

    @property
    def pending(self) -> int:
        """Messages currently held in delay queues."""
        return sum(len(q) for q in self._held.values())
