"""Deterministic random number generation for simulations and workloads.

Everything stochastic in this repository — workload keys, failure
sampling, Monte-Carlo availability — draws from generators created here,
so every experiment is reproducible from its seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x5DD5  # "SDDS"


def make_rng(seed: int | None = None) -> np.random.Generator:
    """A numpy Generator seeded deterministically (default fixed seed)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """An independent child generator for a numbered substream."""
    seed = int(rng.integers(0, 2**63 - 1)) ^ (stream * 0x9E3779B97F4A7C15) % 2**63
    return np.random.default_rng(seed)
