"""The simulated switched network.

Delivery is synchronous and depth-first: ``send`` invokes the recipient's
handler inline and returns nothing (fire-and-forget, 1 message);
``call`` returns the handler's return value and charges the reply
message too (2 messages), matching how the papers count a key search
(request + record back) versus an insert (request only).

Unavailability is modelled at the node level: messages to a failed node
raise :class:`NodeUnavailable` at the *sender*, standing in for the
sender's timeout.  The timeout itself costs no message.

A :class:`~repro.sim.faults.FaultPlane` (optional) adds message-level
faults on top: drops, duplicates, bounded delays and transient failures
(:class:`DeliveryFault`).  The network also keeps a **logical clock**:
``now`` advances by one unit per top-level operation and by ``advance``
(a sender backing off).  Clock listeners (failure schedules) and the
release of matured delayed messages run only at depth 0 — between
operation chains, never in the middle of one.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable

from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import MessageStats

#: Kinds a bounded inbound queue may shed under overload.  Deliberately
#: an allowlist of foreground data traffic: shedding structural or
#: recovery control messages would turn an overload into a torn split,
#: and every kind here is safe to retry (mutations are value-idempotent
#: and Δ-parity is deduped by sequence number).
DEFAULT_SHEDDABLE_KINDS = frozenset(
    {"insert", "update", "delete", "search", "parity.update", "ops.batch"}
)


class UnknownNode(KeyError):
    """Message addressed to a node id that was never registered."""


class NodeUnavailable(RuntimeError):
    """The addressed node is currently failed (sender's timeout fires)."""

    def __init__(self, node_id: str):
        super().__init__(f"node {node_id!r} is unavailable")
        self.node_id = node_id


class DeliveryFault(RuntimeError):
    """Transient message-level failure, visible to the sender.

    Raised when the fault plane drops or fails a ``call``'s request or
    reply, or transiently fails a ``send``.  Unlike
    :class:`NodeUnavailable` the addressed node is (as far as the sender
    knows) alive — retrying after a backoff is the right reaction.
    ``stage`` is ``"request"`` (handler did NOT run) or ``"reply"``
    (handler DID run; the result was lost — the at-least-once case).
    """

    def __init__(self, node_id: str, stage: str = "request"):
        super().__init__(
            f"delivery to {node_id!r} failed transiently ({stage} lost)"
        )
        self.node_id = node_id
        self.stage = stage


class NodeBusy(DeliveryFault):
    """Typed backpressure reply: the recipient's bounded inbound queue
    is full and the message was shed at admission.

    Subclasses :class:`DeliveryFault` so every existing retry ladder
    honors it, with ``stage == "busy"`` — the handler did NOT run, and
    unlike a transient fault the *right* reaction is a jittered backoff
    (draining the queue) rather than an immediate resend.
    """

    def __init__(self, node_id: str, depth: int, limit: int):
        RuntimeError.__init__(
            self,
            f"node {node_id!r} is overloaded: inbound queue "
            f"{depth}/{limit}, message shed",
        )
        self.node_id = node_id
        self.stage = "busy"
        self.queue_depth = depth
        self.queue_limit = limit


class ServiceModel:
    """Deterministic per-link latency + per-node service-queue model.

    The simulator's delivery stays synchronous and its logical clock
    still ticks once per top-level operation; latency here is *virtual*:
    every delivery charges

        ``link(sender→recipient) + service(recipient) × slowdown ×
        (1 + queue_depth(recipient))``

    into :attr:`accumulated`, which :attr:`Network.virtual_time` adds to
    the logical clock.  Clients measure an operation as the difference
    of ``virtual_time`` around it — so a straggler (``slowdown`` comes
    from the fault plane's slow rules) or a deep queue shows up as tail
    latency without perturbing the pinned message/clock accounting.

    Queues model per-node service backlogs: each delivery parks one
    unit of work on the recipient, and backlogs drain at ``drain_rate``
    per clock unit (lazily, on read).  A node with a bounded inbound
    queue (``Node.inbound_queue_limit``) sheds sheddable kinds once its
    backlog reaches the bound — the typed ``busy`` reply of the
    backpressure protocol.

    Everything is deterministic: the only randomness enters through
    jittered slow rules, which draw from the fault plane's seeded
    generator.
    """

    def __init__(
        self,
        link_latency: float = 0.25,
        service_time: float = 1.0,
        drain_rate: float = 1.0,
        sheddable_kinds=DEFAULT_SHEDDABLE_KINDS,
        bulk_op_weight: float = 0.0,
    ):
        if link_latency < 0 or service_time < 0:
            raise ValueError("latencies cannot be negative")
        if drain_rate <= 0:
            raise ValueError("drain_rate must be positive")
        if bulk_op_weight < 0:
            raise ValueError("bulk_op_weight cannot be negative")
        self.link_latency = link_latency
        self.service_time = service_time
        self.drain_rate = drain_rate
        self.sheddable_kinds = frozenset(sheddable_kinds)
        #: extra backlog units per op beyond the first in a batch
        #: message (ops.batch / parity.batch) — 0.0 keeps batch messages
        #: costing one service time, the pre-batch behaviour
        self.bulk_op_weight = bulk_op_weight
        #: (sender, recipient) -> base link latency override
        self.link_overrides: dict[tuple[str, str], float] = {}
        #: node id -> base service time override
        self.service_overrides: dict[str, float] = {}
        #: total virtual latency charged since installation
        self.accumulated = 0.0
        self.max_depth_seen = 0.0
        #: node id -> deepest backlog ever seen there (the global
        #: ``max_depth_seen`` is dominated by unbounded control nodes;
        #: per-node highs show whether a *bounded* queue held its cap)
        self.max_depths: dict[str, float] = {}
        self.counters: Counter = Counter()
        self._depths: dict[str, float] = {}
        self._drained_at: dict[str, float] = {}

    # ------------------------------------------------------------------
    def set_link(self, sender: str, recipient: str, latency: float) -> None:
        """Override one directed link's base latency."""
        if latency < 0:
            raise ValueError("latency cannot be negative")
        self.link_overrides[(sender, recipient)] = latency

    def set_service(self, node_id: str, service_time: float) -> None:
        """Override one node's base service time."""
        if service_time < 0:
            raise ValueError("service time cannot be negative")
        self.service_overrides[node_id] = service_time

    # ------------------------------------------------------------------
    def queue_depth(self, node_id: str, now: float) -> float:
        """Current backlog at a node (drains lazily with the clock)."""
        depth = self._depths.get(node_id, 0.0)
        if depth:
            last = self._drained_at.get(node_id, now)
            depth = max(0.0, depth - (now - last) * self.drain_rate)
            self._depths[node_id] = depth
        self._drained_at[node_id] = now
        return depth

    def charge(self, message: Message, now: float, slowdown: float = 1.0) -> float:
        """Account one delivery: returns its virtual latency and parks
        one unit of work on the recipient's queue."""
        link = self.link_overrides.get(
            (message.sender, message.recipient), self.link_latency
        )
        service = self.service_overrides.get(
            message.recipient, self.service_time
        )
        depth = self.queue_depth(message.recipient, now)
        latency = link + service * slowdown * (1.0 + depth)
        self._depths[message.recipient] = depth + 1.0
        if depth + 1.0 > self.max_depth_seen:
            self.max_depth_seen = depth + 1.0
        if depth + 1.0 > self.max_depths.get(message.recipient, 0.0):
            self.max_depths[message.recipient] = depth + 1.0
        self.accumulated += latency
        self.counters["deliveries"] += 1
        if slowdown > 1.0:
            self.counters["slowed_deliveries"] += 1
        return latency

    def charge_bulk(self, node_id: str, units: float, now: float) -> None:
        """Park ``units`` of backlog on a node without a message charge.

        Rebuild transfers move a whole bucket in one RPC: the message
        itself is charged like any call, but the serialization work it
        leaves behind scales with the records moved.  Subsequent
        deliveries to the node pay for that backlog through the queue
        term until it drains — which is exactly what recovery pacing
        throttles against.
        """
        depth = self.queue_depth(node_id, now) + units
        self._depths[node_id] = depth
        if depth > self.max_depth_seen:
            self.max_depth_seen = depth
        if depth > self.max_depths.get(node_id, 0.0):
            self.max_depths[node_id] = depth
        self.counters["bulk_units"] += units

    def charge_link(self, sender: str, recipient: str) -> float:
        """Account a reply leg: wire time only (the caller is already
        waiting; nothing queues at a client)."""
        link = self.link_overrides.get((sender, recipient), self.link_latency)
        self.accumulated += link
        return link


class Network:
    """Node registry, message transport, accounting and failure state."""

    def __init__(self, multicast_available: bool = True):
        self.nodes: dict[str, Node] = {}
        self.failed: set[str] = set()
        self.stats = MessageStats()
        self.multicast_available = multicast_available
        self._depth = 0
        #: logical clock: 1 unit per top-level operation, plus advance()
        self.now = 0.0
        self.fault_plane = None
        #: latency/queue plane (None = latency-free, zero overhead)
        self.service = None
        self._clock_listeners: list[Callable[[float], None]] = []
        #: delivery scheduler hook for matured delayed messages (None =
        #: the fixed legacy order; see repro.check.scheduler)
        self.scheduler = None
        #: structured event tracer (None = tracing off, zero overhead)
        self.tracer = None
        #: metrics registry (None = metrics off)
        self.metrics = None
        self._m_messages = None
        self._m_bytes = None
        self._m_queue_depth = None
        self._m_queue_max = None
        self._m_shed = None

    # ------------------------------------------------------------------
    # registry and failure state
    # ------------------------------------------------------------------
    def register(self, node: Node) -> None:
        """Attach a node; its id must be unique on this network."""
        if node.node_id in self.nodes:
            raise ValueError(f"node id {node.node_id!r} already registered")
        self.nodes[node.node_id] = node
        node.network = self
        if self.tracer is not None:
            self.tracer.emit("node.register", node=node.node_id)

    def unregister(self, node_id: str) -> None:
        """Detach a node entirely (decommissioned server).

        Strict: unregistering an unknown id raises :class:`UnknownNode`
        — a typo in a decommissioning schedule should fail loudly, not
        silently do nothing.
        """
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        del self.nodes[node_id]
        self.failed.discard(node_id)
        if self.tracer is not None:
            self.tracer.emit("node.unregister", node=node_id)

    def fail(self, node_id: str) -> None:
        """Make a node unavailable (crash / partition / power-off)."""
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        self.failed.add(node_id)
        if self.tracer is not None:
            self.tracer.emit("node.fail", node=node_id)

    def restore(self, node_id: str, silent: bool = False) -> None:
        """Bring a failed node back (its state as the node object holds it).

        Strict: restoring an id that was never registered raises
        :class:`UnknownNode`, mirroring :meth:`fail` — a misspelled
        failure schedule must not silently "succeed".  Restoring a
        registered, not-failed node is a no-op (the node may have been
        rebuilt onto a spare while its crash window was still open).

        A restored node that defines ``on_restored`` (the durable
        bucket servers) is told it just rebooted, which starts its
        local replay + rejoin handshake.  ``silent=True`` skips the
        hook — the legacy rebirth semantics (node state intact, nobody
        told), kept as the escape hatch chaos tests rely on.  Nodes
        without the hook restore exactly as before either way.
        """
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        was_failed = node_id in self.failed
        if was_failed and self.tracer is not None:
            self.tracer.emit("node.restore", node=node_id)
        self.failed.discard(node_id)
        if was_failed and not silent:
            hook = getattr(self.nodes[node_id], "on_restored", None)
            if hook is not None:
                hook()

    def is_available(self, node_id: str) -> bool:
        """True when the node exists and is not failed."""
        return node_id in self.nodes and node_id not in self.failed

    # ------------------------------------------------------------------
    # fault plane and logical clock
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane) -> None:
        """Attach a :class:`~repro.sim.faults.FaultPlane` (None removes)."""
        self.fault_plane = plane
        if plane is not None:
            plane.tracer = self.tracer

    def install_scheduler(self, scheduler) -> None:
        """Attach a delivery :class:`~repro.check.scheduler.Scheduler`
        (None removes).

        The scheduler decides the delivery order of each matured batch
        in :meth:`_pump` — the model checker's systematic-exploration
        hook.  With none installed (or the FIFO scheduler) the pump
        delivers in the fixed legacy order, byte-for-byte (pinned by
        the determinism tests).
        """
        self.scheduler = scheduler
        if scheduler is not None:
            scheduler.bind(self)

    def install_service_model(self, model) -> None:
        """Attach a :class:`ServiceModel` (None removes).

        With a model installed every delivery accrues virtual latency
        (see :attr:`virtual_time`) and nodes with a bounded
        ``inbound_queue_limit`` shed excess sheddable traffic with
        :class:`NodeBusy`.  Without one, nothing here is consulted.
        """
        self.service = model
        self._bind_service_instruments()

    @property
    def virtual_time(self) -> float:
        """Logical clock plus all accrued virtual latency.

        Clients bracket an operation with this to measure its
        end-to-end latency; identical to ``now`` when no service model
        is installed.
        """
        if self.service is None:
            return self.now
        return self.now + self.service.accumulated

    def install_tracer(self, tracer) -> None:
        """Attach a :class:`~repro.obs.trace.Tracer` (None removes).

        The tracer's clock is bound to this network's logical clock, so
        every event timestamp is simulated time — the determinism the
        replay tests rely on.  With no tracer installed every emission
        site is a single ``is None`` check.
        """
        self.tracer = tracer
        if tracer is not None:
            tracer.clock = lambda: self.now
        if self.fault_plane is not None:
            self.fault_plane.tracer = tracer

    def install_metrics(self, registry) -> None:
        """Attach a :class:`~repro.obs.metrics.MetricsRegistry` (None
        removes).  The network feeds the global ``net.*`` counters, and
        every labelled :class:`MessageStats` window that closes lands in
        the registry's per-operation histograms.
        """
        self.metrics = registry
        self.stats.metrics = registry
        if registry is not None:
            self._m_messages = registry.counter(
                "net.messages", "messages delivered"
            )
            self._m_bytes = registry.counter(
                "net.bytes", "payload bytes delivered"
            )
        else:
            self._m_messages = None
            self._m_bytes = None
        self._bind_service_instruments()

    def _bind_service_instruments(self) -> None:
        """Create the service-plane instruments once both a metrics
        registry and a service model are present."""
        if self.metrics is None or self.service is None:
            self._m_queue_depth = None
            self._m_queue_max = None
            self._m_shed = None
            return
        from repro.obs.metrics import QUEUE_DEPTH_BUCKETS

        self._m_queue_depth = self.metrics.histogram(
            "svc.queue_depth",
            QUEUE_DEPTH_BUCKETS,
            "recipient backlog seen by each delivery",
        )
        self._m_queue_max = self.metrics.gauge(
            "svc.queue_depth.max", "deepest backlog any node reached"
        )
        self._m_shed = self.metrics.counter(
            "svc.shed", "messages shed by bounded inbound queues"
        )

    def add_clock_listener(self, listener: Callable[[float], None]) -> None:
        """Register a callback invoked with ``now`` at each clock step.

        Listeners run only between operation chains (depth 0); failure
        schedules use this to apply crash/restore windows.
        """
        self._clock_listeners.append(listener)

    def remove_clock_listener(self, listener: Callable[[float], None]) -> None:
        """Detach a clock listener (no-op when absent).

        A coordinator takeover uses this to silence the deposed
        primary's heartbeat.
        """
        try:
            self._clock_listeners.remove(listener)
        except ValueError:
            pass

    def advance(self, dt: float = 1.0) -> float:
        """Advance the logical clock (a sender waiting / backing off).

        At depth 0 this also runs clock listeners and delivers matured
        delayed messages; mid-chain it only moves the clock (the
        catch-up happens when the chain unwinds).
        """
        if dt < 0:
            raise ValueError("time cannot go backwards")
        self.now += dt
        if self._depth == 0:
            self._run_listeners()
            self._pump()
        return self.now

    def _tick(self) -> None:
        """One clock unit per top-level operation."""
        self.now += 1.0
        self._run_listeners()
        self._pump()

    def _run_listeners(self) -> None:
        # Snapshot: a listener may add/remove listeners (a standby
        # taking over swaps the primary's heartbeat) mid-iteration.
        for listener in list(self._clock_listeners):
            listener(self.now)

    def _pump(self) -> None:
        """Deliver matured delayed messages (depth 0 only).

        A message whose recipient died or was decommissioned while it
        was in flight is counted as lost, not raised — nobody is waiting
        on a fire-and-forget send from the past.
        """
        plane = self.fault_plane
        if plane is None:
            return
        due = plane.release_due(self.now)
        if due and self.scheduler is not None:
            due = self.scheduler.schedule(due, self)
        for message in due:
            if self.tracer is not None:
                self.tracer.emit(
                    "msg.release", to=message.recipient, kind=message.kind
                )
            try:
                self._deliver(message)
            except (UnknownNode, NodeUnavailable):
                plane.counters["lost_in_flight"] += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.lost",
                        to=message.recipient,
                        kind=message.kind,
                        reason="recipient gone",
                    )
            except NodeBusy:
                # A matured delayed message arriving at a full queue is
                # simply lost — nobody waits on a send from the past.
                plane.counters["lost_in_flight"] += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.lost",
                        to=message.recipient,
                        kind=message.kind,
                        reason="shed",
                    )

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> Any:
        if message.recipient not in self.nodes:
            raise UnknownNode(message.recipient)
        if message.recipient in self.failed:
            raise NodeUnavailable(message.recipient)
        if self.service is not None:
            self._service_admit(message)
        self._depth += 1
        self.stats.record(message.kind, message.size, self._depth)
        if self._m_messages is not None:
            self._m_messages.inc()
            self._m_bytes.inc(message.size)
        if self.tracer is not None:
            self.tracer.emit(
                "msg.deliver",
                **{"from": message.sender},
                to=message.recipient,
                kind=message.kind,
                size=message.size,
                depth=self._depth,
            )
        try:
            return self.nodes[message.recipient].receive(message)
        finally:
            self._depth -= 1

    def _service_admit(self, message: Message) -> None:
        """Admission control and latency accounting for one delivery.

        Raises :class:`NodeBusy` at the *sender* when the recipient's
        bounded inbound queue is full and the kind is sheddable —
        the backpressure reply senders honor with a jittered backoff.
        Admitted messages charge virtual latency, stretched by any
        matching slow rules on the fault plane (gray failures).
        """
        service = self.service
        recipient = message.recipient
        limit = getattr(self.nodes[recipient], "inbound_queue_limit", None)
        depth = service.queue_depth(recipient, self.now)
        if (
            limit is not None
            and message.kind in service.sheddable_kinds
            and depth >= limit
        ):
            service.counters["shed"] += 1
            if self._m_shed is not None:
                self._m_shed.inc()
            if self.tracer is not None:
                self.tracer.emit(
                    "msg.shed",
                    to=recipient,
                    kind=message.kind,
                    depth=int(depth),
                    limit=limit,
                )
            raise NodeBusy(recipient, int(depth), limit)
        plane = self.fault_plane
        slowdown = (
            plane.slowdown(recipient, self.now) if plane is not None else 1.0
        )
        service.charge(message, self.now, slowdown)
        if service.bulk_op_weight and message.kind in (
            "ops.batch", "parity.batch"
        ):
            payload = message.payload
            ops = payload.get("ops") if isinstance(payload, dict) else None
            if isinstance(ops, list) and len(ops) > 1:
                # The message charged one service time; the per-op work
                # beyond the first parks as weighted backlog the queue
                # term drains — batched throughput is amortized, not free.
                service.charge_bulk(
                    recipient,
                    service.bulk_op_weight * (len(ops) - 1),
                    self.now,
                )
        if self._m_queue_depth is not None:
            self._m_queue_depth.observe(depth)
            self._m_queue_max.set(service.max_depth_seen)

    def send(self, sender: str, recipient: str, kind: str, payload: Any = None,
             size: int = 0) -> None:
        """Fire-and-forget unicast: one message, no reply charged.

        ``size`` optionally carries a sender-precomputed wire size
        (header included); it must match what the envelope would
        estimate.  0 estimates as always."""
        if self._depth == 0:
            self._tick()
        message = Message(sender, recipient, kind, payload, size)
        if self.tracer is not None:
            self.tracer.emit(
                "msg.send",
                **{"from": sender},
                to=recipient,
                kind=kind,
                size=message.size,
            )
        plane = self.fault_plane
        if plane is not None:
            outcome, release_at = plane.outcome_for(message, self.now)
            if outcome == "drop":
                # Silently lost: the message left the sender (charged)
                # but never arrives — the UDP case.
                plane.counters["dropped"] += 1
                self.stats.record(message.kind, message.size, self._depth + 1)
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.lost", to=recipient, kind=kind, reason="drop"
                    )
                return
            if outcome == "fail":
                plane.counters["failed"] += 1
                raise DeliveryFault(recipient, "request")
            if outcome == "delay":
                plane.hold(message, release_at)
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.hold",
                        to=recipient,
                        kind=kind,
                        release_at=release_at,
                    )
                return
            if outcome == "duplicate":
                plane.counters["duplicated"] += 1
                self._deliver(message)
                self._deliver(Message(sender, recipient, kind, payload,
                                      message.size))
                return
            if outcome == "corrupt":
                plane.counters["corrupted"] += 1
                self._deliver(self._corrupted_copy(message))
                return
        self._deliver(message)

    def call(self, sender: str, recipient: str, kind: str, payload: Any = None,
             size: int = 0) -> Any:
        """Request/reply unicast: two messages, returns the handler result.

        Under a fault plane the request and the reply can each be lost
        (raising :class:`DeliveryFault` at the sender — its timeout) or
        the request duplicated (the handler runs twice; the second
        result is returned, as after a retransmission).  Calls are never
        delayed: they model a blocking RPC.
        """
        if self._depth == 0:
            self._tick()
        message = Message(sender, recipient, kind, payload, size)
        if self.tracer is not None:
            self.tracer.emit(
                "msg.send",
                **{"from": sender},
                to=recipient,
                kind=kind,
                size=message.size,
                rpc=True,
            )
        plane = self.fault_plane
        if plane is not None:
            outcome, _ = plane.outcome_for(message, self.now, can_delay=False)
            if outcome in ("drop", "fail"):
                plane.counters["dropped" if outcome == "drop" else "failed"] += 1
                if outcome == "drop":
                    self.stats.record(message.kind, message.size, self._depth + 1)
                    if self.tracer is not None:
                        self.tracer.emit(
                            "msg.lost", to=recipient, kind=kind, reason="drop"
                        )
                raise DeliveryFault(recipient, "request")
            if outcome == "duplicate":
                plane.counters["duplicated"] += 1
                self._deliver(message)
                result = self._deliver(
                    Message(sender, recipient, kind, payload, message.size))
            elif outcome == "corrupt":
                plane.counters["corrupted"] += 1
                result = self._deliver(self._corrupted_copy(message))
            else:
                result = self._deliver(message)
            reply = Message(recipient, sender, f"{kind}.reply", result)
            outcome, _ = plane.outcome_for(reply, self.now, can_delay=False)
            if outcome in ("drop", "fail"):
                plane.counters["dropped" if outcome == "drop" else "failed"] += 1
                if outcome == "drop":
                    self.stats.record(reply.kind, reply.size, self._depth + 1)
                    if self.tracer is not None:
                        self.tracer.emit(
                            "msg.lost",
                            to=sender,
                            kind=reply.kind,
                            reason="drop",
                        )
                raise DeliveryFault(recipient, "reply")
            self._record_reply(reply, self._depth + 1)
            return result
        result = self._deliver(message)
        reply = Message(recipient, sender, f"{kind}.reply", result)
        self._record_reply(reply, self._depth + 1)
        return result

    def _corrupted_copy(self, message: Message) -> Message:
        """The message with seeded byte-flips in its bytes-valued payload.

        Models in-flight corruption that slips past link checksums: the
        frame arrives, parses, and carries wrong bytes — exactly what
        the algebraic-signature scrub exists to catch.  Flip positions
        draw from the fault plane's generator (deterministic per seed).
        """
        rng = self.fault_plane.rng

        def flip(data: bytes) -> bytes:
            if not data:
                return data
            buf = bytearray(data)
            pos = int(rng.integers(len(buf)))
            buf[pos] ^= 1 << int(rng.integers(8))
            return bytes(buf)

        payload = message.payload
        if isinstance(payload, bytes):
            payload = flip(payload)
        elif isinstance(payload, dict):
            payload = {
                key: flip(value) if isinstance(value, bytes) else value
                for key, value in payload.items()
            }
        return Message(
            message.sender, message.recipient, message.kind, payload,
            message.size,
        )

    def _record_reply(self, reply: Message, depth: int) -> None:
        """Account one successful reply leg (stats, metrics, trace)."""
        self.stats.record(reply.kind, reply.size, depth)
        if self.service is not None:
            self.service.charge_link(reply.sender, reply.recipient)
        if self._m_messages is not None:
            self._m_messages.inc()
            self._m_bytes.inc(reply.size)
        if self.tracer is not None:
            self.tracer.emit(
                "msg.reply",
                **{"from": reply.sender},
                to=reply.recipient,
                kind=reply.kind,
                size=reply.size,
            )

    def multicast(
        self,
        sender: str,
        recipients: list[str],
        kind: str,
        payload: Any = None,
        collect_replies: bool = True,
    ) -> tuple[dict[str, Any], list[str]]:
        """Deliver to many nodes; returns ``(replies, unavailable)``.

        With hardware multicast available the request costs one message
        regardless of fan-out, otherwise one per recipient (the papers
        price scans both ways).  Replies are always unicast.  Failed
        recipients are skipped and reported, letting deterministic
        termination protocols detect the gap.  Under a fault plane a
        recipient whose request copy — or collected *reply* — is dropped
        or transiently failed also lands in ``unavailable``: from the
        sender's seat a lost reply and a dead node look identical (only
        the timeout fires).  The reply leg passes through the same
        fault-plane rules as a ``call``'s reply; a lost reply means the
        handler DID run (the at-least-once case).
        """
        unavailable: list[str] = []
        replies: dict[str, Any] = {}
        charged_request = False
        plane = self.fault_plane
        for recipient in recipients:
            if not self.is_available(recipient):
                unavailable.append(recipient)
                continue
            message = Message(sender, recipient, kind, payload)
            if plane is not None:
                outcome, _ = plane.outcome_for(message, self.now, can_delay=False)
                if outcome in ("drop", "fail"):
                    plane.counters[
                        "dropped" if outcome == "drop" else "failed"
                    ] += 1
                    unavailable.append(recipient)
                    continue
                if outcome == "corrupt":
                    plane.counters["corrupted"] += 1
                    message = self._corrupted_copy(message)
            if self.multicast_available and charged_request:
                # Multicast fabric: later copies of the request are free.
                self._depth += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "msg.deliver",
                        **{"from": sender},
                        to=recipient,
                        kind=kind,
                        size=message.size,
                        depth=self._depth,
                        free=True,
                    )
                try:
                    result = self.nodes[recipient].receive(message)
                finally:
                    self._depth -= 1
            else:
                try:
                    result = self._deliver(message)
                except NodeBusy:
                    # An overloaded recipient looks like a dead one from
                    # the multicaster's seat: only the timeout fires.
                    unavailable.append(recipient)
                    continue
                charged_request = True
            if collect_replies:
                reply = Message(recipient, sender, f"{kind}.reply", result)
                if plane is not None:
                    outcome, _ = plane.outcome_for(
                        reply, self.now, can_delay=False
                    )
                    if outcome in ("drop", "fail"):
                        plane.counters[
                            "dropped" if outcome == "drop" else "failed"
                        ] += 1
                        if outcome == "drop":
                            self.stats.record(
                                reply.kind, reply.size, self._depth + 2
                            )
                            if self.tracer is not None:
                                self.tracer.emit(
                                    "msg.lost",
                                    to=sender,
                                    kind=reply.kind,
                                    reason="drop",
                                )
                        unavailable.append(recipient)
                        continue
                self._record_reply(reply, self._depth + 2)
                replies[recipient] = result
        return replies, unavailable
