"""The simulated switched network.

Delivery is synchronous and depth-first: ``send`` invokes the recipient's
handler inline and returns nothing (fire-and-forget, 1 message);
``call`` returns the handler's return value and charges the reply
message too (2 messages), matching how the papers count a key search
(request + record back) versus an insert (request only).

Unavailability is modelled at the node level: messages to a failed node
raise :class:`NodeUnavailable` at the *sender*, standing in for the
sender's timeout.  The timeout itself costs no message.

A :class:`~repro.sim.faults.FaultPlane` (optional) adds message-level
faults on top: drops, duplicates, bounded delays and transient failures
(:class:`DeliveryFault`).  The network also keeps a **logical clock**:
``now`` advances by one unit per top-level operation and by ``advance``
(a sender backing off).  Clock listeners (failure schedules) and the
release of matured delayed messages run only at depth 0 — between
operation chains, never in the middle of one.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import MessageStats


class UnknownNode(KeyError):
    """Message addressed to a node id that was never registered."""


class NodeUnavailable(RuntimeError):
    """The addressed node is currently failed (sender's timeout fires)."""

    def __init__(self, node_id: str):
        super().__init__(f"node {node_id!r} is unavailable")
        self.node_id = node_id


class DeliveryFault(RuntimeError):
    """Transient message-level failure, visible to the sender.

    Raised when the fault plane drops or fails a ``call``'s request or
    reply, or transiently fails a ``send``.  Unlike
    :class:`NodeUnavailable` the addressed node is (as far as the sender
    knows) alive — retrying after a backoff is the right reaction.
    ``stage`` is ``"request"`` (handler did NOT run) or ``"reply"``
    (handler DID run; the result was lost — the at-least-once case).
    """

    def __init__(self, node_id: str, stage: str = "request"):
        super().__init__(
            f"delivery to {node_id!r} failed transiently ({stage} lost)"
        )
        self.node_id = node_id
        self.stage = stage


class Network:
    """Node registry, message transport, accounting and failure state."""

    def __init__(self, multicast_available: bool = True):
        self.nodes: dict[str, Node] = {}
        self.failed: set[str] = set()
        self.stats = MessageStats()
        self.multicast_available = multicast_available
        self._depth = 0
        #: logical clock: 1 unit per top-level operation, plus advance()
        self.now = 0.0
        self.fault_plane = None
        self._clock_listeners: list[Callable[[float], None]] = []

    # ------------------------------------------------------------------
    # registry and failure state
    # ------------------------------------------------------------------
    def register(self, node: Node) -> None:
        """Attach a node; its id must be unique on this network."""
        if node.node_id in self.nodes:
            raise ValueError(f"node id {node.node_id!r} already registered")
        self.nodes[node.node_id] = node
        node.network = self

    def unregister(self, node_id: str) -> None:
        """Detach a node entirely (decommissioned server).

        Strict: unregistering an unknown id raises :class:`UnknownNode`
        — a typo in a decommissioning schedule should fail loudly, not
        silently do nothing.
        """
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        del self.nodes[node_id]
        self.failed.discard(node_id)

    def fail(self, node_id: str) -> None:
        """Make a node unavailable (crash / partition / power-off)."""
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        self.failed.add(node_id)

    def restore(self, node_id: str) -> None:
        """Bring a failed node back (its state as the node object holds it).

        Strict: restoring an id that was never registered raises
        :class:`UnknownNode`, mirroring :meth:`fail` — a misspelled
        failure schedule must not silently "succeed".  Restoring a
        registered, not-failed node is a no-op (the node may have been
        rebuilt onto a spare while its crash window was still open).
        """
        if node_id not in self.nodes:
            raise UnknownNode(node_id)
        self.failed.discard(node_id)

    def is_available(self, node_id: str) -> bool:
        """True when the node exists and is not failed."""
        return node_id in self.nodes and node_id not in self.failed

    # ------------------------------------------------------------------
    # fault plane and logical clock
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane) -> None:
        """Attach a :class:`~repro.sim.faults.FaultPlane` (None removes)."""
        self.fault_plane = plane

    def add_clock_listener(self, listener: Callable[[float], None]) -> None:
        """Register a callback invoked with ``now`` at each clock step.

        Listeners run only between operation chains (depth 0); failure
        schedules use this to apply crash/restore windows.
        """
        self._clock_listeners.append(listener)

    def advance(self, dt: float = 1.0) -> float:
        """Advance the logical clock (a sender waiting / backing off).

        At depth 0 this also runs clock listeners and delivers matured
        delayed messages; mid-chain it only moves the clock (the
        catch-up happens when the chain unwinds).
        """
        if dt < 0:
            raise ValueError("time cannot go backwards")
        self.now += dt
        if self._depth == 0:
            self._run_listeners()
            self._pump()
        return self.now

    def _tick(self) -> None:
        """One clock unit per top-level operation."""
        self.now += 1.0
        self._run_listeners()
        self._pump()

    def _run_listeners(self) -> None:
        for listener in self._clock_listeners:
            listener(self.now)

    def _pump(self) -> None:
        """Deliver matured delayed messages (depth 0 only).

        A message whose recipient died or was decommissioned while it
        was in flight is counted as lost, not raised — nobody is waiting
        on a fire-and-forget send from the past.
        """
        plane = self.fault_plane
        if plane is None:
            return
        for message in plane.release_due(self.now):
            try:
                self._deliver(message)
            except (UnknownNode, NodeUnavailable):
                plane.counters["lost_in_flight"] += 1

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> Any:
        if message.recipient not in self.nodes:
            raise UnknownNode(message.recipient)
        if message.recipient in self.failed:
            raise NodeUnavailable(message.recipient)
        self._depth += 1
        self.stats.record(message.kind, message.size, self._depth)
        try:
            return self.nodes[message.recipient].receive(message)
        finally:
            self._depth -= 1

    def send(self, sender: str, recipient: str, kind: str, payload: Any = None) -> None:
        """Fire-and-forget unicast: one message, no reply charged."""
        if self._depth == 0:
            self._tick()
        message = Message(sender, recipient, kind, payload)
        plane = self.fault_plane
        if plane is not None:
            outcome, release_at = plane.outcome_for(message, self.now)
            if outcome == "drop":
                # Silently lost: the message left the sender (charged)
                # but never arrives — the UDP case.
                plane.counters["dropped"] += 1
                self.stats.record(message.kind, message.size, self._depth + 1)
                return
            if outcome == "fail":
                plane.counters["failed"] += 1
                raise DeliveryFault(recipient, "request")
            if outcome == "delay":
                plane.hold(message, release_at)
                return
            if outcome == "duplicate":
                plane.counters["duplicated"] += 1
                self._deliver(message)
                self._deliver(Message(sender, recipient, kind, payload))
                return
        self._deliver(message)

    def call(self, sender: str, recipient: str, kind: str, payload: Any = None) -> Any:
        """Request/reply unicast: two messages, returns the handler result.

        Under a fault plane the request and the reply can each be lost
        (raising :class:`DeliveryFault` at the sender — its timeout) or
        the request duplicated (the handler runs twice; the second
        result is returned, as after a retransmission).  Calls are never
        delayed: they model a blocking RPC.
        """
        if self._depth == 0:
            self._tick()
        message = Message(sender, recipient, kind, payload)
        plane = self.fault_plane
        if plane is not None:
            outcome, _ = plane.outcome_for(message, self.now, can_delay=False)
            if outcome in ("drop", "fail"):
                plane.counters["dropped" if outcome == "drop" else "failed"] += 1
                if outcome == "drop":
                    self.stats.record(message.kind, message.size, self._depth + 1)
                raise DeliveryFault(recipient, "request")
            if outcome == "duplicate":
                plane.counters["duplicated"] += 1
                self._deliver(message)
                result = self._deliver(Message(sender, recipient, kind, payload))
            else:
                result = self._deliver(message)
            reply = Message(recipient, sender, f"{kind}.reply", result)
            outcome, _ = plane.outcome_for(reply, self.now, can_delay=False)
            if outcome in ("drop", "fail"):
                plane.counters["dropped" if outcome == "drop" else "failed"] += 1
                if outcome == "drop":
                    self.stats.record(reply.kind, reply.size, self._depth + 1)
                raise DeliveryFault(recipient, "reply")
            self.stats.record(reply.kind, reply.size, self._depth + 1)
            return result
        result = self._deliver(message)
        reply = Message(recipient, sender, f"{kind}.reply", result)
        self.stats.record(reply.kind, reply.size, self._depth + 1)
        return result

    def multicast(
        self,
        sender: str,
        recipients: list[str],
        kind: str,
        payload: Any = None,
        collect_replies: bool = True,
    ) -> tuple[dict[str, Any], list[str]]:
        """Deliver to many nodes; returns ``(replies, unavailable)``.

        With hardware multicast available the request costs one message
        regardless of fan-out, otherwise one per recipient (the papers
        price scans both ways).  Replies are always unicast.  Failed
        recipients are skipped and reported, letting deterministic
        termination protocols detect the gap.  Under a fault plane a
        recipient whose copy is dropped or transiently failed also lands
        in ``unavailable`` — from the sender's seat a lost reply and a
        dead node look identical (only the timeout fires).
        """
        unavailable: list[str] = []
        replies: dict[str, Any] = {}
        charged_request = False
        plane = self.fault_plane
        for recipient in recipients:
            if not self.is_available(recipient):
                unavailable.append(recipient)
                continue
            message = Message(sender, recipient, kind, payload)
            if plane is not None:
                outcome, _ = plane.outcome_for(message, self.now, can_delay=False)
                if outcome in ("drop", "fail"):
                    plane.counters[
                        "dropped" if outcome == "drop" else "failed"
                    ] += 1
                    unavailable.append(recipient)
                    continue
            if self.multicast_available and charged_request:
                # Multicast fabric: later copies of the request are free.
                self._depth += 1
                try:
                    result = self.nodes[recipient].receive(message)
                finally:
                    self._depth -= 1
            else:
                result = self._deliver(message)
                charged_request = True
            if collect_replies:
                reply = Message(recipient, sender, f"{kind}.reply", result)
                self.stats.record(reply.kind, reply.size, self._depth + 2)
                replies[recipient] = result
        return replies, unavailable
